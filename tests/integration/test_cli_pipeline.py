"""Integration: the full CLI pipeline on a statistical twin.

Exercises the deployment story end to end through the command-line
surface: anonymize a labelled cohort, audit the release, red-team it,
persist + validate + coarsen the model, and regenerate from the
coarser model — all against the Pima twin.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import load_pima
from repro.io.csv import read_records, write_records
from repro.io.model_store import load_model
from repro.metrics import covariance_compatibility


@pytest.fixture(scope="module")
def pima_csv(tmp_path_factory):
    directory = tmp_path_factory.mktemp("pima")
    dataset = load_pima()
    path = directory / "pima.csv"
    write_records(
        path,
        np.column_stack([dataset.data, dataset.target]),
        feature_names=dataset.feature_names + ["outcome"],
    )
    return path


class TestFullCliPipeline:
    def test_anonymize_report_attack(self, tmp_path, pima_csv, capsys):
        release = tmp_path / "release.csv"
        assert main([
            "anonymize", str(pima_csv), str(release),
            "--k", "20", "--target-column", "outcome",
        ]) == 0
        release_data, header = read_records(release)
        assert release_data.shape == (768, 9)
        assert header[-1] == "outcome"
        # Labels survived per-class condensation exactly.
        original, __ = read_records(pima_csv)
        np.testing.assert_array_equal(
            np.bincount(original[:, -1].astype(int)),
            np.bincount(release_data[:, -1].astype(int)),
        )
        # Utility audit runs and reports a high mu.
        capsys.readouterr()
        assert main(["report", str(pima_csv), str(release)]) == 0
        report_output = capsys.readouterr().out
        assert "covariance compatibility" in report_output
        mu = covariance_compatibility(original, release_data)
        assert mu > 0.95
        # Red team.
        assert main(["attack", str(pima_csv), "--k", "20"]) == 0
        attack_output = capsys.readouterr().out
        assert "record-linkage attack" in attack_output

    def test_condense_validate_coarsen_generate(self, tmp_path,
                                                pima_csv):
        model_path = tmp_path / "model.json"
        assert main([
            "condense", str(pima_csv), str(model_path), "--k", "10",
        ]) == 0
        # The stored model passes validation on load and leaks no
        # memberships.
        model = load_model(model_path)
        assert model.metadata == {}
        assert (model.group_sizes >= 10).all()
        payload = json.loads(model_path.read_text())
        assert "memberships" not in json.dumps(payload)
        # Coarsen to a stricter level and regenerate.
        coarse_path = tmp_path / "coarse.json"
        assert main([
            "coarsen", str(model_path), str(coarse_path), "--k", "40",
        ]) == 0
        coarse = load_model(coarse_path)
        assert (coarse.group_sizes >= 40).all()
        release_path = tmp_path / "coarse_release.csv"
        assert main([
            "generate", str(coarse_path), str(release_path),
        ]) == 0
        release_data, __ = read_records(release_path)
        assert release_data.shape[0] == coarse.total_count

    def test_release_contains_no_original_record(self, tmp_path,
                                                 pima_csv):
        release = tmp_path / "release.csv"
        main(["anonymize", str(pima_csv), str(release), "--k", "20"])
        original, __ = read_records(pima_csv)
        release_data, __ = read_records(release)
        original_rows = {tuple(np.round(row, 6)) for row in original}
        leaked = sum(
            tuple(np.round(row, 6)) in original_rows
            for row in release_data
        )
        assert leaked == 0

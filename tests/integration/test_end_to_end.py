"""Integration tests: full pipelines across modules.

These tests exercise the library exactly the way the examples and the
benches do — twins in, condensation, generation, downstream mining — and
assert the paper's qualitative claims end to end.
"""

import numpy as np
import pytest

from repro import (
    ClasswiseCondenser,
    DynamicCondenser,
    StaticCondenser,
    covariance_compatibility,
    create_condensed_groups,
    linkage_attack,
    privacy_report,
)
from repro.datasets import load_ecoli, load_ionosphere, load_pima
from repro.metrics import accuracy_score
from repro.mining import (
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    KMeans,
)
from repro.neighbors import KNeighborsClassifier
from repro.preprocessing import StandardScaler, train_test_split


@pytest.fixture(scope="module")
def ionosphere_split():
    dataset = load_ionosphere()
    train_x, test_x, train_y, test_y = train_test_split(
        dataset.data, dataset.target, test_size=0.25,
        stratify=dataset.target, random_state=0,
    )
    scaler = StandardScaler().fit(train_x)
    return (
        scaler.transform(train_x), test_x_scaled := scaler.transform(test_x),
        train_y, test_y,
    )


class TestPaperClaimClassificationSurvives:
    def test_knn_on_condensed_ionosphere(self, ionosphere_split):
        train_x, test_x, train_y, test_y = ionosphere_split
        anonymized, anonymized_labels = ClasswiseCondenser(
            k=20, random_state=0
        ).fit_generate(train_x, train_y)
        condensed_knn = KNeighborsClassifier(n_neighbors=1).fit(
            anonymized, anonymized_labels
        )
        original_knn = KNeighborsClassifier(n_neighbors=1).fit(
            train_x, train_y
        )
        condensed_accuracy = condensed_knn.score(test_x, test_y)
        original_accuracy = original_knn.score(test_x, test_y)
        assert condensed_accuracy >= original_accuracy - 0.1

    def test_multiple_algorithms_run_unchanged(self, ionosphere_split):
        # The paper's central claim: no algorithm modification needed.
        train_x, test_x, train_y, test_y = ionosphere_split
        anonymized, anonymized_labels = ClasswiseCondenser(
            k=15, random_state=0
        ).fit_generate(train_x, train_y)
        for model in (
            KNeighborsClassifier(n_neighbors=3),
            GaussianNaiveBayes(),
            DecisionTreeClassifier(max_depth=6),
        ):
            model.fit(anonymized, anonymized_labels)
            predictions = model.predict(test_x)
            accuracy = accuracy_score(test_y, predictions)
            assert accuracy > 0.6, type(model).__name__

    def test_ecoli_with_tiny_classes(self):
        dataset = load_ecoli()
        anonymized, labels = ClasswiseCondenser(
            k=25, small_class_policy="single_group", random_state=0
        ).fit_generate(dataset.data, dataset.target)
        assert anonymized.shape == dataset.data.shape
        assert set(labels.tolist()) == set(dataset.target.tolist())


class TestPaperClaimCovariancePreserved:
    def test_static_mu_above_098_on_pima(self):
        dataset = load_pima()
        data = StandardScaler().fit_transform(dataset.data)
        for k in (10, 25, 50):
            anonymized = StaticCondenser(
                k=k, random_state=0
            ).fit_generate(data)
            assert covariance_compatibility(data, anonymized) > 0.95, k

    def test_dynamic_mu_high_for_modest_groups(self):
        dataset = load_pima()
        data = StandardScaler().fit_transform(dataset.data)
        condenser = DynamicCondenser(k=20, random_state=0).fit(data[:200])
        condenser.partial_fit(data[200:])
        anonymized = condenser.generate()
        assert covariance_compatibility(data, anonymized) > 0.9


class TestPrivacyEndToEnd:
    def test_report_and_attack_consistency(self):
        dataset = load_ionosphere()
        data = StandardScaler().fit_transform(dataset.data)
        model = create_condensed_groups(data, k=15, random_state=0)
        report = privacy_report(model)
        assert report.satisfied
        attack = linkage_attack(data, model, random_state=0)
        # Even a perfect group linkage cannot beat 1/k disclosure.
        assert attack.expected_record_disclosure <= 1.0 / 15 + 1e-12

    def test_anonymized_data_contains_no_original_record(self):
        dataset = load_pima()
        data = StandardScaler().fit_transform(dataset.data)
        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            data
        )
        original_rows = {tuple(np.round(row, 8)) for row in data}
        leaked = sum(
            tuple(np.round(row, 8)) in original_rows for row in anonymized
        )
        assert leaked == 0


class TestClusteringOnCondensedData:
    def test_kmeans_structure_survives(self, rng):
        blobs = np.vstack([
            rng.normal(loc=offset, scale=0.5, size=(60, 3))
            for offset in (0.0, 10.0, 20.0)
        ])
        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            blobs
        )
        original_inertia = KMeans(
            n_clusters=3, random_state=0
        ).fit(blobs).inertia_
        anonymized_model = KMeans(n_clusters=3, random_state=0).fit(
            anonymized
        )
        # Cluster centres found on anonymized data describe the original
        # data nearly as well as its own clustering.
        from repro.neighbors.brute import pairwise_distances

        assignments = anonymized_model.predict(blobs)
        squared = pairwise_distances(
            blobs, anonymized_model.cluster_centers_, squared=True
        )
        transfer_inertia = float(
            np.take_along_axis(squared, assignments[:, None], axis=1).sum()
        )
        assert transfer_inertia <= 1.5 * original_inertia


class TestSerializationRoundTrip:
    def test_model_survives_json(self):
        import json

        dataset = load_ionosphere()
        data = StandardScaler().fit_transform(dataset.data)
        model = create_condensed_groups(data, k=20, random_state=0)
        model.metadata.pop("memberships")
        model.metadata.pop("strategy")
        payload = json.dumps(model.to_dict())
        from repro.core.statistics import CondensedModel

        rebuilt = CondensedModel.from_dict(json.loads(payload))
        from repro.core.generation import generate_anonymized_data

        anonymized = generate_anonymized_data(rebuilt, random_state=0)
        assert anonymized.shape == data.shape
        assert covariance_compatibility(data, anonymized) > 0.9

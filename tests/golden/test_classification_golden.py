"""Golden end-to-end regression: classification on the Ionosphere twin.

A fully seeded sweep of the paper's §2.3 classification protocol over
``k ∈ {2, 5, 10}``, with the resulting nearest-neighbour accuracies
committed as expected values.  A change inside any stage of the
pipeline — twin generation, splitting, per-class condensation,
anonymized generation, or the k-NN classifier — shifts these numbers
and fails the test, which is the point: silent behavioural drift is
the one failure property tests cannot catch.

Tolerances are explicit and deliberately small.  ``ACCURACY_TOL``
absorbs cross-platform BLAS differences in the eigendecompositions the
generator uses; ``GROUP_SIZE_TOL`` covers float summary arithmetic
only, since group formation itself is integer-exact.  If an
intentional algorithm change moves a value beyond tolerance, re-derive
the constants with the recipe in each test and say so in the commit.
"""

import numpy as np
import pytest

from repro.core.condenser import ClasswiseCondenser
from repro.datasets.twins import load_ionosphere
from repro.evaluation.protocol import classification_condition
from repro.neighbors.knn import KNeighborsClassifier
from repro.preprocessing.splits import train_test_split

ACCURACY_TOL = 0.025
GROUP_SIZE_TOL = 1e-3

# (k, expected accuracy, expected average group size); regenerate by
# running the body of the corresponding test and printing the results.
SERIAL_EXPECTED = [
    (2, 0.8181818182, 2.007634),
    (5, 0.8409090909, 5.156863),
    (10, 0.8977272727, 10.520000),
]

SHARDED_EXPECTED = [
    (2, 0.7840909091, 2.023077),
    (5, 0.8522727273, 5.367347),
    (10, 0.8068181818, 10.958333),
]


@pytest.fixture(scope="module")
def ionosphere_split():
    dataset = load_ionosphere()
    return train_test_split(
        dataset.data, dataset.target,
        test_size=0.25, stratify=dataset.target, random_state=0,
    )


class TestSerialGolden:
    @pytest.mark.parametrize(
        "k,expected_accuracy,expected_group_size", SERIAL_EXPECTED
    )
    def test_classification_sweep(
        self, ionosphere_split, k, expected_accuracy, expected_group_size
    ):
        train_x, test_x, train_y, test_y = ionosphere_split
        result = classification_condition(
            train_x, train_y, test_x, test_y,
            k=k, mode="static", random_state=k,
        )
        assert result.accuracy == pytest.approx(
            expected_accuracy, abs=ACCURACY_TOL
        )
        assert result.average_group_size == pytest.approx(
            expected_group_size, abs=GROUP_SIZE_TOL
        )


class TestShardedGolden:
    @pytest.mark.parametrize(
        "k,expected_accuracy,expected_group_size", SHARDED_EXPECTED
    )
    def test_classification_sweep_with_shards(
        self, ionosphere_split, k, expected_accuracy, expected_group_size
    ):
        train_x, test_x, train_y, test_y = ionosphere_split
        condenser = ClasswiseCondenser(
            k, small_class_policy="single_group",
            random_state=k, n_shards=3,
        )
        anonymized, anonymized_labels = condenser.fit_generate(
            train_x, train_y
        )
        classifier = KNeighborsClassifier(n_neighbors=1)
        classifier.fit(anonymized, anonymized_labels)
        accuracy = classifier.score(test_x, test_y)
        assert accuracy == pytest.approx(
            expected_accuracy, abs=ACCURACY_TOL
        )
        assert condenser.average_group_size == pytest.approx(
            expected_group_size, abs=GROUP_SIZE_TOL
        )
        # The golden numbers must come from a model that still honors
        # the privacy level after shard-merge repair.
        sizes = np.concatenate(
            [model.group_sizes for model in condenser.models_.values()]
        )
        assert int(sizes.min()) >= k

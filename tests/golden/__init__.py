"""Golden regression tests: committed expected end-to-end numbers."""

"""Metamorphic properties of the condensation pipeline.

Condensation is built from distances and second-order statistics, so it
must transform predictably under affine maps of its input: translations
translate centroids, scalings scale them, orthogonal rotations rotate
them — and none of the three may change which records group together.
The MDAV strategy is used where group *identity* is asserted (its
seeding is deterministic, so the transformation is the only variable).
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.condensation import create_condensed_groups
from repro.core.dynamic import split_group_statistics
from repro.core.statistics import GroupStatistics


def mdav_model(data, k=8):
    return create_condensed_groups(
        data, k, strategy="mdav", random_state=0
    )


def memberships_as_sets(model):
    return {
        frozenset(np.asarray(members).tolist())
        for members in model.metadata["memberships"]
    }


class TestAffineEquivariance:
    @given(seed=st.integers(0, 500),
           shift=st.floats(-100.0, 100.0, allow_nan=False))
    def test_translation(self, seed, shift):
        data = np.random.default_rng(seed).normal(size=(50, 3))
        base = mdav_model(data)
        translated = mdav_model(data + shift)
        # Identical grouping...
        assert memberships_as_sets(base) == memberships_as_sets(
            translated
        )
        # ...and centroids translated by exactly the shift.
        np.testing.assert_allclose(
            translated.centroids(), base.centroids() + shift,
            atol=1e-6 * (1.0 + abs(shift)),
        )

    @given(seed=st.integers(0, 500),
           factor=st.floats(0.01, 100.0, allow_nan=False))
    def test_scaling(self, seed, factor):
        data = np.random.default_rng(seed).normal(size=(50, 3))
        base = mdav_model(data)
        scaled = mdav_model(factor * data)
        assert memberships_as_sets(base) == memberships_as_sets(scaled)
        np.testing.assert_allclose(
            scaled.centroids(), factor * base.centroids(),
            rtol=1e-8, atol=1e-9 * factor,
        )

    @given(seed=st.integers(0, 500))
    def test_rotation(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(50, 3))
        # A random orthogonal matrix via QR.
        q, __ = np.linalg.qr(rng.normal(size=(3, 3)))
        base = mdav_model(data)
        rotated = mdav_model(data @ q.T)
        assert memberships_as_sets(base) == memberships_as_sets(rotated)
        np.testing.assert_allclose(
            rotated.centroids(), base.centroids() @ q.T, atol=1e-8
        )

    @given(seed=st.integers(0, 500))
    def test_row_permutation_preserves_grouping(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(40, 2))
        permutation = rng.permutation(40)
        base = mdav_model(data)
        permuted = mdav_model(data[permutation])
        base_sets = memberships_as_sets(base)
        # Map permuted indices back to original identities.
        permuted_sets = {
            frozenset(int(permutation[index]) for index in members)
            for members in memberships_as_sets(permuted)
        }
        assert base_sets == permuted_sets


class TestSplitEquivariance:
    @given(seed=st.integers(0, 500),
           shift=st.floats(-50.0, 50.0, allow_nan=False),
           factor=st.floats(0.1, 10.0, allow_nan=False))
    def test_split_commutes_with_affine_map(self, seed, shift, factor):
        records = np.random.default_rng(seed).normal(size=(20, 3))
        group = GroupStatistics.from_records(records)
        mapped_group = GroupStatistics.from_records(
            factor * records + shift
        )
        first, second = split_group_statistics(group, k=10)
        mapped_first, mapped_second = split_group_statistics(
            mapped_group, k=10
        )
        # The split axis can flip sign; match children by centroid.
        candidates = [
            (mapped_first, mapped_second),
            (mapped_second, mapped_first),
        ]
        tolerance = 1e-5 * (abs(shift) + factor + 1.0)
        matched = any(
            np.allclose(
                candidate_a.centroid,
                factor * first.centroid + shift,
                atol=tolerance,
            )
            and np.allclose(
                candidate_b.centroid,
                factor * second.centroid + shift,
                atol=tolerance,
            )
            for candidate_a, candidate_b in candidates
        )
        assert matched

"""Property tests for the rank-one eigensystem update (``repro.linalg``).

The secular-equation update underpins the batch ingest fast path: a
group's covariance after absorbing a record is a scale-plus-rank-one
modification of the old one, so its eigensystem can be advanced without
a fresh ``sorted_eigh``.  The properties held here:

* the updated eigensystem agrees with a dense re-decomposition of the
  explicitly modified matrix (eigenvalues and reconstruction);
* updated eigenvalues interlace the originals (Weyl) and remain
  decreasing; a positive-semidefinite start stays PSD under absorbs;
* adversarial spectra — near-degenerate gaps, decoupled components —
  refuse via :class:`EigenUpdateError` instead of returning garbage,
  which is what lets the caller fall back to ``sorted_eigh``.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.statistics import GroupStatistics
from repro.linalg.symmetric import sorted_eigh
from repro.linalg.updates import (
    EigenUpdateError,
    absorbed_record_eigh_update,
    rank_one_eigh_update,
)


def random_spectrum(seed, d):
    """A well-separated decreasing spectrum and orthonormal basis."""
    rng = np.random.default_rng(seed)
    gaps = rng.uniform(0.3, 2.0, size=d)
    eigenvalues = np.sort(np.cumsum(gaps))[::-1]
    basis, __ = np.linalg.qr(rng.normal(size=(d, d)))
    return eigenvalues, basis


def reconstruct(eigenvalues, eigenvectors):
    return (eigenvectors * eigenvalues) @ eigenvectors.T


case = st.fixed_dictionaries({
    "seed": st.integers(0, 10_000),
    "d": st.integers(2, 12),
    "rho": st.floats(-2.0, 2.0).filter(lambda r: abs(r) > 1e-3),
})


class TestAgreementWithDenseEigh:
    @given(case=case)
    def test_matches_fresh_decomposition(self, case):
        eigenvalues, basis = random_spectrum(case["seed"], case["d"])
        rng = np.random.default_rng(case["seed"] + 1)
        vector = rng.normal(size=case["d"])
        matrix = reconstruct(eigenvalues, basis)
        updated = matrix + case["rho"] * np.outer(vector, vector)
        try:
            new_values, new_vectors = rank_one_eigh_update(
                eigenvalues, basis, case["rho"], vector
            )
        except EigenUpdateError:
            # The update may legitimately refuse (tiny coupling after
            # rotation into the eigenbasis); correctness is then the
            # caller's dense fallback, exercised below.
            new_values, new_vectors = sorted_eigh(updated, clip=False)
        scale = max(np.abs(new_values).max(), 1.0)
        reference = np.linalg.eigvalsh(updated)[::-1]
        assert np.abs(new_values - reference).max() <= 1e-7 * scale
        rebuilt = reconstruct(new_values, new_vectors)
        assert np.abs(rebuilt - updated).max() <= 1e-6 * scale
        # Decreasing order and orthonormal columns.
        assert (np.diff(new_values) <= 1e-9 * scale).all()
        gram = new_vectors.T @ new_vectors
        assert np.abs(gram - np.eye(case["d"])).max() <= 1e-8

    @given(case=case)
    def test_eigenvalues_interlace(self, case):
        eigenvalues, basis = random_spectrum(case["seed"], case["d"])
        rng = np.random.default_rng(case["seed"] + 2)
        vector = rng.normal(size=case["d"])
        try:
            new_values, __ = rank_one_eigh_update(
                eigenvalues, basis, case["rho"], vector
            )
        except EigenUpdateError:
            return
        scale = max(np.abs(eigenvalues).max(), 1.0)
        slack = 1e-9 * scale
        if case["rho"] > 0:
            # mu_1 >= d_1 >= mu_2 >= d_2 >= ...
            assert (new_values >= eigenvalues - slack).all()
            assert (new_values[1:] <= eigenvalues[:-1] + slack).all()
        else:
            assert (new_values <= eigenvalues + slack).all()
            assert (new_values[:-1] >= eigenvalues[1:] - slack).all()


class TestAbsorbedRecordUpdate:
    @given(
        seed=st.integers(0, 10_000),
        d=st.integers(2, 10),
        n=st.integers(5, 60),
    )
    def test_matches_the_true_post_absorb_covariance(self, seed, d, n):
        rng = np.random.default_rng(seed)
        records = rng.normal(size=(n, d)) * rng.uniform(0.5, 3.0, size=d)
        group = GroupStatistics.from_records(records)
        eigenvalues, eigenvectors = group.eigen_system()
        record = rng.normal(size=d)
        try:
            new_values, new_vectors = absorbed_record_eigh_update(
                eigenvalues, eigenvectors, group.centroid, group.count,
                record,
            )
        except EigenUpdateError:
            return
        group.add(record)
        true_cov = group.covariance
        scale = max(np.abs(true_cov).max(), 1.0)
        rebuilt = reconstruct(new_values, new_vectors)
        assert np.abs(rebuilt - true_cov).max() <= 1e-6 * scale
        reference = np.linalg.eigvalsh(true_cov)[::-1]
        assert np.abs(new_values - reference).max() <= 1e-7 * scale

    @given(
        seed=st.integers(0, 10_000),
        d=st.integers(2, 10),
        n=st.integers(5, 40),
        chain=st.integers(1, 5),
    )
    def test_psd_is_preserved_across_absorb_chains(
        self, seed, d, n, chain
    ):
        # A covariance stays PSD under absorbs in exact arithmetic; the
        # update must not manufacture meaningful negative curvature.
        rng = np.random.default_rng(seed)
        records = rng.normal(size=(n, d))
        group = GroupStatistics.from_records(records)
        eigenvalues, eigenvectors = group.eigen_system()
        mean, count = group.centroid, group.count
        for __ in range(chain):
            record = rng.normal(size=d)
            try:
                eigenvalues, eigenvectors = absorbed_record_eigh_update(
                    eigenvalues, eigenvectors, mean, count, record
                )
            except EigenUpdateError:
                return
            mean = (mean * count + record) / (count + 1)
            count += 1
            scale = max(np.abs(eigenvalues).max(), 1.0)
            assert eigenvalues.min() >= -1e-9 * scale


class TestAdversarialFallback:
    @given(seed=st.integers(0, 10_000), d=st.integers(3, 10))
    def test_near_degenerate_spectrum_refuses(self, seed, d):
        rng = np.random.default_rng(seed)
        eigenvalues = np.sort(rng.uniform(1.0, 5.0, size=d))[::-1]
        # Collapse one interior gap to the noise floor.
        collapse = int(rng.integers(1, d))
        eigenvalues[collapse] = eigenvalues[collapse - 1] - 1e-14
        basis, __ = np.linalg.qr(rng.normal(size=(d, d)))
        vector = rng.normal(size=d)
        with pytest.raises(EigenUpdateError):
            rank_one_eigh_update(eigenvalues, basis, 0.5, vector)

    @given(seed=st.integers(0, 10_000), d=st.integers(3, 10))
    def test_decoupled_component_refuses(self, seed, d):
        # A vector orthogonal to one eigenvector decouples that root:
        # the secular solver cannot bracket it and must refuse rather
        # than silently misplace it.
        rng = np.random.default_rng(seed)
        eigenvalues, basis = random_spectrum(seed, d)
        dropped = int(rng.integers(0, d))
        coefficients = rng.normal(size=d)
        coefficients[dropped] = 0.0
        vector = basis @ coefficients
        with pytest.raises(EigenUpdateError):
            rank_one_eigh_update(eigenvalues, basis, 1.0, vector)

    def test_rejects_increasing_eigenvalue_order(self):
        basis = np.eye(3)
        with pytest.raises(ValueError, match="decreasing"):
            rank_one_eigh_update(
                np.array([1.0, 2.0, 3.0]), basis, 1.0, np.ones(3)
            )

"""Cross-module property-based invariants.

Hypothesis drives random data shapes and privacy levels through entire
pipelines and asserts the structural guarantees the paper's framework
rests on — the guarantees every other module silently assumes.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.condensation import create_condensed_groups
from repro.core.dynamic import DynamicGroupMaintainer
from repro.core.generation import generate_anonymized_data
from repro.core.statistics import GroupStatistics
from repro.privacy.metrics import privacy_report


def dataset_strategy(draw):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(4, 120))
    d = draw(st.integers(1, 6))
    scale = draw(st.sampled_from([0.01, 1.0, 100.0]))
    offset = draw(st.sampled_from([0.0, -50.0, 1e3]))
    rng = np.random.default_rng(seed)
    return offset + scale * rng.normal(size=(n, d))


datasets = st.composite(dataset_strategy)()


class TestStaticPipelineInvariants:
    @given(data=datasets, k=st.integers(1, 25), seed=st.integers(0, 100))
    def test_condense_generate_preserves_cardinality_and_mean(
        self, data, k, seed
    ):
        k = min(k, data.shape[0])
        model = create_condensed_groups(data, k, random_state=seed)
        anonymized = generate_anonymized_data(model, random_state=seed)
        # Cardinality is exactly preserved.
        assert anonymized.shape == data.shape
        # Every record meets the privacy level.
        assert privacy_report(model).achieved_k >= k
        # The global mean is preserved in expectation; with uniform
        # generation the deviation is bounded by the per-group spreads.
        spread = data.std(axis=0).max() + 1e-9
        deviation = np.abs(
            anonymized.mean(axis=0) - data.mean(axis=0)
        ).max()
        assert deviation <= 2.0 * spread

    @given(data=datasets, k=st.integers(1, 25), seed=st.integers(0, 100))
    def test_aggregate_sums_exact(self, data, k, seed):
        # Condensation never loses first- or second-order mass: the sum
        # of group sums equals the data set's sums exactly (up to float
        # addition order).
        k = min(k, data.shape[0])
        model = create_condensed_groups(data, k, random_state=seed)
        total_first = sum(group.first_order for group in model.groups)
        scale = np.abs(data).sum() + 1.0
        assert np.abs(
            total_first - data.sum(axis=0)
        ).max() <= 1e-9 * scale

    @given(data=datasets, k=st.integers(2, 25), seed=st.integers(0, 100))
    def test_generated_records_stay_in_group_support(
        self, data, k, seed
    ):
        # Uniform generation is bounded: every anonymized record lies
        # within the axis-aligned eigen-box of its group.
        k = min(k, data.shape[0])
        model = create_condensed_groups(data, k, random_state=seed)
        rng = np.random.default_rng(seed)
        from repro.core.generation import generate_group_records

        for group in model.groups:
            eigenvalues, eigenvectors = group.eigen_system()
            records = generate_group_records(group, size=8,
                                             random_state=rng)
            coordinates = (records - group.centroid) @ eigenvectors
            half_ranges = np.sqrt(12.0 * eigenvalues) / 2.0
            tolerance = 1e-9 * (np.abs(group.centroid).max() + 1.0)
            assert (
                np.abs(coordinates) <= half_ranges + 1e-6 + tolerance
            ).all()


class TestDynamicPipelineInvariants:
    @given(
        seed=st.integers(0, 2_000),
        k=st.integers(1, 15),
        n_stream=st.integers(0, 150),
        d=st.integers(1, 4),
    )
    def test_band_and_conservation(self, seed, k, n_stream, d):
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(max(k, 3 * k), d))
        stream = rng.normal(size=(n_stream, d))
        maintainer = DynamicGroupMaintainer(
            k, initial_data=base, random_state=seed
        )
        maintainer.add_stream(stream)
        sizes = maintainer.group_sizes()
        # Group sizes never escape [k, 2k).  (The static bootstrap can
        # produce a group of up to 2k-1 via leftover absorption, which
        # is inside the same band.)
        assert (sizes >= k).all()
        assert (sizes < 2 * k).all()
        # Total mass is conserved across arbitrarily many splits.
        assert sizes.sum() == base.shape[0] + n_stream

    @given(seed=st.integers(0, 2_000), k=st.integers(1, 20))
    def test_split_mass_and_moment_conservation(self, seed, k):
        rng = np.random.default_rng(seed)
        records = 10.0 * rng.normal(size=(2 * k, 3))
        group = GroupStatistics.from_records(records)
        from repro.core.dynamic import split_group_statistics

        first, second = split_group_statistics(group, k=k)
        assert first.count == second.count == k
        scale = np.abs(group.first_order).max() + 1.0
        assert np.abs(
            first.first_order + second.first_order - group.first_order
        ).max() <= 1e-9 * scale
        # Merged children reproduce the parent covariance exactly
        # (the split is second-moment-consistent by construction).
        merged = first.copy()
        merged.merge(second)
        cov_scale = np.abs(group.covariance).max() + 1.0
        assert np.abs(
            merged.covariance - group.covariance
        ).max() <= 1e-7 * cov_scale


class TestPrivacyInvariants:
    @given(data=datasets, k=st.integers(1, 20), seed=st.integers(0, 50))
    def test_no_original_record_is_released_for_k_above_one(
        self, data, k, seed
    ):
        # With k >= 2 and non-degenerate groups, generation draws from a
        # continuous distribution: the probability of reproducing an
        # original record is zero.  Degenerate (zero-variance) groups
        # can only arise from duplicate records, which Gaussian data
        # does not produce.
        k = min(max(k, 2), data.shape[0])
        model = create_condensed_groups(data, k, random_state=seed)
        anonymized = generate_anonymized_data(model, random_state=seed)
        original_rows = {tuple(row) for row in data}
        leaked = sum(
            tuple(row) in original_rows for row in anonymized
        )
        assert leaked == 0


class TestCoarseningInvariants:
    @given(
        seed=st.integers(0, 500),
        base_k=st.integers(1, 10),
        factor=st.integers(1, 6),
    )
    def test_coarsen_conserves_mass_and_meets_level(
        self, seed, base_k, factor
    ):
        from repro.core.coarsen import coarsen_model

        rng = np.random.default_rng(seed)
        n = max(4 * base_k, 20)
        data = rng.normal(size=(n, 3))
        base = create_condensed_groups(data, base_k, random_state=seed)
        target = min(base_k * factor, n)
        coarse = coarsen_model(base, target)
        assert coarse.total_count == n
        assert (coarse.group_sizes >= target).all()
        total_first = sum(group.first_order for group in coarse.groups)
        scale = np.abs(data).sum() + 1.0
        assert np.abs(
            total_first - data.sum(axis=0)
        ).max() <= 1e-9 * scale


class TestClasswiseInvariants:
    @given(
        seed=st.integers(0, 500),
        k=st.integers(1, 10),
        n_per_class=st.integers(12, 40),
    )
    def test_per_class_counts_exact(self, seed, k, n_per_class):
        from repro.core.condenser import ClasswiseCondenser

        rng = np.random.default_rng(seed)
        data = rng.normal(size=(3 * n_per_class, 3))
        labels = np.repeat([0, 1, 2], n_per_class)
        k = min(k, n_per_class)
        anonymized, anonymized_labels = ClasswiseCondenser(
            k, random_state=seed
        ).fit_generate(data, labels)
        assert anonymized.shape == data.shape
        values, counts = np.unique(anonymized_labels,
                                   return_counts=True)
        assert values.tolist() == [0, 1, 2]
        assert (counts == n_per_class).all()

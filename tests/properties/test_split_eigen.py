"""Eigen-split invariants of ``split_group_statistics`` (Fig. 3).

The paper's split replaces a group of ``2k`` records with two children
of ``k`` records each, displaced ``± sqrt(12 λ₁)/4`` along the leading
eigenvector, with the leading eigenvalue quartered.  These properties
pin down the exact geometry the dynamic maintainer and the parallel
engine's ``merge_resplit`` repair both rely on:

* counts, first-order and second-order mass are conserved exactly;
* child centroids sit at ``± a/4`` along the principal eigenvector,
  with ``a = sqrt(12 λ₁)`` the uniform range that reproduces ``λ₁``;
* both children share one covariance whose variance along the parent's
  principal axis is ``λ₁ / 4`` while every other principal direction
  keeps its parent variance.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dynamic import split_group_statistics
from repro.core.statistics import GroupStatistics


def make_group(seed, k, d, scale):
    rng = np.random.default_rng(seed)
    records = scale * rng.normal(size=(2 * k, d))
    return GroupStatistics.from_records(records)


group_cases = {
    "seed": st.integers(0, 2_000),
    "k": st.integers(1, 20),
    "d": st.integers(1, 6),
    "scale": st.sampled_from([0.01, 1.0, 100.0]),
}


class TestEigenSplitInvariants:
    @given(**group_cases)
    def test_counts_and_moment_mass_conserved(self, seed, k, d, scale):
        group = make_group(seed, k, d, scale)
        first, second = split_group_statistics(group, k=k)
        assert first.count == second.count == k
        first_scale = np.abs(group.first_order).max() + 1.0
        assert np.abs(
            first.first_order + second.first_order - group.first_order
        ).max() <= 1e-8 * first_scale
        second_scale = np.abs(group.second_order).max() + 1.0
        assert np.abs(
            first.second_order + second.second_order - group.second_order
        ).max() <= 1e-7 * second_scale

    @given(**group_cases)
    def test_child_centroids_sit_at_quarter_range(self, seed, k, d, scale):
        group = make_group(seed, k, d, scale)
        eigenvalues, eigenvectors = group.eigen_system()
        offset = np.sqrt(12.0 * float(eigenvalues[0])) / 4.0
        axis = eigenvectors[:, 0]
        first, second = split_group_statistics(group, k=k)
        tolerance = 1e-8 * (np.abs(group.centroid).max() + offset + 1.0)
        assert np.abs(
            first.centroid - (group.centroid + offset * axis)
        ).max() <= tolerance
        assert np.abs(
            second.centroid - (group.centroid - offset * axis)
        ).max() <= tolerance

    @given(**group_cases)
    def test_leading_variance_quartered_others_kept(self, seed, k, d,
                                                    scale):
        group = make_group(seed, k, d, scale)
        eigenvalues, eigenvectors = group.eigen_system()
        first, second = split_group_statistics(group, k=k)
        tolerance = 1e-7 * (float(eigenvalues[0]) + 1.0)
        # Both children share one covariance matrix.
        assert np.abs(
            first.covariance - second.covariance
        ).max() <= tolerance
        # Variance along the parent's principal axis drops to λ1/4 ...
        for child in (first, second):
            projected = eigenvectors.T @ child.covariance @ eigenvectors
            assert abs(
                projected[0, 0] - eigenvalues[0] / 4.0
            ) <= tolerance
            # ... while every other principal direction keeps its
            # parent variance.
            for j in range(1, d):
                assert abs(
                    projected[j, j] - eigenvalues[j]
                ) <= tolerance

    @given(**group_cases)
    def test_merged_children_reproduce_parent_covariance(
        self, seed, k, d, scale
    ):
        group = make_group(seed, k, d, scale)
        first, second = split_group_statistics(group, k=k)
        merged = first.copy()
        merged.merge(second)
        assert merged.count == group.count
        cov_scale = np.abs(group.covariance).max() + 1.0
        assert np.abs(
            merged.covariance - group.covariance
        ).max() <= 1e-7 * cov_scale

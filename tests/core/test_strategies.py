"""Tests for repro.core.strategies — grouping strategy ablations."""

import numpy as np
import pytest

from repro.core.condensation import (
    condensation_information_loss,
    create_condensed_groups,
)
from repro.core.strategies import (
    KMeansSeedStrategy,
    MDAVStrategy,
    RandomSeedStrategy,
    resolve_strategy,
)


class TestResolveStrategy:
    def test_known_names(self):
        assert isinstance(resolve_strategy("random"), RandomSeedStrategy)
        assert isinstance(resolve_strategy("mdav"), MDAVStrategy)
        assert isinstance(resolve_strategy("kmeans"), KMeansSeedStrategy)

    def test_instance_passthrough(self):
        strategy = MDAVStrategy()
        assert resolve_strategy(strategy) is strategy

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            resolve_strategy("dbscan")

    def test_wrong_type(self):
        with pytest.raises(TypeError):
            resolve_strategy(42)


class TestRandomSeedStrategy:
    def test_pick_seed_in_range(self, gaussian_data, rng):
        strategy = RandomSeedStrategy()
        remaining = np.arange(50)
        for __ in range(20):
            position = strategy.pick_seed(gaussian_data, remaining, rng)
            assert 0 <= position < 50

    def test_no_plan(self, gaussian_data, rng):
        assert RandomSeedStrategy().plan(gaussian_data, 5, rng) is None


class TestMDAVStrategy:
    def test_picks_farthest_from_mean(self, rng):
        data = np.vstack([np.zeros((20, 2)), [[100.0, 100.0]]])
        remaining = np.arange(21)
        position = MDAVStrategy().pick_seed(data, remaining, rng)
        assert position == 20

    def test_full_condensation_valid(self, gaussian_data):
        model = create_condensed_groups(
            gaussian_data, k=8, strategy="mdav", random_state=0
        )
        assert (model.group_sizes >= 8).all()
        assert model.total_count == 120
        assert model.metadata["strategy"] == "mdav"

    def test_deterministic(self, gaussian_data):
        a = create_condensed_groups(
            gaussian_data, k=8, strategy="mdav", random_state=0
        )
        b = create_condensed_groups(
            gaussian_data, k=8, strategy="mdav", random_state=99
        )
        # MDAV seeding is deterministic, so different seeds agree.
        np.testing.assert_allclose(a.centroids(), b.centroids())


class TestKMeansSeedStrategy:
    def test_full_condensation_valid(self, gaussian_data):
        model = create_condensed_groups(
            gaussian_data, k=10, strategy="kmeans", random_state=0
        )
        assert (model.group_sizes >= 10).all()
        assert model.total_count == 120
        combined = np.concatenate(model.metadata["memberships"])
        assert sorted(combined.tolist()) == list(range(120))

    def test_pick_seed_unused(self, gaussian_data, rng):
        with pytest.raises(RuntimeError, match="pick_seed is unused"):
            KMeansSeedStrategy().pick_seed(
                gaussian_data, np.arange(10), rng
            )

    def test_lower_information_loss_than_random_on_clustered_data(
        self, rng
    ):
        # On strongly clustered data a globally planned partition should
        # lose no more information than greedy random seeding.
        blobs = np.vstack([
            rng.normal(loc=offset, scale=0.5, size=(40, 3))
            for offset in (0.0, 20.0, 40.0)
        ])
        random_losses = []
        for seed in range(3):
            model = create_condensed_groups(
                blobs, k=10, strategy="random", random_state=seed
            )
            random_losses.append(
                condensation_information_loss(blobs, model)
            )
        kmeans_model = create_condensed_groups(
            blobs, k=10, strategy="kmeans", random_state=0
        )
        kmeans_loss = condensation_information_loss(blobs, kmeans_model)
        assert kmeans_loss <= max(random_losses) + 0.02

    def test_invalid_max_iter(self):
        with pytest.raises(ValueError):
            KMeansSeedStrategy(max_iter=0)

    def test_small_data_single_group(self, rng):
        data = rng.normal(size=(7, 2))
        model = create_condensed_groups(
            data, k=5, strategy="kmeans", random_state=0
        )
        assert model.total_count == 7
        assert (model.group_sizes >= 5).all()

"""Tests for repro.core.generation — anonymized-data construction (§2.1)."""

import numpy as np
import pytest

from repro.core.condensation import create_condensed_groups
from repro.core.generation import (
    generate_anonymized_data,
    generate_group_records,
    resolve_sampler,
)
from repro.core.statistics import GroupStatistics


class TestGroupGeneration:
    def test_default_size_matches_group(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        generated = generate_group_records(group, random_state=0)
        assert generated.shape == gaussian_data.shape

    def test_mean_preserved(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        generated = generate_group_records(
            group, size=20000, random_state=0
        )
        np.testing.assert_allclose(
            generated.mean(axis=0), group.centroid, atol=0.05
        )

    def test_covariance_preserved(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        generated = generate_group_records(
            group, size=60000, random_state=0
        )
        np.testing.assert_allclose(
            np.cov(generated.T, bias=True),
            group.covariance,
            atol=0.08,
        )

    def test_uniform_support_is_bounded(self):
        # Along each eigenvector the uniform sampler spans sqrt(12 λ);
        # coordinates must never exceed half that range.
        records = np.random.default_rng(0).normal(size=(200, 3))
        group = GroupStatistics.from_records(records)
        eigenvalues, eigenvectors = group.eigen_system()
        generated = generate_group_records(
            group, size=5000, random_state=1
        )
        coordinates = (generated - group.centroid) @ eigenvectors
        half_ranges = np.sqrt(12.0 * eigenvalues) / 2.0
        assert (np.abs(coordinates) <= half_ranges + 1e-9).all()

    def test_gaussian_sampler_exceeds_uniform_support(self):
        records = np.random.default_rng(0).normal(size=(200, 3))
        group = GroupStatistics.from_records(records)
        eigenvalues, eigenvectors = group.eigen_system()
        generated = generate_group_records(
            group, size=5000, sampler="gaussian", random_state=1
        )
        coordinates = (generated - group.centroid) @ eigenvectors
        half_ranges = np.sqrt(12.0 * eigenvalues) / 2.0
        assert (np.abs(coordinates) > half_ranges + 1e-9).any()

    def test_singleton_group_reproduces_record(self):
        record = np.array([[1.0, -2.0, 3.0]])
        group = GroupStatistics.from_records(record)
        generated = generate_group_records(group, random_state=0)
        np.testing.assert_allclose(generated, record, atol=1e-6)

    def test_zero_size(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        generated = generate_group_records(group, size=0, random_state=0)
        assert generated.shape == (0, 4)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            generate_group_records(GroupStatistics.empty(2))

    def test_negative_size_rejected(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        with pytest.raises(ValueError):
            generate_group_records(group, size=-1)

    def test_deterministic_given_seed(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        a = generate_group_records(group, random_state=5)
        b = generate_group_records(group, random_state=5)
        np.testing.assert_array_equal(a, b)


class TestResolveSampler:
    def test_known_names(self):
        assert callable(resolve_sampler("uniform"))
        assert callable(resolve_sampler("gaussian"))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            resolve_sampler("cauchy")

    def test_callable_passthrough(self):
        def sampler(rng, eigenvalues, size):
            return np.zeros((size, eigenvalues.shape[0]))

        assert resolve_sampler(sampler) is sampler

    def test_wrong_type(self):
        with pytest.raises(TypeError):
            resolve_sampler(3)

    def test_custom_sampler_shape_checked(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)

        def bad_sampler(rng, eigenvalues, size):
            return np.zeros((size, eigenvalues.shape[0] + 1))

        with pytest.raises(ValueError, match="wrong shape"):
            generate_group_records(group, sampler=bad_sampler,
                                   random_state=0)


class TestModelGeneration:
    def test_cardinality_matches_input(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        generated = generate_anonymized_data(model, random_state=0)
        assert generated.shape == gaussian_data.shape

    def test_custom_sizes(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=60, random_state=0)
        generated = generate_anonymized_data(
            model, sizes=[5, 7], random_state=0
        )
        assert generated.shape == (12, 4)

    def test_sizes_length_checked(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=60, random_state=0)
        with pytest.raises(ValueError, match="one entry per group"):
            generate_anonymized_data(model, sizes=[5], random_state=0)

    def test_all_zero_sizes(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=60, random_state=0)
        generated = generate_anonymized_data(
            model, sizes=[0, 0], random_state=0
        )
        assert generated.shape == (0, 4)

    def test_global_mean_approximately_preserved(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        generated = generate_anonymized_data(model, random_state=0)
        np.testing.assert_allclose(
            generated.mean(axis=0), gaussian_data.mean(axis=0), atol=0.5
        )

    def test_k1_reproduces_original_multiset(self, gaussian_data):
        # Singleton groups have zero covariance, so generation returns
        # exactly the original records (the paper's k=1 anchor point).
        model = create_condensed_groups(gaussian_data, k=1, random_state=0)
        generated = generate_anonymized_data(model, random_state=0)
        original_rows = sorted(map(tuple, np.round(gaussian_data, 6)))
        generated_rows = sorted(map(tuple, np.round(generated, 6)))
        assert original_rows == generated_rows

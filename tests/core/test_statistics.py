"""Tests for repro.core.statistics — the (Fs, Sc, n) representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.statistics import CondensedModel, GroupStatistics


class TestGroupStatisticsConstruction:
    def test_from_records_sums(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        np.testing.assert_allclose(
            group.first_order, gaussian_data.sum(axis=0)
        )
        np.testing.assert_allclose(
            group.second_order, gaussian_data.T @ gaussian_data
        )
        assert group.count == gaussian_data.shape[0]

    def test_observation_1_mean(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        np.testing.assert_allclose(
            group.centroid, gaussian_data.mean(axis=0), atol=1e-10
        )

    def test_observation_2_covariance(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        np.testing.assert_allclose(
            group.covariance,
            np.cov(gaussian_data.T, bias=True),
            atol=1e-8,
        )

    def test_empty_constructor(self):
        group = GroupStatistics.empty(3)
        assert group.count == 0
        assert group.n_features == 3

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            GroupStatistics.from_records(np.empty((0, 3)))

    def test_from_moments_round_trip(self, gaussian_data):
        original = GroupStatistics.from_records(gaussian_data)
        rebuilt = GroupStatistics.from_moments(
            original.centroid, original.covariance, original.count
        )
        np.testing.assert_allclose(
            rebuilt.first_order, original.first_order, atol=1e-8
        )
        np.testing.assert_allclose(
            rebuilt.second_order, original.second_order, rtol=1e-8
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GroupStatistics(np.zeros(3), np.zeros((2, 2)), 1)
        with pytest.raises(ValueError):
            GroupStatistics(np.zeros((2, 2)), np.zeros((2, 2)), 1)
        with pytest.raises(ValueError):
            GroupStatistics(np.zeros(2), np.zeros((2, 2)), -1)


class TestGroupStatisticsUpdates:
    def test_incremental_add_matches_batch(self, gaussian_data):
        incremental = GroupStatistics.empty(4)
        for record in gaussian_data:
            incremental.add(record)
        batch = GroupStatistics.from_records(gaussian_data)
        np.testing.assert_allclose(
            incremental.first_order, batch.first_order, atol=1e-8
        )
        np.testing.assert_allclose(
            incremental.second_order, batch.second_order, atol=1e-6
        )

    def test_add_batch(self, gaussian_data):
        group = GroupStatistics.empty(4)
        group.add_batch(gaussian_data[:50])
        group.add_batch(gaussian_data[50:])
        np.testing.assert_allclose(
            group.centroid, gaussian_data.mean(axis=0), atol=1e-10
        )

    def test_merge_matches_joint(self, gaussian_data):
        left = GroupStatistics.from_records(gaussian_data[:40])
        right = GroupStatistics.from_records(gaussian_data[40:])
        left.merge(right)
        joint = GroupStatistics.from_records(gaussian_data)
        np.testing.assert_allclose(left.first_order, joint.first_order)
        np.testing.assert_allclose(left.second_order, joint.second_order)
        assert left.count == joint.count

    def test_merge_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimensionality"):
            GroupStatistics.empty(2).merge(GroupStatistics.empty(3))

    def test_add_wrong_shape(self):
        group = GroupStatistics.empty(3)
        with pytest.raises(ValueError):
            group.add(np.zeros(4))

    def test_empty_centroid_undefined(self):
        with pytest.raises(ValueError):
            __ = GroupStatistics.empty(2).centroid


class TestEigenSystem:
    def test_reconstruction(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        eigenvalues, eigenvectors = group.eigen_system()
        rebuilt = (eigenvectors * eigenvalues) @ eigenvectors.T
        np.testing.assert_allclose(rebuilt, group.covariance, atol=1e-8)

    def test_decreasing_nonnegative(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        eigenvalues, __ = group.eigen_system()
        assert (np.diff(eigenvalues) <= 1e-12).all()
        assert (eigenvalues >= 0).all()

    def test_rank_deficient_group(self):
        # Fewer records than dimensions: covariance is rank deficient but
        # the eigen system must still come out clean.
        records = np.random.default_rng(0).normal(size=(3, 5))
        group = GroupStatistics.from_records(records)
        eigenvalues, __ = group.eigen_system()
        assert (eigenvalues >= 0).all()
        assert np.sum(eigenvalues > 1e-10) <= 3


class TestSerialization:
    def test_group_round_trip(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        rebuilt = GroupStatistics.from_dict(group.to_dict())
        np.testing.assert_allclose(rebuilt.first_order, group.first_order)
        np.testing.assert_allclose(rebuilt.second_order, group.second_order)
        assert rebuilt.count == group.count

    def test_model_round_trip(self, gaussian_data):
        model = CondensedModel(
            groups=[
                GroupStatistics.from_records(gaussian_data[:60]),
                GroupStatistics.from_records(gaussian_data[60:]),
            ],
            k=10,
            metadata={"note": "test"},
        )
        rebuilt = CondensedModel.from_dict(model.to_dict())
        assert rebuilt.k == 10
        assert rebuilt.n_groups == 2
        assert rebuilt.metadata["note"] == "test"
        np.testing.assert_allclose(
            rebuilt.centroids(), model.centroids()
        )

    def test_dict_is_json_compatible(self, gaussian_data):
        import json

        group = GroupStatistics.from_records(gaussian_data[:5])
        payload = json.dumps(group.to_dict())
        rebuilt = GroupStatistics.from_dict(json.loads(payload))
        assert rebuilt.count == 5


class TestCondensedModel:
    def make_model(self, gaussian_data):
        return CondensedModel(
            groups=[
                GroupStatistics.from_records(gaussian_data[:30]),
                GroupStatistics.from_records(gaussian_data[30:75]),
                GroupStatistics.from_records(gaussian_data[75:]),
            ],
            k=30,
        )

    def test_counts(self, gaussian_data):
        model = self.make_model(gaussian_data)
        assert model.total_count == 120
        assert model.n_groups == 3
        np.testing.assert_array_equal(model.group_sizes, [30, 45, 45])
        assert model.average_group_size == pytest.approx(40.0)
        assert model.minimum_group_size == 30

    def test_centroids_shape(self, gaussian_data):
        model = self.make_model(gaussian_data)
        assert model.centroids().shape == (3, 4)

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError, match="at least one group"):
            CondensedModel(groups=[], k=5)

    def test_dimension_disagreement_rejected(self, gaussian_data):
        with pytest.raises(ValueError, match="dimensionality"):
            CondensedModel(
                groups=[
                    GroupStatistics.from_records(gaussian_data),
                    GroupStatistics.from_records(gaussian_data[:, :2]),
                ],
                k=5,
            )

    def test_invalid_k_rejected(self, gaussian_data):
        with pytest.raises(ValueError):
            CondensedModel(
                groups=[GroupStatistics.from_records(gaussian_data)], k=0
            )


class TestGroupStatisticsProperties:
    @given(seed=st.integers(0, 1000), n=st.integers(1, 60),
           d=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_moments_match_numpy(self, seed, n, d):
        records = np.random.default_rng(seed).normal(size=(n, d))
        group = GroupStatistics.from_records(records)
        np.testing.assert_allclose(
            group.centroid, records.mean(axis=0), atol=1e-9
        )
        np.testing.assert_allclose(
            group.covariance,
            np.cov(records.T, bias=True).reshape(d, d),
            atol=1e-7,
        )

    @given(seed=st.integers(0, 1000), split=st.integers(1, 39))
    @settings(max_examples=25, deadline=None)
    def test_merge_associativity(self, seed, split):
        records = np.random.default_rng(seed).normal(size=(40, 3))
        a = GroupStatistics.from_records(records[:split])
        b = GroupStatistics.from_records(records[split:])
        a.merge(b)
        joint = GroupStatistics.from_records(records)
        np.testing.assert_allclose(a.covariance, joint.covariance,
                                   atol=1e-7)

"""Tests for repro.core.condensation — the static algorithm (Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.condensation import (
    condensation_information_loss,
    create_condensed_groups,
)


class TestGroupSizes:
    def test_every_group_at_least_k(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=7, random_state=0)
        assert (model.group_sizes >= 7).all()

    def test_exact_multiple_gives_equal_groups(self, gaussian_data):
        # 120 records, k=10 -> exactly 12 groups of 10.
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        assert model.n_groups == 12
        assert (model.group_sizes == 10).all()

    def test_leftovers_absorbed(self, gaussian_data):
        # 120 records, k=7 -> 17 groups of 7 with 1 leftover absorbed.
        model = create_condensed_groups(gaussian_data, k=7, random_state=0)
        assert model.n_groups == 17
        assert model.total_count == 120
        assert model.group_sizes.max() == 8

    def test_k_one_gives_singletons(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=1, random_state=0)
        assert model.n_groups == 120
        assert (model.group_sizes == 1).all()

    def test_k_equals_n_single_group(self, gaussian_data):
        model = create_condensed_groups(
            gaussian_data, k=120, random_state=0
        )
        assert model.n_groups == 1
        assert model.group_sizes[0] == 120


class TestPartition:
    def test_memberships_partition_all_records(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=9, random_state=1)
        memberships = model.metadata["memberships"]
        combined = np.concatenate(memberships)
        assert sorted(combined.tolist()) == list(range(120))

    def test_group_statistics_match_members(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=9, random_state=2)
        for group, members in zip(
            model.groups, model.metadata["memberships"]
        ):
            records = gaussian_data[members]
            np.testing.assert_allclose(
                group.centroid, records.mean(axis=0), atol=1e-9
            )
            np.testing.assert_allclose(
                group.covariance, np.cov(records.T, bias=True), atol=1e-7
            )

    def test_total_first_order_preserved(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=11, random_state=3)
        total = sum(group.first_order for group in model.groups)
        np.testing.assert_allclose(
            total, gaussian_data.sum(axis=0), atol=1e-8
        )

    def test_total_second_order_preserved(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=11, random_state=3)
        total = sum(group.second_order for group in model.groups)
        np.testing.assert_allclose(
            total, gaussian_data.T @ gaussian_data, rtol=1e-10
        )


class TestLocality:
    def test_groups_are_local(self, rng):
        # Two well-separated blobs: no group should straddle them.
        blob_a = rng.normal(loc=0.0, size=(50, 2))
        blob_b = rng.normal(loc=100.0, size=(50, 2))
        data = np.vstack([blob_a, blob_b])
        model = create_condensed_groups(data, k=5, random_state=0)
        for members in model.metadata["memberships"]:
            sides = set((np.asarray(members) >= 50).tolist())
            assert len(sides) == 1

    def test_information_loss_increases_with_k(self, gaussian_data):
        losses = []
        for k in (2, 10, 40):
            model = create_condensed_groups(
                gaussian_data, k=k, random_state=4
            )
            losses.append(
                condensation_information_loss(gaussian_data, model)
            )
        assert losses[0] < losses[1] < losses[2]

    def test_information_loss_bounds(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=5)
        loss = condensation_information_loss(gaussian_data, model)
        assert 0.0 <= loss <= 1.0

    def test_information_loss_zero_for_singletons(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=1, random_state=6)
        loss = condensation_information_loss(gaussian_data, model)
        assert loss == pytest.approx(0.0, abs=1e-12)


class TestValidationAndDeterminism:
    def test_too_few_records(self):
        with pytest.raises(ValueError, match="at least k"):
            create_condensed_groups(np.zeros((3, 2)), k=5)

    def test_invalid_k(self, gaussian_data):
        with pytest.raises(ValueError):
            create_condensed_groups(gaussian_data, k=0)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            create_condensed_groups(np.zeros(5), k=2)

    def test_deterministic_given_seed(self, gaussian_data):
        a = create_condensed_groups(gaussian_data, k=8, random_state=42)
        b = create_condensed_groups(gaussian_data, k=8, random_state=42)
        np.testing.assert_allclose(a.centroids(), b.centroids())

    def test_different_seeds_differ(self, gaussian_data):
        a = create_condensed_groups(gaussian_data, k=8, random_state=1)
        b = create_condensed_groups(gaussian_data, k=8, random_state=2)
        assert not np.allclose(a.centroids(), b.centroids())

    def test_unknown_strategy(self, gaussian_data):
        with pytest.raises(ValueError, match="unknown strategy"):
            create_condensed_groups(gaussian_data, k=5, strategy="magic")

    def test_information_loss_requires_memberships(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        model.metadata.pop("memberships")
        with pytest.raises(ValueError, match="membership"):
            condensation_information_loss(gaussian_data, model)


class TestPropertyInvariants:
    @given(
        seed=st.integers(0, 300),
        n=st.integers(5, 80),
        d=st.integers(1, 5),
        k=st.integers(1, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_and_sizes(self, seed, n, d, k):
        k = min(k, n)
        data = np.random.default_rng(seed).normal(size=(n, d))
        model = create_condensed_groups(data, k=k, random_state=seed)
        assert model.total_count == n
        assert (model.group_sizes >= k).all()
        combined = np.concatenate(model.metadata["memberships"])
        assert sorted(combined.tolist()) == list(range(n))
        # No group can exceed 2k - 1: a group only exceeds k through
        # leftover absorption, and there are at most k - 1 leftovers.
        assert model.group_sizes.max() <= 2 * k - 1


class TestNonFiniteInputs:
    def test_nan_rejected(self, gaussian_data):
        corrupted = gaussian_data.copy()
        corrupted[3, 1] = np.nan
        with pytest.raises(ValueError, match="NaN or infinite"):
            create_condensed_groups(corrupted, k=5, random_state=0)

    def test_inf_rejected(self, gaussian_data):
        corrupted = gaussian_data.copy()
        corrupted[0, 0] = np.inf
        with pytest.raises(ValueError, match="NaN or infinite"):
            create_condensed_groups(corrupted, k=5, random_state=0)

    def test_group_add_rejects_nan(self):
        from repro.core.statistics import GroupStatistics

        group = GroupStatistics.empty(2)
        with pytest.raises(ValueError, match="NaN or infinite"):
            group.add(np.array([1.0, np.nan]))

    def test_maintainer_add_rejects_nan(self, gaussian_data):
        from repro.core.dynamic import DynamicGroupMaintainer

        maintainer = DynamicGroupMaintainer(
            10, initial_data=gaussian_data, random_state=0
        )
        record = np.full(4, np.nan)
        with pytest.raises(ValueError, match="NaN or infinite"):
            maintainer.add(record)

"""Edge-case behaviour of the condensation pipeline.

Degenerate inputs a production system will eventually meet: duplicate
records, constant attributes, single-column data, tiny data sets, and
enormous scale differences.
"""

import numpy as np
import pytest

from repro.core.condensation import create_condensed_groups
from repro.core.condenser import StaticCondenser
from repro.core.dynamic import DynamicGroupMaintainer
from repro.core.generation import generate_anonymized_data
from repro.metrics.compatibility import covariance_compatibility


class TestDuplicateRecords:
    def test_all_identical_records(self):
        data = np.tile(np.array([1.0, -2.0, 3.0]), (40, 1))
        model = create_condensed_groups(data, 10, random_state=0)
        generated = generate_anonymized_data(model, random_state=0)
        # Zero variance everywhere: generation reproduces the record.
        np.testing.assert_allclose(generated, data, atol=1e-9)

    def test_heavy_duplication(self, rng):
        base = rng.normal(size=(5, 3))
        data = np.repeat(base, 20, axis=0)
        model = create_condensed_groups(data, 10, random_state=0)
        assert model.total_count == 100
        assert (model.group_sizes >= 10).all()

    def test_dynamic_with_duplicates(self, rng):
        base = np.tile(rng.normal(size=3), (30, 1))
        maintainer = DynamicGroupMaintainer(
            5, initial_data=base, random_state=0
        )
        # Stream 50 more copies: splits occur on zero-variance groups.
        for __ in range(50):
            maintainer.add(base[0])
        sizes = maintainer.group_sizes()
        assert sizes.sum() == 80
        assert (sizes >= 5).all()
        assert (sizes < 10).all()


class TestConstantAttributes:
    def test_constant_column_survives_pipeline(self, rng):
        data = np.column_stack([
            rng.normal(size=100),
            np.full(100, 7.0),
            rng.normal(size=100),
        ])
        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            data
        )
        np.testing.assert_allclose(anonymized[:, 1], 7.0, atol=1e-7)

    def test_single_column_data(self, rng):
        data = rng.normal(size=(60, 1))
        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            data
        )
        assert anonymized.shape == (60, 1)
        assert abs(
            anonymized.std() - data.std()
        ) < 0.3 * data.std()


class TestScaleExtremes:
    def test_wildly_different_scales(self, rng):
        data = np.column_stack([
            1e-6 * rng.normal(size=80),
            1e6 * rng.normal(size=80),
        ])
        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            data
        )
        assert np.isfinite(anonymized).all()
        assert covariance_compatibility(data, anonymized) > 0.9

    def test_large_offsets(self, rng):
        data = 1e7 + rng.normal(size=(80, 3))
        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            data
        )
        assert np.isfinite(anonymized).all()
        np.testing.assert_allclose(
            anonymized.mean(axis=0), data.mean(axis=0), rtol=1e-5
        )


class TestTinyDatasets:
    def test_n_equals_k(self, rng):
        data = rng.normal(size=(5, 2))
        model = create_condensed_groups(data, 5, random_state=0)
        assert model.n_groups == 1

    def test_n_equals_k_plus_one(self, rng):
        data = rng.normal(size=(6, 2))
        model = create_condensed_groups(data, 5, random_state=0)
        assert model.n_groups == 1
        assert model.group_sizes[0] == 6

    def test_two_records_k_two(self, rng):
        data = rng.normal(size=(2, 4))
        model = create_condensed_groups(data, 2, random_state=0)
        generated = generate_anonymized_data(model, random_state=0)
        assert generated.shape == (2, 4)

    def test_dynamic_minimal(self, rng):
        maintainer = DynamicGroupMaintainer(1, random_state=0)
        maintainer.add(rng.normal(size=2))
        assert maintainer.n_groups == 1
        maintainer.add(rng.normal(size=2))
        # 2k = 2 triggers an immediate split at k=1.
        assert maintainer.n_groups == 2

"""Tests for repro.core.coarsen — raising k without raw data."""

import numpy as np
import pytest

from repro.core.coarsen import coarsen_model, coarsening_schedule
from repro.core.condensation import create_condensed_groups
from repro.core.generation import generate_anonymized_data
from repro.metrics.compatibility import covariance_compatibility
from repro.privacy.metrics import privacy_report


class TestCoarsenModel:
    def test_target_level_met(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=5, random_state=0)
        coarse = coarsen_model(base, 20)
        assert (coarse.group_sizes >= 20).all()
        assert privacy_report(coarse).satisfied

    def test_total_mass_conserved(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=5, random_state=0)
        coarse = coarsen_model(base, 25)
        assert coarse.total_count == 120
        total_first = sum(group.first_order for group in coarse.groups)
        np.testing.assert_allclose(
            total_first, gaussian_data.sum(axis=0), atol=1e-8
        )
        total_second = sum(group.second_order for group in coarse.groups)
        np.testing.assert_allclose(
            total_second, gaussian_data.T @ gaussian_data, rtol=1e-10
        )

    def test_input_model_untouched(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=5, random_state=0)
        sizes_before = base.group_sizes.copy()
        coarsen_model(base, 30)
        np.testing.assert_array_equal(base.group_sizes, sizes_before)

    def test_same_level_is_identity_partition(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=10, random_state=0)
        coarse = coarsen_model(base, 10)
        assert coarse.n_groups == base.n_groups

    def test_extreme_level_single_group(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=5, random_state=0)
        coarse = coarsen_model(base, 120)
        assert coarse.n_groups == 1
        np.testing.assert_allclose(
            coarse.groups[0].centroid, gaussian_data.mean(axis=0),
            atol=1e-9,
        )

    def test_lineage_partitions_source_groups(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=5, random_state=0)
        coarse = coarsen_model(base, 30)
        lineage = coarse.metadata["lineage"]
        combined = sorted(
            index for entry in lineage for index in entry
        )
        assert combined == list(range(base.n_groups))

    def test_memberships_propagated(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=5, random_state=0)
        coarse = coarsen_model(base, 30)
        memberships = coarse.metadata["memberships"]
        combined = np.concatenate(memberships)
        assert sorted(combined.tolist()) == list(range(120))

    def test_merges_are_local(self, rng):
        # Two far blobs: coarsening must never merge across them until
        # forced to.
        data = np.vstack([
            rng.normal(loc=0.0, size=(60, 2)),
            rng.normal(loc=200.0, size=(60, 2)),
        ])
        base = create_condensed_groups(data, k=5, random_state=0)
        coarse = coarsen_model(base, 30)
        for group in coarse.groups:
            assert (
                abs(group.centroid[0]) < 50
                or abs(group.centroid[0] - 200) < 50
            )

    def test_lower_target_rejected(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=10, random_state=0)
        with pytest.raises(ValueError, match="below"):
            coarsen_model(base, 5)

    def test_impossible_target_rejected(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=10, random_state=0)
        with pytest.raises(ValueError, match="exceeds"):
            coarsen_model(base, 121)

    def test_generation_from_coarsened_model(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=5, random_state=0)
        coarse = coarsen_model(base, 30)
        anonymized = generate_anonymized_data(coarse, random_state=0)
        assert anonymized.shape == gaussian_data.shape
        assert covariance_compatibility(gaussian_data, anonymized) > 0.85


class TestCoarseningSchedule:
    def test_ladder_levels(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=5, random_state=0)
        ladder = coarsening_schedule(base, [10, 20, 40])
        assert set(ladder) == {10, 20, 40}
        for level, model in ladder.items():
            assert (model.group_sizes >= level).all()
            assert model.total_count == 120

    def test_monotone_group_counts(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=5, random_state=0)
        ladder = coarsening_schedule(base, [10, 20, 40])
        assert (
            ladder[10].n_groups >= ladder[20].n_groups
            >= ladder[40].n_groups
        )

    def test_invalid_level_rejected(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=10, random_state=0)
        with pytest.raises(ValueError, match=">="):
            coarsening_schedule(base, [5, 20])

    def test_empty_levels(self, gaussian_data):
        base = create_condensed_groups(gaussian_data, k=10, random_state=0)
        assert coarsening_schedule(base, []) == {}

"""Tests for repro.core.dynamic — the streaming algorithm (Figs. 2-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicGroupMaintainer, split_group_statistics
from repro.core.statistics import GroupStatistics


def make_group(seed=0, n=40, d=4, scale=1.0):
    records = scale * np.random.default_rng(seed).normal(size=(n, d))
    return GroupStatistics.from_records(records)


class TestSplitGroupStatistics:
    def test_child_counts(self):
        group = make_group(n=40)
        first, second = split_group_statistics(group, k=20)
        assert first.count == 20
        assert second.count == 20

    def test_paper_invariant_enforced(self):
        group = make_group(n=30)
        with pytest.raises(ValueError, match="n = 2k"):
            split_group_statistics(group, k=20)

    def test_odd_split_without_k(self):
        group = make_group(n=41)
        first, second = split_group_statistics(group)
        assert first.count == 21
        assert second.count == 20

    def test_centroid_midpoint_is_parent_centroid(self):
        group = make_group(n=40)
        first, second = split_group_statistics(group, k=20)
        midpoint = (first.centroid + second.centroid) / 2.0
        np.testing.assert_allclose(midpoint, group.centroid, atol=1e-8)

    def test_centroid_offset_along_leading_eigenvector(self):
        group = make_group(n=40)
        eigenvalues, eigenvectors = group.eigen_system()
        first, second = split_group_statistics(group, k=20)
        offset = first.centroid - group.centroid
        expected = np.sqrt(12.0 * eigenvalues[0]) / 4.0
        # Offset is ± expected along e1 and zero elsewhere.
        along = float(offset @ eigenvectors[:, 0])
        assert abs(abs(along) - expected) < 1e-8
        residual = offset - along * eigenvectors[:, 0]
        np.testing.assert_allclose(residual, 0.0, atol=1e-8)

    def test_children_share_covariance(self):
        group = make_group(n=40)
        first, second = split_group_statistics(group, k=20)
        np.testing.assert_allclose(
            first.covariance, second.covariance, atol=1e-8
        )

    def test_variance_along_split_axis_quartered(self):
        group = make_group(n=40)
        parent_values, parent_vectors = group.eigen_system()
        first, __ = split_group_statistics(group, k=20)
        along = float(
            parent_vectors[:, 0] @ first.covariance @ parent_vectors[:, 0]
        )
        assert along == pytest.approx(parent_values[0] / 4.0, rel=1e-7)

    def test_non_leading_eigenvalues_unchanged(self):
        group = make_group(n=40)
        parent_values, __ = group.eigen_system()
        first, __ = split_group_statistics(group, k=20)
        child_values = np.sort(first.eigen_system()[0])
        expected = np.sort(
            np.concatenate([[parent_values[0] / 4.0], parent_values[1:]])
        )
        np.testing.assert_allclose(child_values, expected, atol=1e-7)

    def test_eigenvectors_unchanged(self):
        group = make_group(n=40)
        __, parent_vectors = group.eigen_system()
        first, __ = split_group_statistics(group, k=20)
        child_covariance = first.covariance
        # The parent's eigenvectors must still diagonalize the child.
        diagonalized = (
            parent_vectors.T @ child_covariance @ parent_vectors
        )
        off_diagonal = diagonalized - np.diag(np.diag(diagonalized))
        np.testing.assert_allclose(off_diagonal, 0.0, atol=1e-7)

    def test_sum_of_first_order_preserved(self):
        # Fs(M1) + Fs(M2) = 2k * Y(M) = Fs(M): the split conserves the
        # total first-order mass.
        group = make_group(n=40)
        first, second = split_group_statistics(group, k=20)
        np.testing.assert_allclose(
            first.first_order + second.first_order,
            group.first_order,
            atol=1e-7,
        )

    def test_equation_3_consistency(self):
        # Sc must satisfy Sc = n*C + n*outer(mean, mean) for each child.
        group = make_group(n=40)
        first, __ = split_group_statistics(group, k=20)
        rebuilt = 20 * (
            first.covariance + np.outer(first.centroid, first.centroid)
        )
        np.testing.assert_allclose(rebuilt, first.second_order, rtol=1e-7)

    def test_merged_children_variance_along_split_axis(self):
        # Merging the two children's statistics recovers the parent's
        # variance along e1: two uniforms of variance λ/4 displaced by
        # ±a/4 have pooled variance λ/4 + (a/4)^2 = λ/4 + 12λ/16/4 = λ.
        group = make_group(n=40)
        parent_values, parent_vectors = group.eigen_system()
        first, second = split_group_statistics(group, k=20)
        merged = first.copy()
        merged.merge(second)
        merged_covariance = merged.covariance
        along = float(
            parent_vectors[:, 0]
            @ merged_covariance
            @ parent_vectors[:, 0]
        )
        assert along == pytest.approx(parent_values[0], rel=1e-6)

    def test_merged_children_recover_parent_covariance(self):
        group = make_group(n=40)
        first, second = split_group_statistics(group, k=20)
        merged = first.copy()
        merged.merge(second)
        np.testing.assert_allclose(
            merged.covariance, group.covariance, atol=1e-7
        )

    def test_tiny_group_rejected(self):
        group = GroupStatistics.from_records(np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError, match="cannot split"):
            split_group_statistics(group)

    def test_zero_variance_group_splits_in_place(self):
        records = np.ones((10, 3))
        group = GroupStatistics.from_records(records)
        first, second = split_group_statistics(group, k=5)
        np.testing.assert_allclose(first.centroid, second.centroid)

    @given(seed=st.integers(0, 500), k=st.integers(1, 30),
           d=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_property_split_conserves_mass_and_psd(self, seed, k, d):
        records = np.random.default_rng(seed).normal(size=(2 * k, d))
        group = GroupStatistics.from_records(records)
        first, second = split_group_statistics(group, k=k)
        assert first.count + second.count == 2 * k
        np.testing.assert_allclose(
            first.first_order + second.first_order,
            group.first_order,
            atol=1e-6,
        )
        for child in (first, second):
            eigenvalues, __ = child.eigen_system()
            assert (eigenvalues >= -1e-9).all()


class TestDynamicGroupMaintainer:
    def test_bootstrap_from_static_database(self, gaussian_data):
        maintainer = DynamicGroupMaintainer(
            k=10, initial_data=gaussian_data, random_state=0
        )
        assert maintainer.n_groups == 12
        assert maintainer.n_absorbed == 120

    def test_group_sizes_stay_in_band(self, gaussian_data, rng):
        maintainer = DynamicGroupMaintainer(
            k=10, initial_data=gaussian_data, random_state=0
        )
        stream = rng.normal(
            loc=gaussian_data.mean(axis=0), size=(500, 4)
        )
        for record in stream:
            maintainer.add(record)
            assert (maintainer.group_sizes() < 20).all()
        assert (maintainer.group_sizes() >= 10).all()

    def test_splits_occur(self, gaussian_data, rng):
        maintainer = DynamicGroupMaintainer(
            k=10, initial_data=gaussian_data, random_state=0
        )
        stream = rng.normal(
            loc=gaussian_data.mean(axis=0), size=(300, 4)
        )
        maintainer.add_stream(stream)
        assert maintainer.n_splits > 0
        assert maintainer.n_absorbed == 420

    def test_total_count_conserved(self, gaussian_data, rng):
        maintainer = DynamicGroupMaintainer(
            k=5, initial_data=gaussian_data, random_state=0
        )
        maintainer.add_stream(rng.normal(size=(200, 4)))
        assert maintainer.group_sizes().sum() == 320

    def test_cold_start_buffers_until_k(self, rng):
        maintainer = DynamicGroupMaintainer(k=10, random_state=0)
        for record in rng.normal(size=(9, 3)):
            maintainer.add(record)
        assert maintainer.n_groups == 0
        assert maintainer.n_pending == 9
        maintainer.add(rng.normal(size=3))
        assert maintainer.n_groups == 1
        assert maintainer.n_pending == 0

    def test_cold_start_model_before_k_rejected(self, rng):
        maintainer = DynamicGroupMaintainer(k=10, random_state=0)
        maintainer.add(rng.normal(size=3))
        with pytest.raises(ValueError, match="fewer than k"):
            maintainer.to_model()

    def test_snapshot_is_independent(self, gaussian_data, rng):
        maintainer = DynamicGroupMaintainer(
            k=10, initial_data=gaussian_data, random_state=0
        )
        snapshot = maintainer.to_model()
        before = snapshot.total_count
        maintainer.add_stream(rng.normal(size=(50, 4)))
        assert snapshot.total_count == before

    def test_routing_to_nearest_group(self):
        # Two far-apart groups; a point near one must be absorbed there.
        blob_a = np.random.default_rng(0).normal(loc=0.0, size=(10, 2))
        blob_b = np.random.default_rng(1).normal(loc=100.0, size=(10, 2))
        maintainer = DynamicGroupMaintainer(
            k=10, initial_data=np.vstack([blob_a, blob_b]), random_state=0
        )
        sizes_before = np.sort(maintainer.group_sizes())
        maintainer.add(np.array([99.0, 101.0]))
        centroids = [group.centroid for group in maintainer.to_model().groups]
        big = max(
            range(len(centroids)), key=lambda i: centroids[i][0]
        )
        assert maintainer.group_sizes()[big] == 11
        assert sizes_before.sum() + 1 == maintainer.group_sizes().sum()

    def test_record_dimension_mismatch(self, gaussian_data):
        maintainer = DynamicGroupMaintainer(
            k=10, initial_data=gaussian_data, random_state=0
        )
        with pytest.raises(ValueError, match="attributes"):
            maintainer.add(np.zeros(3))

    def test_non_vector_record_rejected(self, gaussian_data):
        maintainer = DynamicGroupMaintainer(
            k=10, initial_data=gaussian_data, random_state=0
        )
        with pytest.raises(ValueError, match="vector"):
            maintainer.add(np.zeros((2, 4)))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            DynamicGroupMaintainer(k=0)

    def test_metadata_in_snapshot(self, gaussian_data, rng):
        maintainer = DynamicGroupMaintainer(
            k=10, initial_data=gaussian_data, random_state=0
        )
        maintainer.add_stream(rng.normal(size=(150, 4)))
        model = maintainer.to_model()
        assert model.metadata["n_splits"] == maintainer.n_splits
        assert model.metadata["n_absorbed"] == 270

"""Tests for repro.core.condenser — the public estimator API."""

import numpy as np
import pytest

from repro.core.condenser import (
    ClasswiseCondenser,
    DynamicCondenser,
    StaticCondenser,
)
from repro.metrics.compatibility import covariance_compatibility


class TestStaticCondenser:
    def test_fit_generate_shape(self, gaussian_data):
        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            gaussian_data
        )
        assert anonymized.shape == gaussian_data.shape

    def test_covariance_structure_preserved(self, gaussian_data):
        condenser = StaticCondenser(k=10, random_state=0)
        anonymized = condenser.fit_generate(gaussian_data)
        assert covariance_compatibility(gaussian_data, anonymized) > 0.9

    def test_records_differ_from_original(self, gaussian_data):
        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            gaussian_data
        )
        original_rows = {tuple(np.round(row, 8)) for row in gaussian_data}
        overlap = sum(
            tuple(np.round(row, 8)) in original_rows for row in anonymized
        )
        assert overlap == 0

    def test_average_group_size(self, gaussian_data):
        condenser = StaticCondenser(k=10, random_state=0).fit(gaussian_data)
        assert condenser.average_group_size == pytest.approx(10.0)

    def test_generate_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            StaticCondenser(k=5).generate()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            StaticCondenser(k=0)

    def test_model_exposed(self, gaussian_data):
        condenser = StaticCondenser(k=10, random_state=0).fit(gaussian_data)
        assert condenser.model_.k == 10
        assert condenser.model_.total_count == 120

    def test_gaussian_sampler_option(self, gaussian_data):
        condenser = StaticCondenser(
            k=10, sampler="gaussian", random_state=0
        )
        anonymized = condenser.fit_generate(gaussian_data)
        assert covariance_compatibility(gaussian_data, anonymized) > 0.85


class TestDynamicCondenser:
    def test_fit_partial_fit_generate(self, gaussian_data, rng):
        condenser = DynamicCondenser(k=10, random_state=0).fit(
            gaussian_data
        )
        stream = rng.normal(
            loc=gaussian_data.mean(axis=0), size=(100, 4)
        )
        condenser.partial_fit(stream)
        anonymized = condenser.generate()
        assert anonymized.shape == (220, 4)

    def test_single_record_partial_fit(self, gaussian_data):
        condenser = DynamicCondenser(k=10, random_state=0).fit(
            gaussian_data
        )
        condenser.partial_fit(gaussian_data[0])
        assert condenser.model_.total_count == 121

    def test_cold_start(self, rng):
        condenser = DynamicCondenser(k=5, random_state=0).fit()
        condenser.partial_fit(rng.normal(size=(50, 3)))
        assert condenser.n_groups >= 1
        assert condenser.model_.total_count == 50

    def test_bad_record_rank(self, gaussian_data):
        condenser = DynamicCondenser(k=10, random_state=0).fit(
            gaussian_data
        )
        with pytest.raises(ValueError, match="1-D or 2-D"):
            condenser.partial_fit(np.zeros((2, 2, 2)))

    def test_unfitted(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DynamicCondenser(k=5).partial_fit(np.zeros(3))

    def test_n_splits_property(self, gaussian_data, rng):
        condenser = DynamicCondenser(k=10, random_state=0).fit(
            gaussian_data
        )
        condenser.partial_fit(
            rng.normal(loc=gaussian_data.mean(axis=0), size=(300, 4))
        )
        assert condenser.n_splits > 0


class TestClasswiseCondenser:
    def test_labels_preserved(self, labelled_blobs):
        data, labels = labelled_blobs
        anonymized, anonymized_labels = ClasswiseCondenser(
            k=10, random_state=0
        ).fit_generate(data, labels)
        assert anonymized.shape == data.shape
        counts = dict(zip(*np.unique(anonymized_labels,
                                     return_counts=True)))
        assert counts == {0: 60, 1: 60}

    def test_class_separation_survives(self, labelled_blobs):
        data, labels = labelled_blobs
        anonymized, anonymized_labels = ClasswiseCondenser(
            k=10, random_state=0
        ).fit_generate(data, labels)
        mean_a = anonymized[anonymized_labels == 0].mean(axis=0)
        mean_b = anonymized[anonymized_labels == 1].mean(axis=0)
        assert np.linalg.norm(mean_a - mean_b) > 3.0

    def test_dynamic_mode(self, labelled_blobs):
        data, labels = labelled_blobs
        anonymized, anonymized_labels = ClasswiseCondenser(
            k=10, mode="dynamic", random_state=0
        ).fit_generate(data, labels)
        assert anonymized.shape[0] == data.shape[0]

    def test_small_class_error_policy(self, rng):
        data = rng.normal(size=(25, 3))
        labels = np.array([0] * 22 + [1] * 3)
        with pytest.raises(ValueError, match="fewer than k"):
            ClasswiseCondenser(k=10, random_state=0).fit(data, labels)

    def test_small_class_single_group_policy(self, rng):
        data = rng.normal(size=(25, 3))
        labels = np.array([0] * 22 + [1] * 3)
        condenser = ClasswiseCondenser(
            k=10, small_class_policy="single_group", random_state=0
        ).fit(data, labels)
        assert condenser.models_[1].n_groups == 1
        anonymized, anonymized_labels = condenser.generate()
        assert int(np.sum(anonymized_labels == 1)) == 3

    def test_invalid_policy(self):
        with pytest.raises(ValueError, match="small_class_policy"):
            ClasswiseCondenser(k=5, small_class_policy="drop")

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ClasswiseCondenser(k=5, mode="batch")

    def test_average_group_size(self, labelled_blobs):
        data, labels = labelled_blobs
        condenser = ClasswiseCondenser(k=10, random_state=0).fit(
            data, labels
        )
        assert condenser.average_group_size == pytest.approx(10.0)

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            ClasswiseCondenser(k=5).generate()

    def test_label_shape_mismatch(self, gaussian_data):
        with pytest.raises(ValueError):
            ClasswiseCondenser(k=5).fit(gaussian_data, np.zeros(3))

    def test_string_labels(self, labelled_blobs):
        data, labels = labelled_blobs
        names = np.where(labels == 0, "neg", "pos")
        anonymized, anonymized_labels = ClasswiseCondenser(
            k=10, random_state=0
        ).fit_generate(data, names)
        assert set(anonymized_labels.tolist()) == {"neg", "pos"}

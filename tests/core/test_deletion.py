"""Tests for deletion support — the §3 extension (remove + merge)."""

import numpy as np
import pytest

from repro.core.condenser import DynamicCondenser
from repro.core.dynamic import DynamicGroupMaintainer
from repro.core.statistics import GroupStatistics


class TestGroupStatisticsRemove:
    def test_remove_inverts_add(self, gaussian_data):
        group = GroupStatistics.from_records(gaussian_data)
        extra = np.array([5.0, -1.0, 2.0, 0.5])
        group.add(extra)
        group.remove(extra)
        np.testing.assert_allclose(
            group.centroid, gaussian_data.mean(axis=0), atol=1e-9
        )
        assert group.count == 120

    def test_remove_to_empty(self):
        record = np.array([1.0, 2.0])
        group = GroupStatistics.from_records(record[None, :])
        group.remove(record)
        assert group.count == 0
        np.testing.assert_allclose(group.first_order, 0.0, atol=1e-12)

    def test_remove_from_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            GroupStatistics.empty(2).remove(np.zeros(2))


class TestMaintainerRemove:
    def make_maintainer(self, gaussian_data, k=10):
        return DynamicGroupMaintainer(
            k, initial_data=gaussian_data, random_state=0
        )

    def test_count_decreases(self, gaussian_data):
        maintainer = self.make_maintainer(gaussian_data)
        maintainer.remove(gaussian_data[0])
        assert maintainer.group_sizes().sum() == 119
        assert maintainer.n_absorbed == 119

    def test_band_restored_after_merge(self, gaussian_data):
        maintainer = self.make_maintainer(gaussian_data, k=10)
        # Remove enough records to force groups below k repeatedly.
        for record in gaussian_data[:60]:
            maintainer.remove(record)
        sizes = maintainer.group_sizes()
        assert (sizes >= 10).all()
        assert (sizes < 20).all()
        assert sizes.sum() == 60
        assert maintainer.n_merges > 0

    def test_merge_can_trigger_resplit(self, rng):
        # Two adjacent groups of near-2k size: deleting from one forces
        # a merge whose result reaches 2k and must re-split.
        data = rng.normal(size=(38, 3))
        maintainer = DynamicGroupMaintainer(
            10, initial_data=data, random_state=0
        )
        # 38 records at k=10 -> 3 groups (10, 10, 18) after leftover
        # absorption.  Deleting from the 10-group merges into another.
        splits_before = maintainer.n_splits
        removed = 0
        for record in data:
            if maintainer.group_sizes().min() == 10:
                maintainer.remove(record)
                removed += 1
                if maintainer.n_splits > splits_before:
                    break
        assert maintainer.group_sizes().sum() == 38 - removed
        assert (maintainer.group_sizes() >= 10).all()

    def test_interleaved_adds_and_removes(self, gaussian_data, rng):
        maintainer = self.make_maintainer(gaussian_data, k=8)
        stream = rng.normal(
            loc=gaussian_data.mean(axis=0), size=(200, 4)
        )
        for position, record in enumerate(stream):
            maintainer.add(record)
            if position % 3 == 0:
                maintainer.remove(stream[rng.integers(0, position + 1)])
            sizes = maintainer.group_sizes()
            assert (sizes >= 8).all()
            assert (sizes < 16).all()

    def test_cannot_empty_the_last_group(self, rng):
        data = rng.normal(size=(5, 2))
        maintainer = DynamicGroupMaintainer(
            5, initial_data=data, random_state=0
        )
        for record in data[:4]:
            maintainer.remove(record)
        with pytest.raises(ValueError, match="last record"):
            maintainer.remove(data[4])

    def test_remove_before_any_group(self):
        maintainer = DynamicGroupMaintainer(5, random_state=0)
        with pytest.raises(ValueError, match="no groups"):
            maintainer.remove(np.zeros(3))

    def test_dimension_checked(self, gaussian_data):
        maintainer = self.make_maintainer(gaussian_data)
        with pytest.raises(ValueError, match="attributes"):
            maintainer.remove(np.zeros(3))

    def test_merges_tracked_in_model_metadata(self, gaussian_data):
        maintainer = self.make_maintainer(gaussian_data, k=10)
        for record in gaussian_data[:30]:
            maintainer.remove(record)
        model = maintainer.to_model()
        assert model.metadata["n_merges"] == maintainer.n_merges


class TestDynamicCondenserRemove:
    def test_partial_remove_batch(self, gaussian_data):
        condenser = DynamicCondenser(k=10, random_state=0).fit(
            gaussian_data
        )
        condenser.partial_remove(gaussian_data[:20])
        assert condenser.model_.total_count == 100

    def test_partial_remove_single(self, gaussian_data):
        condenser = DynamicCondenser(k=10, random_state=0).fit(
            gaussian_data
        )
        condenser.partial_remove(gaussian_data[0])
        assert condenser.model_.total_count == 119

    def test_generate_after_removal(self, gaussian_data):
        condenser = DynamicCondenser(k=10, random_state=0).fit(
            gaussian_data
        )
        condenser.partial_remove(gaussian_data[:40])
        anonymized = condenser.generate()
        assert anonymized.shape == (80, 4)

    def test_bad_rank(self, gaussian_data):
        condenser = DynamicCondenser(k=10, random_state=0).fit(
            gaussian_data
        )
        with pytest.raises(ValueError, match="1-D or 2-D"):
            condenser.partial_remove(np.zeros((2, 2, 2)))

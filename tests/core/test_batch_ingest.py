"""Differential tests: vectorized batch ingest versus the sequential path.

The batch ingest path (``ingest_many`` / ``ingest_block``) makes two
distinct promises, and the tests here hold it to both:

* ``batch_size=1`` is **bit identical** to sequential ``add`` — same
  groups, same centroids, same RNG position, and (on a durable
  condenser) byte-identical WAL segments.
* Any fixed ``batch_size`` is deterministic, conserves first- and
  second-order moment mass exactly, keeps every group inside the
  ``[k, 2k)`` band (``achieved_k >= k``), and the anonymized output
  stays within the differential harness's nearest-neighbour tolerance
  of the sequential pipeline.
"""

from pathlib import Path

import numpy as np
import pytest

from repro import telemetry
from repro.core.condenser import ClasswiseCondenser, DynamicCondenser
from repro.core.dynamic import DynamicGroupMaintainer
from repro.linalg.rng import rng_state
from repro.neighbors.knn import KNeighborsClassifier
from repro.privacy.metrics import privacy_report
from repro.telemetry import MetricsRegistry


def fingerprint(maintainer):
    """Byte-exact signature of the maintained groups, in order."""
    return [
        (group.count, group.first_order.tobytes(),
         group.second_order.tobytes())
        for group in maintainer._groups
    ]


def make_data(seed, n, d):
    return np.random.default_rng(seed).normal(size=(n, d))


def wal_bytes(directory):
    """Concatenated bytes of every WAL segment, in segment order."""
    return b"".join(
        path.read_bytes()
        for path in sorted(Path(directory).glob("wal-*.log"))
    )


class TestBatchSizeOneBitIdentity:
    def test_matches_sequential_add_exactly(self):
        base = make_data(0, 150, 4)
        stream = make_data(1, 900, 4)
        sequential = DynamicGroupMaintainer(
            8, initial_data=base, random_state=3
        )
        sequential.add_stream(stream)
        batched = DynamicGroupMaintainer(
            8, initial_data=base, random_state=3
        )
        batched.ingest_many(stream, batch_size=1)
        assert fingerprint(batched) == fingerprint(sequential)
        assert np.array_equal(batched._centroids, sequential._centroids)
        assert batched.n_splits == sequential.n_splits
        assert batched.n_absorbed == sequential.n_absorbed

    def test_rng_position_is_untouched(self):
        # The ingest path consumes no randomness (the durability
        # contract); batch_size=1 must preserve that bit for bit.
        base = make_data(2, 100, 3)
        stream = make_data(3, 400, 3)
        sequential = DynamicGroupMaintainer(
            6, initial_data=base, random_state=7
        )
        batched = DynamicGroupMaintainer(
            6, initial_data=base, random_state=7
        )
        sequential.add_stream(stream)
        batched.ingest_many(stream, batch_size=1)
        assert rng_state(batched._rng) == rng_state(sequential._rng)

    def test_wal_bytes_identical_to_sequential(self, tmp_path):
        base = make_data(4, 120, 4)
        stream = make_data(5, 500, 4)
        plain = DynamicCondenser(
            10, random_state=0, wal_dir=tmp_path / "seq"
        )
        plain.fit(base)
        plain.partial_fit(stream)
        plain.close()
        batched = DynamicCondenser(
            10, random_state=0, wal_dir=tmp_path / "batch", batch_size=1
        )
        batched.fit(base)
        batched.partial_fit(stream)
        batched.close()
        assert wal_bytes(tmp_path / "batch") == wal_bytes(tmp_path / "seq")


class TestBatchMomentConservation:
    @pytest.mark.parametrize("batch_size", [2, 16, 256, 2000])
    def test_moment_mass_is_conserved_exactly(self, batch_size):
        base = make_data(10, 200, 4)
        stream = make_data(11, 2000, 4)
        maintainer = DynamicGroupMaintainer(
            9, initial_data=base, random_state=0
        )
        maintainer.ingest_many(stream, batch_size=batch_size)
        everything = np.vstack([base, stream])
        scale = np.abs(everything).sum() + 1.0
        total_first = sum(
            group.first_order for group in maintainer._groups
        )
        assert np.abs(
            total_first - everything.sum(axis=0)
        ).max() <= 1e-9 * scale
        total_second = sum(
            group.second_order for group in maintainer._groups
        )
        second_scale = np.abs(everything.T @ everything).max() + 1.0
        assert np.abs(
            total_second - everything.T @ everything
        ).max() <= 1e-9 * second_scale

    @pytest.mark.parametrize("batch_size", [2, 16, 256, 2000])
    def test_privacy_band_and_achieved_k(self, batch_size):
        k = 9
        maintainer = DynamicGroupMaintainer(
            k, initial_data=make_data(12, 200, 4), random_state=0
        )
        maintainer.ingest_many(make_data(13, 2000, 4),
                               batch_size=batch_size)
        sizes = maintainer.group_sizes()
        assert (sizes >= k).all()
        assert (sizes < 2 * k).all()
        assert privacy_report(maintainer.to_model()).achieved_k >= k

    @pytest.mark.parametrize("batch_size", [2, 16, 256])
    def test_same_batch_size_is_deterministic(self, batch_size):
        base = make_data(14, 150, 3)
        stream = make_data(15, 1200, 3)
        runs = []
        for __ in range(2):
            maintainer = DynamicGroupMaintainer(
                7, initial_data=base, random_state=5
            )
            maintainer.ingest_many(stream, batch_size=batch_size)
            runs.append(fingerprint(maintainer))
        assert runs[0] == runs[1]

    def test_cold_start_warms_up_through_batches(self):
        maintainer = DynamicGroupMaintainer(8, random_state=0)
        maintainer.ingest_many(make_data(16, 500, 3), batch_size=64)
        assert maintainer.n_groups > 1
        sizes = maintainer.group_sizes()
        assert (sizes >= 8).all() and (sizes < 16).all()


class TestBatchDownstreamUtility:
    def test_nn_accuracy_within_tolerance_of_sequential(
        self, labelled_blobs
    ):
        # Same tolerance as the parallel differential harness: batching
        # may regroup records but must not cost real utility.
        data, labels = labelled_blobs
        accuracies = {}
        for name, batch_size in (("sequential", 1), ("batched", 16)):
            condenser = ClasswiseCondenser(
                k=8, mode="dynamic", random_state=0,
                batch_size=batch_size,
            )
            anonymized, anonymized_labels = condenser.fit_generate(
                data, labels
            )
            classifier = KNeighborsClassifier(n_neighbors=1)
            classifier.fit(anonymized, anonymized_labels)
            accuracies[name] = classifier.score(data, labels)
        assert abs(
            accuracies["batched"] - accuracies["sequential"]
        ) <= 0.10


class TestEigenFastPathWiring:
    def test_wide_data_takes_the_rank_one_path(self):
        # d=20 >= EIGEN_UPDATE_MIN_DIM and small blocks keep the update
        # rank below the dimension, so split eigensystems come from the
        # rank-one chain; moment conservation must be unaffected.
        registry = MetricsRegistry()
        telemetry.configure(registry=registry)
        try:
            scale = np.diag(1.0 + 0.3 * np.arange(20))
            base = make_data(20, 500, 20) @ scale
            stream = make_data(21, 4000, 20) @ scale
            maintainer = DynamicGroupMaintainer(
                12, initial_data=base, random_state=0
            )
            maintainer.ingest_many(stream, batch_size=8)
        finally:
            telemetry.disable()
        counters = {
            metric.name: metric
            for metric in registry.metrics()
        }
        assert counters["ingest.eigen_updates"].value() > 0
        everything = np.vstack([base, stream])
        total_first = sum(
            group.first_order for group in maintainer._groups
        )
        mass_scale = np.abs(everything).sum() + 1.0
        assert np.abs(
            total_first - everything.sum(axis=0)
        ).max() <= 1e-9 * mass_scale

    def test_narrow_data_never_attempts_the_update(self):
        # Below the dimension gate the chain is never entered, so
        # neither the update nor the fallback counter moves.
        registry = MetricsRegistry()
        telemetry.configure(registry=registry)
        try:
            maintainer = DynamicGroupMaintainer(
                8, initial_data=make_data(22, 200, 4), random_state=0
            )
            maintainer.ingest_many(make_data(23, 1500, 4), batch_size=32)
        finally:
            telemetry.disable()
        names = {metric.name for metric in registry.metrics()}
        assert "ingest.eigen_updates" not in names
        assert "ingest.eigen_fallbacks" not in names


class TestBatchValidation:
    def test_rejects_bad_batch_size(self):
        maintainer = DynamicGroupMaintainer(
            5, initial_data=make_data(30, 40, 3), random_state=0
        )
        with pytest.raises(ValueError, match="batch_size"):
            maintainer.ingest_many(make_data(31, 10, 3), batch_size=0)

    def test_rejects_non_2d_records(self):
        maintainer = DynamicGroupMaintainer(
            5, initial_data=make_data(32, 40, 3), random_state=0
        )
        with pytest.raises(ValueError):
            maintainer.ingest_many(np.zeros(3), batch_size=4)

    def test_rejects_non_finite_blocks(self):
        maintainer = DynamicGroupMaintainer(
            5, initial_data=make_data(33, 40, 3), random_state=0
        )
        block = make_data(34, 8, 3)
        block[2, 1] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            maintainer.ingest_block(block)

    def test_condenser_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            DynamicCondenser(5, batch_size=0)
        with pytest.raises(ValueError, match="batch_size"):
            ClasswiseCondenser(5, batch_size=-1)

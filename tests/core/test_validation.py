"""Tests for repro.core.validation."""

import json

import numpy as np
import pytest

from repro.core.condensation import create_condensed_groups
from repro.core.statistics import CondensedModel, GroupStatistics
from repro.core.validation import validate_model


class TestValidateModel:
    def test_fresh_model_is_valid(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        assert validate_model(model) == []

    def test_dynamic_model_is_valid(self, gaussian_data, rng):
        from repro.core.dynamic import DynamicGroupMaintainer

        maintainer = DynamicGroupMaintainer(
            8, initial_data=gaussian_data, random_state=0
        )
        maintainer.add_stream(rng.normal(size=(200, 4)))
        assert validate_model(maintainer.to_model()) == []

    def test_coarsened_model_is_valid(self, gaussian_data):
        from repro.core.coarsen import coarsen_model

        model = create_condensed_groups(gaussian_data, k=5, random_state=0)
        assert validate_model(coarsen_model(model, 20)) == []

    def test_undersized_group_flagged(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        model.groups[0].count = 3
        problems = validate_model(model)
        assert any("below the declared" in problem for problem in problems)

    def test_non_finite_sums_flagged(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        model.groups[1].first_order[0] = np.nan
        problems = validate_model(model)
        assert any("non-finite first-order" in p for p in problems)

    def test_cauchy_schwarz_violation_flagged(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        # Shrink a diagonal Sc entry below Fs^2 / n.
        model.groups[0].second_order[0, 0] = -1e6
        problems = validate_model(model)
        assert any("Cauchy-Schwarz" in p for p in problems)

    def test_indefinite_covariance_flagged(self):
        # Hand-build a group whose off-diagonal Sc exceeds what any real
        # record set could produce.
        group = GroupStatistics(
            first_order=np.zeros(2),
            second_order=np.array([[10.0, 50.0], [50.0, 10.0]]),
            count=10,
        )
        model = CondensedModel(groups=[group], k=10)
        problems = validate_model(model)
        assert any("negative eigenvalue" in p for p in problems)

    def test_strict_raises(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        model.groups[0].count = 1
        with pytest.raises(ValueError, match="invalid condensed model"):
            validate_model(model, strict=True)

    def test_multiple_problems_all_reported(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        model.groups[0].count = 2
        model.groups[1].first_order[0] = np.inf
        problems = validate_model(model)
        assert len(problems) >= 2


class TestLoadModelValidation:
    def test_tampered_file_rejected(self, tmp_path, gaussian_data):
        from repro.io.model_store import load_model, save_model

        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        payload = json.loads(path.read_text())
        payload["groups"][0]["count"] = 1  # below declared k
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="invalid condensed model"):
            load_model(path)

    def test_validation_can_be_disabled(self, tmp_path, gaussian_data):
        from repro.io.model_store import load_model, save_model

        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        payload = json.loads(path.read_text())
        payload["groups"][0]["count"] = 1
        path.write_text(json.dumps(payload))
        loaded = load_model(path, validate=False)
        assert loaded.groups[0].count == 1

"""Tests for repro.datasets.generators."""

import numpy as np
import pytest

from repro.datasets.generators import (
    make_classification_mixture,
    make_correlated_blobs,
    make_factor_regression,
    make_stream_batches,
    random_covariance,
)
from repro.linalg.symmetric import is_positive_semidefinite


class TestRandomCovariance:
    def test_is_psd(self, rng):
        covariance = random_covariance(6, rng)
        assert is_positive_semidefinite(covariance)

    def test_shape(self, rng):
        assert random_covariance(4, rng).shape == (4, 4)

    def test_noise_floor_bounds_smallest_eigenvalue(self, rng):
        covariance = random_covariance(5, rng, noise_floor=0.5)
        eigenvalues = np.linalg.eigvalsh(covariance)
        assert eigenvalues.min() >= 0.5 - 1e-10

    def test_has_correlations(self, rng):
        covariance = random_covariance(6, rng, effective_rank=2)
        off_diagonal = covariance - np.diag(np.diag(covariance))
        assert np.abs(off_diagonal).max() > 0.01

    def test_invalid_rank(self, rng):
        with pytest.raises(ValueError):
            random_covariance(3, rng, effective_rank=5)

    def test_negative_noise_floor(self, rng):
        with pytest.raises(ValueError):
            random_covariance(3, rng, noise_floor=-0.1)


class TestCorrelatedBlobs:
    def test_shapes(self):
        data, assignments = make_correlated_blobs(
            100, 4, n_blobs=3, random_state=0
        )
        assert data.shape == (100, 4)
        assert assignments.shape == (100,)

    def test_no_empty_blob(self):
        __, assignments = make_correlated_blobs(
            50, 3, n_blobs=5, random_state=1
        )
        assert set(assignments.tolist()) == {0, 1, 2, 3, 4}

    def test_reproducible(self):
        a, __ = make_correlated_blobs(40, 3, random_state=7)
        b, __ = make_correlated_blobs(40, 3, random_state=7)
        np.testing.assert_array_equal(a, b)

    def test_too_few_records(self):
        with pytest.raises(ValueError):
            make_correlated_blobs(2, 3, n_blobs=5)


class TestClassificationMixture:
    def test_class_sizes_respected(self):
        dataset = make_classification_mixture(
            [30, 20, 10], n_features=4, random_state=0
        )
        assert dataset.class_counts() == {0: 30, 1: 20, 2: 10}

    def test_task_and_shape(self):
        dataset = make_classification_mixture(
            [25, 25], n_features=6, random_state=1
        )
        assert dataset.task == "classification"
        assert dataset.data.shape == (50, 6)

    def test_separation_controls_difficulty(self):
        from repro.neighbors.knn import KNeighborsClassifier

        easy = make_classification_mixture(
            [60, 60], n_features=3, class_separation=8.0, random_state=2
        )
        hard = make_classification_mixture(
            [60, 60], n_features=3, class_separation=0.1, random_state=2
        )

        def holdout_accuracy(dataset):
            classifier = KNeighborsClassifier(n_neighbors=3)
            classifier.fit(dataset.data[:90], dataset.target[:90])
            return classifier.score(dataset.data[90:], dataset.target[90:])

        assert holdout_accuracy(easy) > holdout_accuracy(hard)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            make_classification_mixture([0, 10], n_features=2)

    def test_invalid_clusters(self):
        with pytest.raises(ValueError):
            make_classification_mixture(
                [10], n_features=2, clusters_per_class=0
            )

    def test_multimodal_classes(self):
        dataset = make_classification_mixture(
            [100], n_features=2, clusters_per_class=3, random_state=3
        )
        assert dataset.n_records == 100


class TestFactorRegression:
    def test_shapes(self):
        dataset = make_factor_regression(80, 5, random_state=0)
        assert dataset.data.shape == (80, 5)
        assert dataset.target.shape == (80,)
        assert dataset.task == "regression"

    def test_strong_attribute_correlations(self):
        dataset = make_factor_regression(
            500, 6, n_factors=1, noise=0.01, random_state=1
        )
        correlation = np.corrcoef(dataset.data.T)
        off_diagonal = np.abs(
            correlation - np.diag(np.diag(correlation))
        )
        assert off_diagonal.max() > 0.95

    def test_target_predictable_from_attributes(self):
        from repro.mining.linear_model import LinearRegression

        dataset = make_factor_regression(
            300, 4, n_factors=2, noise=0.05, target_noise=0.05,
            random_state=2,
        )
        model = LinearRegression().fit(dataset.data, dataset.target)
        assert model.score(dataset.data, dataset.target) > 0.9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_factor_regression(10, 3, n_factors=0)
        with pytest.raises(ValueError):
            make_factor_regression(10, 3, noise=-1.0)


class TestStreamBatches:
    def test_partition(self):
        dataset = make_classification_mixture(
            [40, 40], n_features=3, random_state=0
        )
        base_x, base_y, stream_x, stream_y = make_stream_batches(
            dataset, initial_fraction=0.25, random_state=1
        )
        assert base_x.shape[0] == 20
        assert stream_x.shape[0] == 60
        assert base_x.shape[0] + stream_x.shape[0] == 80
        assert base_y.shape[0] == 20
        assert stream_y.shape[0] == 60

    def test_invalid_fraction(self):
        dataset = make_classification_mixture(
            [10], n_features=2, random_state=0
        )
        with pytest.raises(ValueError):
            make_stream_batches(dataset, initial_fraction=0.0)


class TestTwoMoons:
    def test_shapes_and_balance(self):
        from repro.datasets.generators import make_two_moons

        dataset = make_two_moons(200, random_state=0)
        assert dataset.data.shape == (200, 2)
        counts = dataset.class_counts()
        assert counts == {0: 100, 1: 100}

    def test_odd_count_split(self):
        from repro.datasets.generators import make_two_moons

        dataset = make_two_moons(201, random_state=0)
        counts = dataset.class_counts()
        assert sorted(counts.values()) == [100, 101]

    def test_moons_are_non_convex_but_separable_by_dbscan(self):
        from repro.datasets.generators import make_two_moons
        from repro.mining.dbscan import DBSCAN, NOISE

        dataset = make_two_moons(400, noise=0.04, random_state=0)
        labels = DBSCAN(eps=0.2, min_samples=5).fit_predict(dataset.data)
        clustered = labels != NOISE
        # Each DBSCAN cluster maps to exactly one moon.
        for cluster in set(labels[clustered].tolist()):
            members = dataset.target[labels == cluster]
            assert len(set(members.tolist())) == 1

    def test_reproducible(self):
        from repro.datasets.generators import make_two_moons

        a = make_two_moons(50, random_state=3)
        b = make_two_moons(50, random_state=3)
        np.testing.assert_array_equal(a.data, b.data)

    def test_validation(self):
        from repro.datasets.generators import make_two_moons

        with pytest.raises(ValueError):
            make_two_moons(1)
        with pytest.raises(ValueError):
            make_two_moons(10, noise=-0.1)

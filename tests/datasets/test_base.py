"""Tests for repro.datasets.base."""

import numpy as np
import pytest

from repro.datasets.base import Dataset


def make_dataset(task="classification"):
    rng = np.random.default_rng(0)
    data = rng.normal(size=(30, 3))
    if task == "classification":
        target = rng.integers(0, 2, size=30)
    else:
        target = rng.normal(size=30)
    return Dataset(name="toy", data=data, target=target, task=task)


class TestDataset:
    def test_basic_properties(self):
        dataset = make_dataset()
        assert dataset.n_records == 30
        assert dataset.n_features == 3
        assert dataset.task == "classification"

    def test_default_feature_names(self):
        dataset = make_dataset()
        assert dataset.feature_names == ["attr_0", "attr_1", "attr_2"]

    def test_explicit_feature_names(self):
        rng = np.random.default_rng(0)
        dataset = Dataset(
            name="toy",
            data=rng.normal(size=(5, 2)),
            target=np.zeros(5),
            task="regression",
            feature_names=["a", "b"],
        )
        assert dataset.feature_names == ["a", "b"]

    def test_feature_name_count_checked(self):
        with pytest.raises(ValueError, match="feature names"):
            Dataset(
                name="toy",
                data=np.zeros((5, 2)),
                target=np.zeros(5),
                task="regression",
                feature_names=["only_one"],
            )

    def test_classes_for_classification(self):
        dataset = make_dataset()
        assert set(dataset.classes.tolist()) <= {0, 1}

    def test_classes_rejected_for_regression(self):
        dataset = make_dataset(task="regression")
        with pytest.raises(ValueError, match="not a classification"):
            __ = dataset.classes

    def test_class_counts(self):
        dataset = Dataset(
            name="toy",
            data=np.zeros((4, 1)),
            target=np.array([0, 0, 1, 0]),
            task="classification",
        )
        assert dataset.class_counts() == {0: 3, 1: 1}

    def test_target_alignment_checked(self):
        with pytest.raises(ValueError, match="target"):
            Dataset(
                name="toy",
                data=np.zeros((5, 2)),
                target=np.zeros(4),
                task="regression",
            )

    def test_invalid_task(self):
        with pytest.raises(ValueError, match="task"):
            Dataset(
                name="toy",
                data=np.zeros((5, 2)),
                target=np.zeros(5),
                task="ranking",
            )

    def test_non_2d_data_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            Dataset(
                name="toy",
                data=np.zeros(5),
                target=np.zeros(5),
                task="regression",
            )

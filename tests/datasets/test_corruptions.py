"""Tests for repro.datasets.corruptions."""

import numpy as np
import pytest

from repro.datasets.corruptions import (
    add_attribute_noise,
    flip_labels,
    inject_outliers,
)


class TestFlipLabels:
    def test_exact_fraction_flipped(self, rng):
        labels = rng.integers(0, 3, size=200)
        corrupted = flip_labels(labels, 0.25, random_state=0)
        assert int(np.sum(corrupted != labels)) == 50

    def test_flipped_labels_stay_in_vocabulary(self, rng):
        labels = rng.integers(0, 3, size=100)
        corrupted = flip_labels(labels, 0.5, random_state=0)
        assert set(corrupted.tolist()) <= {0, 1, 2}

    def test_zero_fraction_identity(self, rng):
        labels = rng.integers(0, 2, size=50)
        np.testing.assert_array_equal(
            flip_labels(labels, 0.0, random_state=0), labels
        )

    def test_original_untouched(self, rng):
        labels = rng.integers(0, 2, size=50)
        copy = labels.copy()
        flip_labels(labels, 0.5, random_state=0)
        np.testing.assert_array_equal(labels, copy)

    def test_string_labels(self):
        labels = np.array(["a", "b"] * 20)
        corrupted = flip_labels(labels, 0.5, random_state=0)
        assert int(np.sum(corrupted != labels)) == 20

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            flip_labels(np.zeros(10), 0.1)

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            flip_labels(rng.integers(0, 2, size=10), 1.5)


class TestAddAttributeNoise:
    def test_noise_magnitude_relative_to_spread(self, rng):
        data = np.column_stack([
            rng.normal(scale=1.0, size=5000),
            rng.normal(scale=100.0, size=5000),
        ])
        corrupted = add_attribute_noise(
            data, scale=0.5, random_state=0
        )
        residual = corrupted - data
        ratio = residual[:, 1].std() / residual[:, 0].std()
        assert ratio == pytest.approx(100.0, rel=0.1)

    def test_fraction_controls_affected_rows(self, rng):
        data = rng.normal(size=(100, 3))
        corrupted = add_attribute_noise(
            data, scale=1.0, fraction=0.2, random_state=0
        )
        changed = np.any(corrupted != data, axis=1)
        assert int(changed.sum()) == 20

    def test_zero_scale_identity(self, rng):
        data = rng.normal(size=(30, 2))
        np.testing.assert_array_equal(
            add_attribute_noise(data, 0.0, random_state=0), data
        )

    def test_validation(self, rng):
        data = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            add_attribute_noise(data, scale=-1.0)
        with pytest.raises(ValueError):
            add_attribute_noise(data, scale=1.0, fraction=2.0)


class TestInjectOutliers:
    def test_count_and_indices(self, rng):
        data = rng.normal(size=(100, 3))
        corrupted, indices = inject_outliers(
            data, 0.05, random_state=0
        )
        assert indices.shape[0] == 5
        unchanged = np.setdiff1d(np.arange(100), indices)
        np.testing.assert_array_equal(
            corrupted[unchanged], data[unchanged]
        )

    def test_outliers_are_far_out(self, rng):
        data = rng.normal(size=(200, 3))
        corrupted, indices = inject_outliers(
            data, 0.05, magnitude=8.0, random_state=0
        )
        mean = data.mean(axis=0)
        spread = data.std(axis=0)
        standardized = (corrupted[indices] - mean) / spread
        assert (np.linalg.norm(standardized, axis=1) > 5.0).all()

    def test_zero_fraction(self, rng):
        data = rng.normal(size=(20, 2))
        corrupted, indices = inject_outliers(data, 0.0, random_state=0)
        assert indices.shape[0] == 0
        np.testing.assert_array_equal(corrupted, data)

    def test_validation(self, rng):
        data = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            inject_outliers(data, -0.1)
        with pytest.raises(ValueError):
            inject_outliers(data, 0.1, magnitude=0.0)

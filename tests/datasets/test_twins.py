"""Tests for repro.datasets.twins — the UCI statistical twins."""

import numpy as np
import pytest

from repro.datasets.twins import (
    TWIN_LOADERS,
    load_abalone,
    load_ecoli,
    load_ionosphere,
    load_pima,
    load_twin,
)


class TestIonosphereTwin:
    def test_matches_original_shape(self):
        dataset = load_ionosphere()
        assert dataset.n_records == 351
        assert dataset.n_features == 34
        assert dataset.class_counts() == {0: 126, 1: 225}

    def test_bounded_attributes(self):
        dataset = load_ionosphere()
        assert dataset.data.min() >= -1.0
        assert dataset.data.max() <= 1.0

    def test_deterministic_default_seed(self):
        a = load_ionosphere()
        b = load_ionosphere()
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.target, b.target)

    def test_custom_seed_differs(self):
        a = load_ionosphere()
        b = load_ionosphere(random_state=99)
        assert not np.array_equal(a.data, b.data)

    def test_bad_class_more_diffuse(self):
        dataset = load_ionosphere()
        good = dataset.data[dataset.target == 1]
        bad = dataset.data[dataset.target == 0]
        assert bad.var(axis=0).mean() > good.var(axis=0).mean()


class TestEcoliTwin:
    def test_matches_original_shape(self):
        dataset = load_ecoli()
        assert dataset.n_records == 336
        assert dataset.n_features == 7
        counts = dataset.class_counts()
        assert sorted(counts.values(), reverse=True) == [
            143, 77, 52, 35, 20, 5, 2, 2,
        ]

    def test_unit_interval_attributes(self):
        dataset = load_ecoli()
        assert dataset.data.min() >= 0.0
        assert dataset.data.max() <= 1.0

    def test_has_tiny_classes(self):
        # The original's imL and imS classes have two members each —
        # the case that forces the single_group policy downstream.
        counts = load_ecoli().class_counts()
        assert min(counts.values()) == 2


class TestPimaTwin:
    def test_matches_original_shape(self):
        dataset = load_pima()
        assert dataset.n_records == 768
        assert dataset.n_features == 8
        assert dataset.class_counts() == {0: 500, 1: 268}

    def test_non_negative_attributes(self):
        assert load_pima().data.min() >= 0.0

    def test_scale_disparity(self):
        # Clinical attributes live on very different scales (pedigree
        # ~0.5 vs insulin ~100).
        stds = load_pima().data.std(axis=0)
        assert stds.max() / stds.min() > 20.0

    def test_anomalies_injected(self):
        # ~4% of records carry an implausible extreme value.
        dataset = load_pima()
        standardized = (
            dataset.data - dataset.data.mean(axis=0)
        ) / dataset.data.std(axis=0)
        extreme_rows = (np.abs(standardized) > 4.0).any(axis=1)
        assert extreme_rows.sum() >= 10


class TestAbaloneTwin:
    def test_matches_original_shape(self):
        dataset = load_abalone()
        assert dataset.n_records == 4177
        assert dataset.n_features == 8
        assert dataset.task == "regression"

    def test_sex_is_categorical(self):
        sex = load_abalone().data[:, 0]
        assert set(np.unique(sex).tolist()) == {0.0, 1.0, 2.0}

    def test_rings_are_integer_valued(self):
        rings = load_abalone().target
        np.testing.assert_allclose(rings, np.round(rings))
        assert rings.min() >= 1
        assert rings.max() <= 29

    def test_measurements_strongly_correlated(self):
        data = load_abalone().data[:, 1:]  # skip sex
        correlation = np.corrcoef(data.T)
        off_diagonal = correlation[~np.eye(7, dtype=bool)]
        assert off_diagonal.min() > 0.7

    def test_infants_smaller(self):
        dataset = load_abalone()
        # Age-class codes are exact float constants, not measurements.
        infants = dataset.data[dataset.data[:, 0] == 2.0, 1]  # repro-lint: disable=PY-003 -- exact categorical code
        adults = dataset.data[dataset.data[:, 0] != 2.0, 1]  # repro-lint: disable=PY-003 -- exact categorical code
        assert infants.mean() < adults.mean()

    def test_rings_predictable_from_size(self):
        dataset = load_abalone()
        length = dataset.data[:, 1]
        correlation = np.corrcoef(length, dataset.target)[0, 1]
        assert correlation > 0.5


class TestLoaderRegistry:
    def test_all_twins_registered(self):
        assert set(TWIN_LOADERS) == {
            "ionosphere", "ecoli", "pima", "abalone",
        }

    def test_load_twin_dispatch(self):
        dataset = load_twin("ecoli")
        assert dataset.name == "ecoli-twin"

    def test_load_twin_unknown(self):
        with pytest.raises(ValueError, match="unknown twin"):
            load_twin("adult")

    def test_descriptions_document_substitution(self):
        for loader in TWIN_LOADERS.values():
            assert "substitutes" in loader().description


class TestTwinStability:
    """The twins' difficulty must be a property of the generator, not of
    one lucky seed — otherwise the figure shapes are accidents."""

    @pytest.mark.parametrize("name,low,high", [
        ("ionosphere", 0.75, 0.95),
        ("ecoli", 0.75, 0.95),
        ("pima", 0.6, 0.85),
    ])
    def test_baseline_accuracy_stable_across_seeds(self, name, low,
                                                   high):
        from repro.evaluation.protocol import baseline_condition
        from repro.preprocessing import StandardScaler, train_test_split

        for twin_seed in (101, 202):
            dataset = load_twin(name, random_state=twin_seed)
            train_x, test_x, train_y, test_y = train_test_split(
                dataset.data, dataset.target, test_size=0.25,
                stratify=dataset.target, random_state=0,
            )
            scaler = StandardScaler().fit(train_x)
            accuracy = baseline_condition(
                scaler.transform(train_x), train_y,
                scaler.transform(test_x), test_y,
                task="classification",
            )
            assert low <= accuracy <= high, (name, twin_seed, accuracy)

    def test_abalone_tolerance_accuracy_stable(self):
        from repro.evaluation.protocol import baseline_condition
        from repro.preprocessing import StandardScaler, train_test_split

        for twin_seed in (101, 202):
            dataset = load_twin("abalone", random_state=twin_seed)
            train_x, test_x, train_y, test_y = train_test_split(
                dataset.data, dataset.target, test_size=0.25,
                random_state=0,
            )
            scaler = StandardScaler().fit(train_x)
            accuracy = baseline_condition(
                scaler.transform(train_x), train_y,
                scaler.transform(test_x), test_y,
                task="regression", tol=1.0,
            )
            assert 0.2 <= accuracy <= 0.55, (twin_seed, accuracy)

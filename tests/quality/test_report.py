"""Tests for repro.quality.report."""

import numpy as np
import pytest

from repro.core.condenser import StaticCondenser
from repro.quality.report import ks_statistic, utility_report


class TestKsStatistic:
    def test_identical_samples(self, rng):
        sample = rng.normal(size=500)
        assert ks_statistic(sample, sample) == pytest.approx(0.0)

    def test_disjoint_supports(self):
        assert ks_statistic(
            np.zeros(10), np.ones(10) * 100
        ) == pytest.approx(1.0)

    def test_same_distribution_small(self, rng):
        a = rng.normal(size=2000)
        b = rng.normal(size=2000)
        assert ks_statistic(a, b) < 0.06

    def test_shifted_distribution_large(self, rng):
        a = rng.normal(size=2000)
        b = rng.normal(loc=3.0, size=2000)
        assert ks_statistic(a, b) > 0.8

    def test_symmetric(self, rng):
        a = rng.normal(size=100)
        b = rng.uniform(size=150)
        assert ks_statistic(a, b) == pytest.approx(ks_statistic(b, a))

    def test_scipy_agreement(self, rng):
        from scipy.stats import ks_2samp

        a = rng.normal(size=300)
        b = rng.normal(loc=0.5, size=200)
        assert ks_statistic(a, b) == pytest.approx(
            ks_2samp(a, b).statistic
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), np.array([1.0]))


class TestUtilityReport:
    def test_self_report_is_perfect(self, gaussian_data):
        report = utility_report(gaussian_data, gaussian_data.copy())
        assert report.mu == pytest.approx(1.0)
        assert report.mean_error == pytest.approx(0.0)
        assert report.correlation_error == pytest.approx(0.0, abs=1e-12)
        assert report.max_ks == pytest.approx(0.0)

    def test_condensed_release_scores_well(self, gaussian_data):
        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            gaussian_data
        )
        report = utility_report(gaussian_data, anonymized)
        assert report.mu > 0.9
        assert report.mean_error < 0.2
        assert report.correlation_error < 0.3
        assert report.max_ks < 0.3
        assert report.n_original == 120
        assert report.n_anonymized == 120

    def test_worse_release_scores_worse(self, gaussian_data, rng):
        good = StaticCondenser(k=5, random_state=0).fit_generate(
            gaussian_data
        )
        garbage = rng.normal(size=gaussian_data.shape) * 10.0
        good_report = utility_report(gaussian_data, good)
        bad_report = utility_report(gaussian_data, garbage)
        assert good_report.max_ks < bad_report.max_ks
        assert good_report.mu > bad_report.mu

    def test_summary_lines(self, gaussian_data):
        report = utility_report(gaussian_data, gaussian_data)
        lines = report.summary_lines()
        assert len(lines) == 5
        assert any("mu" in line for line in lines)

    def test_dimension_mismatch(self, gaussian_data):
        with pytest.raises(ValueError, match="dimensionality"):
            utility_report(gaussian_data, gaussian_data[:, :2])

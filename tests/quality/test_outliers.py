"""Tests for repro.quality.outliers."""

import numpy as np
import pytest

from repro.quality.outliers import knn_outlier_scores, screen_outliers


class TestKnnOutlierScores:
    def test_isolated_point_scores_highest(self, rng):
        dense = rng.normal(scale=0.3, size=(50, 2))
        isolated = np.array([[30.0, 30.0]])
        data = np.vstack([dense, isolated])
        scores = knn_outlier_scores(data, n_neighbors=5)
        assert int(np.argmax(scores)) == 50

    def test_scores_positive(self, gaussian_data):
        scores = knn_outlier_scores(gaussian_data)
        assert (scores > 0).all()

    def test_denser_points_score_lower(self, rng):
        dense = rng.normal(scale=0.1, size=(40, 2))
        sparse = rng.normal(loc=10.0, scale=3.0, size=(40, 2))
        data = np.vstack([dense, sparse])
        scores = knn_outlier_scores(data, n_neighbors=5)
        assert scores[:40].mean() < scores[40:].mean()

    def test_validation(self, gaussian_data):
        with pytest.raises(ValueError, match="n_neighbors"):
            knn_outlier_scores(gaussian_data, n_neighbors=0)
        with pytest.raises(ValueError, match="more than"):
            knn_outlier_scores(gaussian_data[:3], n_neighbors=5)


class TestScreenOutliers:
    def test_partition(self, gaussian_data):
        inliers, outliers = screen_outliers(
            gaussian_data, contamination=0.05
        )
        combined = np.sort(np.concatenate([inliers, outliers]))
        np.testing.assert_array_equal(combined, np.arange(120))

    def test_count_matches_contamination(self, gaussian_data):
        __, outliers = screen_outliers(gaussian_data, contamination=0.05)
        assert outliers.shape[0] == 6  # ceil(0.05 * 120)

    def test_planted_outliers_found(self, rng):
        dense = rng.normal(scale=0.3, size=(95, 3))
        planted = rng.normal(loc=50.0, scale=0.3, size=(5, 3))
        data = np.vstack([dense, planted])
        __, outliers = screen_outliers(data, contamination=0.05)
        assert set(outliers.tolist()) == {95, 96, 97, 98, 99}

    def test_zero_contamination(self, gaussian_data):
        inliers, outliers = screen_outliers(
            gaussian_data, contamination=0.0
        )
        assert outliers.shape[0] == 0
        assert inliers.shape[0] == 120

    def test_invalid_contamination(self, gaussian_data):
        with pytest.raises(ValueError):
            screen_outliers(gaussian_data, contamination=1.0)

    def test_screening_tightens_condensed_groups(self, rng):
        # End to end: dropping planted extremes before condensation
        # shrinks the worst group extent (the §2.2 failure mode).
        from repro.core.condensation import create_condensed_groups
        from repro.quality.diagnostics import group_diagnostics

        dense = rng.normal(scale=0.5, size=(95, 2))
        planted = rng.uniform(-100, 100, size=(5, 2))
        data = np.vstack([dense, planted])
        naive_model = create_condensed_groups(data, 10, random_state=0)
        inliers, __ = screen_outliers(data, contamination=0.05)
        screened_model = create_condensed_groups(
            data[inliers], 10, random_state=0
        )
        naive_extent = max(
            entry.extent for entry in group_diagnostics(naive_model)
        )
        screened_extent = max(
            entry.extent for entry in group_diagnostics(screened_model)
        )
        assert screened_extent < 0.5 * naive_extent

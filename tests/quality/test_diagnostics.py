"""Tests for repro.quality.diagnostics."""

import numpy as np
import pytest

from repro.core.condensation import create_condensed_groups
from repro.quality.diagnostics import (
    flag_sparse_groups,
    group_diagnostics,
)


class TestGroupDiagnostics:
    def test_one_entry_per_group(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        diagnostics = group_diagnostics(model)
        assert len(diagnostics) == model.n_groups
        assert [entry.index for entry in diagnostics] == list(
            range(model.n_groups)
        )

    def test_counts_match(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        diagnostics = group_diagnostics(model)
        np.testing.assert_array_equal(
            [entry.count for entry in diagnostics], model.group_sizes
        )

    def test_extent_is_leading_uniform_range(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        entry = group_diagnostics(model)[0]
        eigenvalues, __ = model.groups[0].eigen_system()
        assert entry.extent == pytest.approx(
            float(np.sqrt(12.0 * eigenvalues[0]))
        )
        assert entry.total_variance == pytest.approx(
            float(eigenvalues.sum())
        )

    def test_elongation_of_needle_vs_sphere(self, rng):
        from repro.core.statistics import CondensedModel, GroupStatistics

        sphere = rng.normal(size=(100, 3))
        needle = rng.normal(size=(100, 3)) * np.array([10.0, 0.1, 0.1])
        model = CondensedModel(
            groups=[
                GroupStatistics.from_records(sphere),
                GroupStatistics.from_records(needle),
            ],
            k=100,
        )
        diagnostics = group_diagnostics(model)
        # Elongation is capped at d (=3 here): a needle approaches the
        # cap, a sphere sits near 1.
        assert diagnostics[0].elongation < 1.5
        assert diagnostics[1].elongation > 2.5

    def test_single_group_isolation_infinite(self, gaussian_data):
        model = create_condensed_groups(
            gaussian_data, k=120, random_state=0
        )
        entry = group_diagnostics(model)[0]
        assert np.isinf(entry.isolation)

    def test_isolated_group_flagged_by_isolation(self, rng):
        dense = rng.normal(scale=0.5, size=(50, 2))
        remote = rng.normal(loc=100.0, scale=0.5, size=(10, 2))
        data = np.vstack([dense, remote])
        model = create_condensed_groups(data, k=10, random_state=0)
        diagnostics = group_diagnostics(model)
        centroids = model.centroids()
        remote_groups = [
            entry for entry, centroid in zip(diagnostics, centroids)
            if centroid[0] > 50
        ]
        local_groups = [
            entry for entry, centroid in zip(diagnostics, centroids)
            if centroid[0] <= 50
        ]
        assert min(e.isolation for e in remote_groups) > max(
            e.isolation for e in local_groups
        )


class TestFlagSparseGroups:
    def test_outlier_group_flagged(self, rng):
        # A cluster plus widely scattered records: the scattered
        # records' group has far larger extent and must be flagged.
        dense = rng.normal(scale=0.2, size=(50, 2))
        scattered = rng.uniform(-100, 100, size=(10, 2))
        data = np.vstack([dense, scattered])
        model = create_condensed_groups(data, k=10, random_state=0)
        flagged = flag_sparse_groups(model)
        assert flagged
        extents = [
            entry.extent for entry in group_diagnostics(model)
        ]
        assert max(range(len(extents)), key=extents.__getitem__) in flagged

    def test_homogeneous_data_unflagged(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        assert flag_sparse_groups(model, extent_factor=3.0) == []

    def test_invalid_factor(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        with pytest.raises(ValueError):
            flag_sparse_groups(model, extent_factor=0.0)

"""PrincipalAxisRouter: frozen bisection cuts vs the batch partitioner."""

import numpy as np
import pytest

from repro.linalg.rng import check_random_state
from repro.parallel import principal_axis_shards
from repro.serve import PrincipalAxisRouter


def _sample(n=96, d=4, seed=0):
    return check_random_state(seed).normal(size=(n, d))


class TestFit:
    def test_requires_2d_nonempty(self):
        router = PrincipalAxisRouter(2)
        with pytest.raises(ValueError, match="non-empty 2-D"):
            router.fit(np.empty((0, 3)))
        with pytest.raises(ValueError, match="non-empty 2-D"):
            router.fit(np.ones(5))

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            PrincipalAxisRouter(0)

    def test_fitted_flag_and_features(self):
        router = PrincipalAxisRouter(4)
        assert not router.fitted
        router.fit(_sample())
        assert router.fitted
        assert router.n_features == 4
        assert router.n_leaves == 4

    def test_single_shard_routes_everything_to_zero(self):
        router = PrincipalAxisRouter(1).fit(_sample())
        assert set(router.route(_sample(seed=1)).tolist()) == {0}

    def test_tiny_sample_caps_leaves(self):
        # One record cannot be split: the tree stays a single leaf.
        router = PrincipalAxisRouter(4).fit(_sample(n=1))
        assert router.n_leaves == 1
        assert set(router.route(_sample(seed=2)).tolist()) == {0}


class TestRoutingMatchesBatchPartition:
    @pytest.mark.parametrize("n_shards", [2, 3, 4, 7])
    def test_bootstrap_sample_reproduces_batch_shards(self, n_shards):
        data = _sample(n=128, d=5, seed=3)
        batch = principal_axis_shards(data, n_shards)
        router = PrincipalAxisRouter(n_shards).fit(data)
        routed = router.route(data)
        for shard_id, indices in enumerate(batch):
            assert set(routed[indices].tolist()) == {shard_id}

    def test_new_records_land_in_valid_shards(self):
        router = PrincipalAxisRouter(4).fit(_sample(seed=4))
        routed = router.route(_sample(n=50, seed=5))
        assert routed.shape == (50,)
        assert routed.min() >= 0 and routed.max() < 4

    def test_single_record_shape(self):
        router = PrincipalAxisRouter(3).fit(_sample())
        assert router.route(np.zeros(4)).shape == (1,)


class TestRouteValidation:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            PrincipalAxisRouter(2).route(np.zeros(3))

    def test_dimension_mismatch_raises(self):
        router = PrincipalAxisRouter(2).fit(_sample(d=4))
        with pytest.raises(ValueError, match=r"\(m, 4\)"):
            router.route(np.zeros((2, 3)))


class TestStateRoundTrip:
    def test_round_trip_routes_identically(self):
        router = PrincipalAxisRouter(4).fit(_sample(seed=6))
        clone = PrincipalAxisRouter.from_state(router.to_state())
        probes = _sample(n=200, seed=7)
        np.testing.assert_array_equal(
            router.route(probes), clone.route(probes)
        )

    def test_state_is_json_able_aggregates(self):
        import json

        state = PrincipalAxisRouter(3).fit(_sample()).to_state()
        document = json.loads(json.dumps(state))
        assert document["n_shards"] == 3
        assert document["n_features"] == 4
        assert "tree" in document

    def test_unfitted_to_state_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            PrincipalAxisRouter(2).to_state()

    def test_invalid_state_raises(self):
        with pytest.raises(ValueError, match="invalid router state"):
            PrincipalAxisRouter.from_state({"n_shards": 2})
        with pytest.raises(ValueError, match="tree"):
            PrincipalAxisRouter.from_state(
                {"n_shards": 2, "n_features": 3, "tree": []}
            )

"""Load generator: pacing, endpoint mix, percentile report, artifact."""

import json
import threading

import pytest

from repro.serve import (
    AnonymizationHTTPServer,
    ShardedCondensationService,
    run_loadgen,
    write_report,
)
from repro.serve.loadgen import _summarize


@pytest.fixture()
def server():
    service = ShardedCondensationService(
        n_shards=2, k=3, bootstrap_size=12, random_state=0
    )
    instance = AnonymizationHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    thread.join(timeout=5)
    instance.server_close()
    service.close()


class TestRunLoadgen:
    def test_report_shape_and_mix(self, server):
        report = run_loadgen(
            f"http://127.0.0.1:{server.server_port}",
            duration_seconds=2.0, qps=60.0,
        )
        assert report["n_failures"] == 0
        assert report["achieved_qps"] > 0
        assert report["n_requests"] >= 60
        assert "/ingest" in report["endpoints"]
        assert "/generate" in report["endpoints"]
        for stats in report["endpoints"].values():
            assert set(stats) == {
                "n", "p50_ms", "p95_ms", "p99_ms", "mean_ms"
            }
            assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]

    def test_batched_ingest(self, server):
        report = run_loadgen(
            f"http://127.0.0.1:{server.server_port}",
            duration_seconds=1.0, qps=40.0, batch_size=8,
        )
        assert report["batch_size"] == 8
        assert report["n_failures"] == 0

    def test_unreachable_server_raises(self):
        with pytest.raises(RuntimeError, match="no request"):
            run_loadgen(
                "http://127.0.0.1:9", duration_seconds=0.3, qps=10.0,
                timeout=0.2,
            )

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="qps"):
            run_loadgen("http://x", qps=0)
        with pytest.raises(ValueError, match="duration"):
            run_loadgen("http://x", duration_seconds=0)
        with pytest.raises(ValueError, match="batch_size"):
            run_loadgen("http://x", batch_size=0)


class TestSummarize:
    def test_percentiles_ordered(self):
        stats = _summarize([0.001 * value for value in range(1, 101)])
        assert stats["n"] == 100
        assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
        assert stats["p50_ms"] == pytest.approx(50.5, abs=1.0)


class TestWriteReport:
    def test_atomic_artifact(self, tmp_path):
        path = write_report(
            {"achieved_qps": 1.0}, tmp_path / "BENCH_serve.json"
        )
        assert json.loads(path.read_text()) == {"achieved_qps": 1.0}
        assert not path.with_suffix(".json.tmp").exists()

    def test_creates_parent_directories(self, tmp_path):
        path = write_report({}, tmp_path / "deep" / "bench.json")
        assert path.is_file()

"""End-to-end service lifecycle: ingest over HTTP, die, recover.

The serving twin of the durability fault-injection suite: a real
``repro serve`` subprocess takes traffic, is killed (SIGKILL — no
graceful shutdown runs), and a restart against the same checkpoint
directory must answer ``/model`` byte-identically to the pre-crash
response at the durable frontier.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

from repro.linalg.rng import check_random_state

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "src",
)


def _spawn_server(tmp_path, label, extra=()):
    """Start ``repro serve`` on an ephemeral port; return (proc, url)."""
    port_file = tmp_path / f"port-{label}.txt"
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--port-file", str(port_file),
            "--shards", "3", "--k", "4", "--bootstrap-size", "30",
            "--checkpoint-dir", str(tmp_path / "state"),
            "--checkpoint-every", "16", "--seed", "11",
            *extra,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.is_file() and port_file.read_text().strip():
            port = int(port_file.read_text().strip())
            return process, f"http://127.0.0.1:{port}"
        if process.poll() is not None:
            raise AssertionError(
                f"server died at startup: {process.stderr.read()}"
            )
        time.sleep(0.05)
    process.kill()
    raise AssertionError("server did not publish its port in time")


def _post_json(url, document):
    request = urllib.request.Request(
        url, data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as reply:
        return json.loads(reply.read())


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as reply:
        return reply.read()


class TestCrashRecoveryOverHTTP:
    def test_model_identical_after_kill_and_restart(self, tmp_path):
        records = check_random_state(5).normal(size=(150, 3)).tolist()
        process, url = _spawn_server(tmp_path, "first")
        try:
            result = _post_json(f"{url}/ingest", {"records": records})
            assert result["accepted"] == 150
            assert result["bootstrapped"]
            before = _get(f"{url}/model")
        finally:
            # SIGKILL: no signal handler, no checkpoint-on-exit — only
            # the WAL carries the state across the crash.
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)

        process, url = _spawn_server(tmp_path, "second")
        try:
            after = _get(f"{url}/model")
            assert after == before
            health = json.loads(_get(f"{url}/healthz"))
            assert health["recovered_shards"] == 3
            assert health["position"] == 150
            # The recovered service keeps taking traffic.
            more = _post_json(
                f"{url}/ingest",
                {"records": check_random_state(6)
                    .normal(size=(20, 3)).tolist()},
            )
            assert more["position"] == 170
        finally:
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=10) == 0

    def test_sigterm_checkpoint_equals_crash_recovery(self, tmp_path):
        records = check_random_state(8).normal(size=(100, 3)).tolist()
        process, url = _spawn_server(tmp_path, "graceful")
        try:
            _post_json(f"{url}/ingest", {"records": records})
            before = _get(f"{url}/model")
        finally:
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=10) == 0

        process, url = _spawn_server(tmp_path, "restarted")
        try:
            assert _get(f"{url}/model") == before
        finally:
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=10) == 0

"""Concurrency contract of the serving plane.

The lock hierarchy in ``docs/serving.md`` promises that checkpointing
one shard never serializes ingest into the others: the service lock
``L`` covers routing only, and each shard's long I/O runs under its
own shard lock.  These tests pin that contract with real threads —
a checkpoint frozen mid-shard must not block a concurrently routed
ingest — plus multi-writer totals and the close-during-traffic 409
path.
"""

import threading

import numpy as np
import pytest

from repro.linalg.rng import check_random_state
from repro.serve import ShardedCondensationService

WAIT = 10.0


def _bootstrapped(tmp_path, n_shards=2, seed=11):
    service = ShardedCondensationService(
        n_shards=n_shards, k=4, bootstrap_size=24,
        random_state=seed, root=tmp_path / "serve",
    )
    rng = check_random_state(seed)
    service.ingest(rng.normal(size=(96, 3)))
    assert service.model()["bootstrapped"]
    return service, rng


class TestCheckpointDoesNotBlockIngest:
    def test_ingest_proceeds_while_another_shard_checkpoints(
        self, tmp_path
    ):
        service, rng = _bootstrapped(tmp_path)
        try:
            # Find records that route AWAY from the shard we freeze.
            probe = rng.normal(size=(64, 3))
            ids = service._router.route(probe)
            slow_id = int(ids[0])
            fast = probe[ids != slow_id][:4]
            assert len(fast) > 0, "probe routed to a single shard"

            entered = threading.Event()
            release = threading.Event()
            real_checkpoint = service._shards[slow_id].checkpoint

            def gated_checkpoint():
                entered.set()
                assert release.wait(WAIT), "gate never released"
                return real_checkpoint()

            service._shards[slow_id].checkpoint = gated_checkpoint

            checkpointer = threading.Thread(target=service.checkpoint)
            checkpointer.start()
            try:
                assert entered.wait(WAIT), "checkpoint never started"
                # The slow shard now holds its shard lock.  Ingest into
                # the other shard must complete regardless.
                done = threading.Event()
                outcome = {}

                def ingest():
                    outcome["result"] = service.ingest(fast)
                    done.set()

                threading.Thread(target=ingest).start()
                assert done.wait(WAIT), (
                    "ingest blocked behind a checkpointing shard"
                )
                assert outcome["result"]["accepted"] == len(fast)
            finally:
                release.set()
                checkpointer.join(WAIT)
            assert not checkpointer.is_alive()
        finally:
            release.set()
            service._shards[slow_id].checkpoint = real_checkpoint
            service.close()

    def test_checkpoint_then_recover_round_trips(self, tmp_path):
        service, rng = _bootstrapped(tmp_path)
        service.ingest(rng.normal(size=(32, 3)))
        service.checkpoint()
        position = service.position
        service.close()
        recovered = ShardedCondensationService.open(
            tmp_path / "serve", n_shards=2, k=4, bootstrap_size=24,
        )
        assert recovered.position == position
        recovered.close()


class TestConcurrentIngest:
    def test_parallel_writers_account_for_every_record(self, tmp_path):
        service, rng = _bootstrapped(tmp_path)
        try:
            start = service.position
            batches = [rng.normal(size=(16, 3)) for _ in range(8)]
            workers = [
                threading.Thread(target=service.ingest, args=(batch,))
                for batch in batches
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(WAIT)
            assert service.position == start + 8 * 16
            model = service.model()
            assert model["total_count"] == service.position
        finally:
            service.close()


class TestCloseDuringTraffic:
    def test_ingest_after_close_is_rejected(self, tmp_path):
        service, rng = _bootstrapped(tmp_path)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.ingest(rng.normal(size=(4, 3)))

    def test_close_is_idempotent_under_contention(self, tmp_path):
        service, _ = _bootstrapped(tmp_path)
        workers = [
            threading.Thread(target=service.close) for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(WAIT)
        assert all(not worker.is_alive() for worker in workers)
        service.close()

    def test_concurrent_traffic_with_close_never_corrupts(
        self, tmp_path
    ):
        service, rng = _bootstrapped(tmp_path)
        batches = [rng.normal(size=(8, 3)) for _ in range(6)]
        errors = []

        def ingest(batch):
            try:
                service.ingest(batch)
            except RuntimeError as error:
                # The documented 409 contract: closed mid-flight.
                errors.append(str(error))

        workers = [
            threading.Thread(target=ingest, args=(batch,))
            for batch in batches
        ]
        for worker in workers[:3]:
            worker.start()
        service.close()
        for worker in workers[3:]:
            worker.start()
        for worker in workers:
            worker.join(WAIT)
        assert all("closed" in message for message in errors)

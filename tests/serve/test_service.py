"""ShardedCondensationService: bootstrap, traffic, and recovery."""

import json

import numpy as np
import pytest

from repro.linalg.rng import check_random_state
from repro.serve import NotReadyError, ShardedCondensationService
from repro.serve.service import _proportional_sizes, shard_directory


def _stream(n=240, d=3, seed=0):
    return check_random_state(seed).normal(size=(n, d))


def _service(**overrides):
    settings = dict(n_shards=3, k=4, bootstrap_size=30, random_state=7)
    settings.update(overrides)
    return ShardedCondensationService(**settings)


class TestBootstrap:
    def test_buffers_until_threshold(self):
        service = _service()
        result = service.ingest(_stream(n=29))
        assert result == {
            "accepted": 29, "buffered": 29,
            "bootstrapped": False, "position": 0,
        }

    def test_crossing_threshold_fits_and_flushes(self):
        service = _service()
        result = service.ingest(_stream(n=45))
        assert result["bootstrapped"]
        assert result["buffered"] == 0
        assert result["position"] == 45

    def test_single_record_ingest(self):
        service = _service(bootstrap_size=3)
        service.ingest(np.zeros(3))
        service.ingest(np.ones(3))
        result = service.ingest(np.full(3, 2.0))
        assert result["accepted"] == 1
        assert result["bootstrapped"]

    def test_bootstrap_size_floor(self):
        with pytest.raises(ValueError, match="bootstrap_size"):
            _service(n_shards=4, bootstrap_size=2)

    def test_default_bootstrap_size(self):
        service = ShardedCondensationService(n_shards=2, k=5)
        assert service.bootstrap_size == 20


class TestValidation:
    def test_wrong_dimensionality_rejected(self):
        service = _service()
        service.ingest(_stream(n=5))
        with pytest.raises(ValueError, match="3 attributes"):
            service.ingest(np.zeros((2, 4)))

    def test_non_finite_rejected(self):
        service = _service()
        bad = np.full((2, 3), np.nan)
        with pytest.raises(ValueError, match="finite"):
            service.ingest(bad)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            _service().ingest(np.empty((0, 3)))

    def test_dimensionality_locked_after_bootstrap(self):
        service = _service()
        service.ingest(_stream(n=60))
        with pytest.raises(ValueError, match="3 attributes"):
            service.ingest(np.zeros((1, 5)))

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedCondensationService(0, 4)
        with pytest.raises(ValueError, match="k must be"):
            ShardedCondensationService(2, 0)


class TestTraffic:
    def test_generate_shape_and_determinism(self):
        first = _service()
        first.ingest(_stream())
        drawn = first.generate(25)
        assert drawn.shape == (25, 3)
        second = _service()
        second.ingest(_stream())
        np.testing.assert_array_equal(drawn, second.generate(25))

    def test_generate_before_groups_raises(self):
        service = _service()
        with pytest.raises(NotReadyError, match="bootstrap_size"):
            service.generate(5)

    def test_generate_validates_n(self):
        service = _service()
        service.ingest(_stream())
        with pytest.raises(ValueError, match="n_records"):
            service.generate(0)

    def test_model_document_is_statistics_only(self):
        service = _service()
        service.ingest(_stream(n=90))
        document = service.model()
        assert document["n_shards"] == 3
        assert document["total_count"] == 90
        assert len(document["shards"]) == 3
        for entry in document["shards"]:
            for group in entry["groups"]:
                assert set(group) == {
                    "first_order", "second_order", "count"
                }
        # Groups keep (Fs, Sc, n): every per-group document is sums and
        # a count, so the JSON body holds no individual records.
        json.dumps(document)

    def test_every_group_keeps_k(self):
        service = _service()
        service.ingest(_stream())
        for entry in service.model()["shards"]:
            for group in entry["groups"]:
                assert group["count"] >= service.k

    def test_status_fields(self):
        service = _service()
        health = service.status()
        assert health["status"] == "ok"
        assert health["bootstrapped"] is False
        service.close()
        assert service.status()["status"] == "closed"


class TestLifecycle:
    def test_closed_service_refuses_traffic(self):
        service = _service()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.ingest(np.zeros(3))
        with pytest.raises(RuntimeError, match="closed"):
            service.generate(1)

    def test_close_is_idempotent(self):
        service = _service()
        service.close()
        service.close()
        assert service.closed

    def test_context_manager_closes(self):
        with _service() as service:
            service.ingest(_stream(n=40))
        assert service.closed


class TestDurability:
    def _open(self, root):
        return ShardedCondensationService.open(
            root, 3, 4, bootstrap_size=30, random_state=7,
            checkpoint_every=16,
        )

    def test_recovered_model_is_byte_identical(self, tmp_path):
        service = self._open(tmp_path)
        service.ingest(_stream(n=150))
        expected = json.dumps(service.model(), sort_keys=True)
        service.close()

        recovered = self._open(tmp_path)
        assert recovered.recovered_shards == 3
        assert json.dumps(recovered.model(), sort_keys=True) == expected
        recovered.close()

    def test_router_persisted_and_restored(self, tmp_path):
        service = self._open(tmp_path)
        service.ingest(_stream(n=80))
        service.close()
        assert (tmp_path / "router.json").is_file()

        recovered = self._open(tmp_path)
        assert recovered.status()["bootstrapped"]
        # Routing resumes without a second bootstrap phase.
        result = recovered.ingest(_stream(n=10, seed=9))
        assert result["buffered"] == 0
        recovered.close()

    def test_recovery_continues_generation_stream(self, tmp_path):
        # Reference run: no restart, two consecutive draws.
        reference = _service(random_state=7)
        reference.ingest(_stream(n=100))
        reference.generate(8)
        expected_next = reference.generate(8)

        service = self._open(tmp_path)
        service.ingest(_stream(n=100))
        service.generate(8)
        service.close()

        # Recovery restores the post-draw RNG position, so the next
        # draw continues the stream exactly where the crash left it.
        recovered = self._open(tmp_path)
        np.testing.assert_array_equal(
            expected_next, recovered.generate(8)
        )
        recovered.close()

    def test_crash_after_draw_keeps_rng_position(self, tmp_path):
        reference = _service(random_state=7)
        reference.ingest(_stream(n=100))
        reference.generate(8)
        expected_next = reference.generate(8)

        service = self._open(tmp_path)
        service.ingest(_stream(n=100))
        service.generate(8)
        # Crash without checkpoint/close: the WAL rng entry alone must
        # carry the post-draw position.
        del service

        recovered = self._open(tmp_path)
        np.testing.assert_array_equal(
            expected_next, recovered.generate(8)
        )
        recovered.close()

    def test_crash_without_close_still_recovers(self, tmp_path):
        service = self._open(tmp_path)
        service.ingest(_stream(n=120))
        expected = json.dumps(service.model(), sort_keys=True)
        # Simulate a crash: drop the instance without checkpoint/close.
        del service

        recovered = self._open(tmp_path)
        assert json.dumps(recovered.model(), sort_keys=True) == expected
        recovered.close()

    def test_shard_directories_layout(self, tmp_path):
        service = self._open(tmp_path)
        service.ingest(_stream(n=50))
        service.close()
        for shard_id in range(3):
            assert shard_directory(tmp_path, shard_id).is_dir()

    def test_open_requires_root(self):
        with pytest.raises(ValueError, match="root"):
            ShardedCondensationService.open(None, 2, 4)

    def test_open_refuses_orphaning_shards(self, tmp_path):
        service = self._open(tmp_path)
        service.ingest(_stream(n=50))
        service.close()
        with pytest.raises(ValueError, match="refusing to orphan"):
            ShardedCondensationService.open(tmp_path, 2, 4)


class TestProportionalSizes:
    def test_exact_total(self):
        sizes = _proportional_sizes(np.array([10, 20, 30]), 17)
        assert sum(sizes) == 17

    def test_proportionality(self):
        sizes = _proportional_sizes(np.array([10, 10, 80]), 100)
        assert sizes == [10, 10, 80]

    def test_largest_remainder_breaks_ties_stably(self):
        assert sum(_proportional_sizes(np.array([1, 1, 1]), 2)) == 2

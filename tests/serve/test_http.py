"""HTTP endpoints: payloads, structured errors, and metrics."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import telemetry
from repro.linalg.rng import check_random_state
from repro.serve import (
    AnonymizationHTTPServer,
    ShardedCondensationService,
)


@pytest.fixture()
def server():
    """A live threaded server on an ephemeral port, torn down after."""
    service = ShardedCondensationService(
        n_shards=2, k=3, bootstrap_size=12, random_state=0
    )
    instance = AnonymizationHTTPServer(
        ("127.0.0.1", 0), service, max_body_bytes=4096
    )
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    thread.join(timeout=5)
    instance.server_close()
    service.close()


def _call(server, endpoint, body=None, method=None,
          content_length=None):
    """Issue one request; return (status, decoded JSON or text)."""
    url = f"http://127.0.0.1:{server.server_port}{endpoint}"
    request = urllib.request.Request(url, method=method)
    if body is not None:
        encoded = body if isinstance(body, bytes) \
            else json.dumps(body).encode("utf-8")
        request.data = encoded
        request.add_header("Content-Type", "application/json")
    if content_length is not None:
        request.add_header("Content-Length", str(content_length))
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            status, payload = reply.status, reply.read()
            content_type = reply.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        status, payload = error.code, error.read()
        content_type = error.headers.get("Content-Type", "")
        error.close()
    if content_type.startswith("application/json"):
        return status, json.loads(payload)
    return status, payload.decode("utf-8")


def _records(n, d=3, seed=0):
    return check_random_state(seed).normal(size=(n, d)).tolist()


class TestEndpoints:
    def test_healthz(self, server):
        status, health = _call(server, "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["n_shards"] == 2

    def test_ingest_batch_and_single(self, server):
        status, result = _call(
            server, "/ingest", body={"records": _records(20)}
        )
        assert status == 200
        assert result["accepted"] == 20
        assert result["bootstrapped"]
        status, result = _call(
            server, "/ingest", body={"record": [0.0, 0.0, 0.0]}
        )
        assert status == 200
        assert result["accepted"] == 1

    def test_ingest_bare_array(self, server):
        status, result = _call(server, "/ingest", body=_records(5))
        assert status == 200
        assert result["accepted"] == 5

    def test_generate_after_warmup(self, server):
        _call(server, "/ingest", body={"records": _records(30)})
        status, drawn = _call(server, "/generate?n=7")
        assert status == 200
        assert drawn["n"] == 7
        assert drawn["n_features"] == 3
        assert np.asarray(drawn["records"]).shape == (7, 3)

    def test_model_matches_service(self, server):
        _call(server, "/ingest", body={"records": _records(30)})
        status, document = _call(server, "/model")
        assert status == 200
        assert document == json.loads(
            json.dumps(server.service.model(), sort_keys=True)
        )

    def test_metrics_exposition(self, server):
        previous = telemetry.get_pipeline()
        telemetry.configure()
        try:
            _call(server, "/ingest", body={"records": _records(15)})
            status, text = _call(server, "/metrics")
        finally:
            telemetry.set_pipeline(previous)
        assert status == 200
        assert "repro_serve_ingested_total" in text

    def test_metrics_without_telemetry_still_answers(self, server):
        telemetry.disable()
        status, text = _call(server, "/metrics")
        assert status == 200
        assert "telemetry disabled" in text


class TestGracefulDegradation:
    def test_malformed_json_is_structured_400(self, server):
        status, reply = _call(server, "/ingest", body=b"{not json")
        assert status == 400
        assert reply["error"]["code"] == "bad-json"
        assert "Traceback" not in json.dumps(reply)

    def test_non_numeric_records_400(self, server):
        status, reply = _call(
            server, "/ingest", body={"records": [["a", "b"]]}
        )
        assert status == 400
        assert reply["error"]["code"] == "bad-records"

    def test_wrong_dimensionality_400(self, server):
        _call(server, "/ingest", body={"records": _records(15)})
        status, reply = _call(
            server, "/ingest", body={"record": [1.0, 2.0]}
        )
        assert status == 400
        assert reply["error"]["code"] == "bad-records"
        assert "attributes" in reply["error"]["message"]

    def test_non_finite_values_400(self, server):
        status, reply = _call(
            server, "/ingest",
            body={"record": [1.0, float("nan"), 0.0]},
        )
        assert status == 400
        assert reply["error"]["code"] == "bad-records"
        assert "finite" in reply["error"]["message"]

    def test_oversized_body_413(self, server):
        status, reply = _call(
            server, "/ingest", body={"records": _records(500)}
        )
        assert status == 413
        assert reply["error"]["code"] == "body-too-large"

    def test_missing_payload_keys_400(self, server):
        status, reply = _call(server, "/ingest", body={"rows": [[1.0]]})
        assert status == 400
        assert reply["error"]["code"] == "bad-payload"

    def test_unknown_endpoint_404(self, server):
        status, reply = _call(server, "/nope")
        assert status == 404
        assert reply["error"]["code"] == "not-found"

    def test_wrong_method_405(self, server):
        status, reply = _call(server, "/model", body={"x": 1})
        assert status == 405
        assert reply["error"]["code"] == "method-not-allowed"

    def test_bad_generate_n_400(self, server):
        for query in ("n=zero", "n=0", "n=-3", "n=9999999999"):
            status, reply = _call(server, f"/generate?{query}")
            assert status == 400
            assert reply["error"]["code"] == "bad-n"

    def test_generate_before_ready_409(self, server):
        status, reply = _call(server, "/generate?n=5")
        assert status == 409
        assert reply["error"]["code"] == "not-ready"

    def test_rejections_increment_counter(self, server):
        previous = telemetry.get_pipeline()
        pipeline = telemetry.configure()
        try:
            _call(server, "/ingest", body=b"{not json")
            _call(server, "/nope")
        finally:
            telemetry.set_pipeline(previous)
        counter = pipeline.registry.counter("serve.rejected")
        assert sum(counter.series().values()) == 2

    def test_worker_threads_survive_rejections(self, server):
        # A burst of bad requests must leave the server answering.
        for _ in range(5):
            _call(server, "/ingest", body=b"broken")
        status, health = _call(server, "/healthz")
        assert status == 200
        assert health["status"] == "ok"

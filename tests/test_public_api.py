"""Public API surface tests.

Guard the names downstream users import, and execute the docstring
examples of the package front door so the documentation stays honest.
"""

import doctest
import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.linalg",
    "repro.parallel",
    "repro.neighbors",
    "repro.mining",
    "repro.preprocessing",
    "repro.metrics",
    "repro.datasets",
    "repro.baselines",
    "repro.privacy",
    "repro.stream",
    "repro.evaluation",
    "repro.quality",
    "repro.io",
]


class TestApiSurface:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), module_name
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_top_level_names(self):
        import repro

        expected = {
            "StaticCondenser", "DynamicCondenser", "ClasswiseCondenser",
            "CondensedModel", "GroupStatistics",
            "create_condensed_groups", "generate_anonymized_data",
            "split_group_statistics", "covariance_compatibility",
            "linkage_attack", "privacy_report", "__version__",
        }
        assert expected <= set(repro.__all__)

    def test_version_is_semver_like(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)


class TestDocstringExamples:
    @pytest.mark.parametrize(
        "module_name",
        ["repro", "repro.core.condenser"],
    )
    def test_doctests_pass(self, module_name):
        module = importlib.import_module(module_name)
        results = doctest.testmod(
            module, optionflags=doctest.ELLIPSIS, verbose=False
        )
        assert results.failed == 0
        assert results.attempted > 0

"""Tests for repro.privacy.metrics."""

import numpy as np
import pytest

from repro.core.condensation import create_condensed_groups
from repro.privacy.metrics import (
    indistinguishability_level,
    privacy_report,
)


class TestPrivacyReport:
    def test_static_model_satisfies_k(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        report = privacy_report(model)
        assert report.requested_k == 10
        assert report.achieved_k >= 10
        assert report.satisfied

    def test_average_and_max(self, gaussian_data):
        # 120 records at k=7: 17 groups, one absorbs the leftover.
        model = create_condensed_groups(gaussian_data, k=7, random_state=0)
        report = privacy_report(model)
        assert report.n_groups == 17
        assert report.max_group_size == 8
        assert report.average_group_size == pytest.approx(120 / 17)

    def test_expected_disclosure_uniform_groups(self, gaussian_data):
        # Equal groups of size 10: disclosure = 1/10 regardless of group.
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        report = privacy_report(model)
        assert report.expected_disclosure == pytest.approx(0.1)

    def test_expected_disclosure_decreases_with_k(self, gaussian_data):
        disclosures = []
        for k in (5, 20, 60):
            model = create_condensed_groups(
                gaussian_data, k=k, random_state=0
            )
            disclosures.append(privacy_report(model).expected_disclosure)
        assert disclosures[0] > disclosures[1] > disclosures[2]

    def test_disclosure_weighted_by_membership(self):
        # One group of 10, one of 30: a random record is in the large
        # group 3/4 of the time -> expected = 0.75/30 + 0.25/10.
        from repro.core.statistics import CondensedModel, GroupStatistics

        rng = np.random.default_rng(0)
        model = CondensedModel(
            groups=[
                GroupStatistics.from_records(rng.normal(size=(10, 2))),
                GroupStatistics.from_records(rng.normal(size=(30, 2))),
            ],
            k=10,
        )
        report = privacy_report(model)
        assert report.expected_disclosure == pytest.approx(
            0.25 * 0.1 + 0.75 * (1.0 / 30.0)
        )


class TestIndistinguishabilityLevel:
    def test_matches_minimum_group(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=9, random_state=0)
        assert indistinguishability_level(model) == int(
            model.group_sizes.min()
        )

    def test_dynamic_model_within_band(self, gaussian_data, rng):
        from repro.core.dynamic import DynamicGroupMaintainer

        maintainer = DynamicGroupMaintainer(
            k=10, initial_data=gaussian_data, random_state=0
        )
        maintainer.add_stream(rng.normal(size=(300, 4)))
        level = indistinguishability_level(maintainer.to_model())
        assert level >= 10

"""Tests for repro.privacy.membership."""

import numpy as np
import pytest

from repro.core.condenser import StaticCondenser
from repro.privacy.membership import (
    membership_inference_attack,
    roc_auc,
)


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([3.0, 4.0, 5.0], [0.0, 1.0, 2.0]) == pytest.approx(1.0)

    def test_perfectly_inverted(self):
        assert roc_auc([0.0, 1.0], [5.0, 6.0]) == 0.0

    def test_chance_for_identical_distributions(self, rng):
        positives = rng.normal(size=2000)
        negatives = rng.normal(size=2000)
        assert abs(roc_auc(positives, negatives) - 0.5) < 0.03

    def test_all_ties_is_half(self):
        assert roc_auc([1.0, 1.0], [1.0, 1.0]) == pytest.approx(0.5)

    def test_scipy_agreement(self, rng):
        from scipy.stats import mannwhitneyu

        positives = rng.normal(loc=0.5, size=80)
        negatives = rng.normal(size=120)
        expected = mannwhitneyu(
            positives, negatives, alternative="two-sided"
        ).statistic / (80 * 120)
        assert roc_auc(positives, negatives) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            roc_auc([], [1.0])


class TestMembershipInferenceAttack:
    def make_populations(self, rng, n=300, d=4):
        population = rng.normal(size=(2 * n, d))
        return population[:n], population[n:]

    def test_raw_release_leaks_membership(self, rng):
        # Releasing the members themselves: the attack is near-perfect.
        members, non_members = self.make_populations(rng)
        result = membership_inference_attack(
            members, non_members, release=members
        )
        assert result.auc > 0.95
        # Expanded-form distance noise is ~sqrt(eps); tolerate that.
        assert result.member_mean_distance == pytest.approx(0.0,
                                                            abs=1e-6)

    def test_condensed_release_blunts_the_attack(self, rng):
        members, non_members = self.make_populations(rng)
        release = StaticCondenser(k=20, random_state=0).fit_generate(
            members
        )
        raw = membership_inference_attack(
            members, non_members, release=members
        )
        condensed = membership_inference_attack(
            members, non_members, release=release
        )
        assert condensed.auc < raw.auc - 0.2
        assert condensed.advantage < 0.5

    def test_advantage_decreases_with_k(self, rng):
        members, non_members = self.make_populations(rng, n=400)
        advantages = []
        for k in (2, 40):
            release = StaticCondenser(
                k=k, random_state=0
            ).fit_generate(members)
            result = membership_inference_attack(
                members, non_members, release=release
            )
            advantages.append(result.advantage)
        assert advantages[0] > advantages[1]

    def test_advantage_bounds(self, rng):
        members, non_members = self.make_populations(rng)
        release = StaticCondenser(k=10, random_state=0).fit_generate(
            members
        )
        result = membership_inference_attack(
            members, non_members, release=release
        )
        assert 0.0 <= result.advantage <= 1.0

    def test_validation(self, rng):
        members, non_members = self.make_populations(rng, n=20)
        with pytest.raises(ValueError, match="non-empty"):
            membership_inference_attack(
                np.empty((0, 4)), non_members, members
            )
        with pytest.raises(ValueError, match="dimensionality"):
            membership_inference_attack(
                members, non_members[:, :2], members
            )

"""Tests for repro.privacy.attacks — the record-linkage attack."""

import numpy as np
import pytest

from repro.core.condensation import create_condensed_groups
from repro.privacy.attacks import (
    generate_with_provenance,
    linkage_attack,
)


class TestGenerateWithProvenance:
    def test_provenance_aligns_with_sizes(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        anonymized, provenance = generate_with_provenance(
            model, random_state=0
        )
        assert anonymized.shape == gaussian_data.shape
        assert provenance.shape == (120,)
        counts = np.bincount(provenance, minlength=model.n_groups)
        np.testing.assert_array_equal(counts, model.group_sizes)


class TestLinkageAttack:
    def test_result_fields(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        result = linkage_attack(gaussian_data, model, random_state=1)
        assert 0.0 <= result.group_linkage_rate <= 1.0
        assert 0.0 <= result.expected_record_disclosure <= 1.0
        assert result.baseline_disclosure == pytest.approx(1.0 / 120.0)
        assert result.n_victims == 120

    def test_disclosure_bounded_by_linkage_over_k(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        result = linkage_attack(gaussian_data, model, random_state=1)
        assert result.expected_record_disclosure <= (
            result.group_linkage_rate / 10.0 + 1e-12
        )

    def test_disclosure_decreases_with_k(self, gaussian_data):
        disclosures = []
        for k in (2, 10, 40):
            model = create_condensed_groups(
                gaussian_data, k=k, random_state=0
            )
            result = linkage_attack(gaussian_data, model, random_state=1)
            disclosures.append(result.expected_record_disclosure)
        assert disclosures[0] > disclosures[-1]

    def test_well_separated_groups_link_strongly(self, rng):
        # Far-apart blobs: nearly every record links back to its own
        # group - but record-level disclosure stays at ~1/k.
        data = np.vstack([
            rng.normal(loc=offset, scale=0.3, size=(20, 2))
            for offset in (0.0, 50.0, 100.0)
        ])
        model = create_condensed_groups(data, k=20, random_state=0)
        result = linkage_attack(data, model, random_state=1)
        assert result.group_linkage_rate > 0.95
        assert result.expected_record_disclosure <= 0.05 + 1e-9

    def test_missing_memberships_rejected(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        model.metadata.pop("memberships")
        with pytest.raises(ValueError, match="memberships"):
            linkage_attack(gaussian_data, model, random_state=0)

    def test_explicit_memberships_accepted(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        memberships = model.metadata.pop("memberships")
        result = linkage_attack(
            gaussian_data, model, memberships=memberships, random_state=0
        )
        assert result.n_victims == 120

    def test_incomplete_memberships_rejected(self, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        truncated = [
            members[:-1] for members in model.metadata["memberships"]
        ]
        with pytest.raises(ValueError, match="cover"):
            linkage_attack(
                gaussian_data, model, memberships=truncated, random_state=0
            )


class TestAttributeDisclosureAttack:
    def test_release_helps_on_correlated_data(self, rng):
        # Strongly correlated attributes: knowing d-1 of them plus the
        # release pins the last one far better than the baseline.
        from repro.privacy.attacks import attribute_disclosure_attack

        x = rng.normal(size=300)
        data = np.column_stack([
            x, x + 0.05 * rng.normal(size=300),
            x + 0.05 * rng.normal(size=300),
        ])
        model = create_condensed_groups(data, k=10, random_state=0)
        result = attribute_disclosure_attack(
            data, model, attribute=2, random_state=1
        )
        assert result.attack_error < result.baseline_error
        assert result.relative_gain > 0.5

    def test_independent_attribute_gains_little(self, rng):
        from repro.privacy.attacks import attribute_disclosure_attack

        data = rng.normal(size=(300, 3))  # fully independent columns
        model = create_condensed_groups(data, k=10, random_state=0)
        result = attribute_disclosure_attack(
            data, model, attribute=2, random_state=1
        )
        # With no correlation the release gives the adversary roughly
        # nothing; allow generous slack for small-sample noise.
        assert result.relative_gain < 0.35

    def test_gain_decreases_with_k(self, rng):
        from repro.privacy.attacks import attribute_disclosure_attack

        x = rng.normal(size=400)
        data = np.column_stack([
            x, x + 0.1 * rng.normal(size=400),
            x + 0.1 * rng.normal(size=400),
        ])
        gains = []
        for k in (2, 50):
            model = create_condensed_groups(data, k=k, random_state=0)
            result = attribute_disclosure_attack(
                data, model, attribute=0, random_state=1
            )
            gains.append(result.relative_gain)
        assert gains[0] > gains[1]

    def test_attribute_validation(self, gaussian_data):
        from repro.privacy.attacks import attribute_disclosure_attack

        model = create_condensed_groups(gaussian_data, k=10,
                                        random_state=0)
        with pytest.raises(ValueError, match="attribute"):
            attribute_disclosure_attack(gaussian_data, model, attribute=9)

    def test_single_column_rejected(self, rng):
        from repro.privacy.attacks import attribute_disclosure_attack

        data = rng.normal(size=(50, 1))
        model = create_condensed_groups(data, k=5, random_state=0)
        with pytest.raises(ValueError, match="known attribute"):
            attribute_disclosure_attack(data, model, attribute=0)

"""Tests for repro.cli — the command-line pipeline."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.io.csv import read_records, write_records


@pytest.fixture
def data_csv(tmp_path, rng):
    data = rng.normal(size=(150, 3))
    labels = (data[:, 0] > 0).astype(float)
    path = tmp_path / "data.csv"
    write_records(
        path, np.column_stack([data, labels]),
        feature_names=["a", "b", "c", "label"],
    )
    return path


class TestCondenseGenerate:
    def test_condense_writes_model(self, tmp_path, data_csv, capsys):
        model_path = tmp_path / "model.json"
        exit_code = main([
            "condense", str(data_csv), str(model_path), "--k", "10",
        ])
        assert exit_code == 0
        payload = json.loads(model_path.read_text())
        assert payload["k"] == 10
        assert payload["metadata"] == {}
        out = capsys.readouterr().out
        assert "150 records" in out

    def test_condense_with_shards_meets_privacy_level(
        self, tmp_path, data_csv, capsys
    ):
        model_path = tmp_path / "model.json"
        exit_code = main([
            "condense", str(data_csv), str(model_path), "--k", "10",
            "--shards", "3", "--workers", "1",
        ])
        assert exit_code == 0
        payload = json.loads(model_path.read_text())
        assert payload["k"] == 10
        assert all(
            group["count"] >= 10 for group in payload["groups"]
        )
        assert "achieved 10" in capsys.readouterr().out

    def test_shards_give_same_model_for_any_worker_count(
        self, tmp_path, data_csv
    ):
        payloads = []
        for workers in ("1", "2"):
            model_path = tmp_path / f"model_{workers}.json"
            main([
                "condense", str(data_csv), str(model_path),
                "--k", "10", "--strategy", "mdav",
                "--shards", "3", "--workers", workers,
            ])
            payloads.append(json.loads(model_path.read_text()))
        assert payloads[0]["groups"] == payloads[1]["groups"]

    def test_generate_from_model(self, tmp_path, data_csv):
        model_path = tmp_path / "model.json"
        release_path = tmp_path / "release.csv"
        main(["condense", str(data_csv), str(model_path), "--k", "10"])
        exit_code = main([
            "generate", str(model_path), str(release_path),
        ])
        assert exit_code == 0
        release, header = read_records(release_path)
        assert release.shape == (150, 4)

    def test_generate_deterministic_under_seed(self, tmp_path, data_csv):
        model_path = tmp_path / "model.json"
        main(["condense", str(data_csv), str(model_path), "--k", "10"])
        first = tmp_path / "r1.csv"
        second = tmp_path / "r2.csv"
        main(["generate", str(model_path), str(first), "--seed", "3"])
        main(["generate", str(model_path), str(second), "--seed", "3"])
        a, __ = read_records(first)
        b, __ = read_records(second)
        np.testing.assert_array_equal(a, b)


class TestAnonymize:
    def test_one_step_anonymize(self, tmp_path, data_csv):
        release_path = tmp_path / "release.csv"
        exit_code = main([
            "anonymize", str(data_csv), str(release_path), "--k", "10",
        ])
        assert exit_code == 0
        release, header = read_records(release_path)
        assert release.shape == (150, 4)
        assert header == ["a", "b", "c", "label"]

    def test_classwise_anonymize_preserves_labels(self, tmp_path,
                                                  data_csv):
        release_path = tmp_path / "release.csv"
        exit_code = main([
            "anonymize", str(data_csv), str(release_path),
            "--k", "10", "--target-column", "label",
        ])
        assert exit_code == 0
        release, header = read_records(release_path)
        assert header[-1] == "label"
        labels = release[:, -1]
        assert set(np.unique(labels).tolist()) <= {0.0, 1.0}
        original, __ = read_records(data_csv)
        original_counts = np.bincount(original[:, -1].astype(int))
        release_counts = np.bincount(labels.astype(int))
        np.testing.assert_array_equal(original_counts, release_counts)

    def test_missing_target_column_fails(self, tmp_path, data_csv,
                                         capsys):
        exit_code = main([
            "anonymize", str(data_csv), str(tmp_path / "r.csv"),
            "--k", "10", "--target-column", "nope",
        ])
        assert exit_code == 1
        assert "not found" in capsys.readouterr().err

    def test_mdav_strategy_accepted(self, tmp_path, data_csv):
        exit_code = main([
            "anonymize", str(data_csv), str(tmp_path / "r.csv"),
            "--k", "10", "--strategy", "mdav",
        ])
        assert exit_code == 0


class TestReport:
    def test_report_output(self, tmp_path, data_csv, capsys):
        release_path = tmp_path / "release.csv"
        main(["anonymize", str(data_csv), str(release_path), "--k", "10"])
        capsys.readouterr()
        exit_code = main([
            "report", str(data_csv), str(release_path),
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "covariance compatibility" in out
        assert "KS" in out

    def test_report_dimension_mismatch(self, tmp_path, data_csv, rng,
                                       capsys):
        other = tmp_path / "other.csv"
        write_records(other, rng.normal(size=(10, 2)))
        exit_code = main(["report", str(data_csv), str(other)])
        assert exit_code == 1
        assert "attribute counts" in capsys.readouterr().err


class TestCoarsen:
    def test_coarsen_model(self, tmp_path, data_csv, capsys):
        model_path = tmp_path / "model.json"
        coarse_path = tmp_path / "coarse.json"
        main(["condense", str(data_csv), str(model_path), "--k", "10"])
        exit_code = main([
            "coarsen", str(model_path), str(coarse_path), "--k", "30",
        ])
        assert exit_code == 0
        from repro.io.model_store import load_model

        coarse = load_model(coarse_path)
        assert (coarse.group_sizes >= 30).all()
        assert coarse.total_count == 150

    def test_coarsen_invalid_target(self, tmp_path, data_csv, capsys):
        model_path = tmp_path / "model.json"
        main(["condense", str(data_csv), str(model_path), "--k", "10"])
        exit_code = main([
            "coarsen", str(model_path), str(tmp_path / "c.json"),
            "--k", "5",
        ])
        assert exit_code == 1
        assert "below" in capsys.readouterr().err


class TestDurableCli:
    @pytest.fixture
    def wal_dir(self, tmp_path, data_csv):
        directory = tmp_path / "wal"
        exit_code = main([
            "condense", str(data_csv), str(tmp_path / "model.json"),
            "--k", "10", "--checkpoint-dir", str(directory),
            "--fsync-every", "8", "--checkpoint-every", "64",
        ])
        assert exit_code == 0
        return directory

    def test_recover_writes_model(self, tmp_path, wal_dir, capsys):
        out_path = tmp_path / "recovered.json"
        exit_code = main(["recover", str(wal_dir), str(out_path)])
        assert exit_code == 0
        assert json.loads(out_path.read_text())["k"] == 10
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "position 150" in out

    def test_recover_dry_run_writes_nothing(self, wal_dir, capsys):
        before = {
            path.name: path.read_bytes()
            for path in sorted(wal_dir.iterdir())
        }
        exit_code = main(["recover", str(wal_dir), "--dry-run"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "dry run: would recover" in out
        assert "no model written" in out
        after = {
            path.name: path.read_bytes()
            for path in sorted(wal_dir.iterdir())
        }
        assert after == before

    def test_recover_dry_run_matches_real_recovery(
        self, tmp_path, wal_dir, capsys
    ):
        main(["recover", str(wal_dir), "--dry-run"])
        preview = capsys.readouterr().out
        out_path = tmp_path / "recovered.json"
        main(["recover", str(wal_dir), str(out_path)])
        actual = capsys.readouterr().out
        # Identical summary lines modulo the dry-run prefix.
        assert preview.splitlines()[0].replace(
            "dry run: would recover", "recovered"
        ) == actual.splitlines()[0]

    def test_recover_dry_run_survives_torn_tail(self, wal_dir, capsys):
        segments = sorted(wal_dir.glob("wal-*.log"))
        tail = segments[-1]
        torn = tail.read_bytes()[:-9]
        tail.write_bytes(torn)
        exit_code = main(["recover", str(wal_dir), "--dry-run"])
        assert exit_code == 0
        assert tail.read_bytes() == torn  # observed, not repaired

    def test_recover_without_output_or_dry_run_errors(
        self, wal_dir, capsys
    ):
        exit_code = main(["recover", str(wal_dir)])
        assert exit_code == 2
        assert "output model path" in capsys.readouterr().err

    def test_wal_inspect_text_table(self, wal_dir, capsys):
        exit_code = main(["wal-inspect", str(wal_dir)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "seq" in out and "status" in out
        assert "bootstrap" in out
        assert "beyond the durable frontier" in out

    def test_wal_inspect_json_frames(self, wal_dir, capsys):
        exit_code = main(["wal-inspect", str(wal_dir), "--json"])
        assert exit_code == 0
        frames = json.loads(capsys.readouterr().out)
        assert frames[0]["seq"] == 1
        assert frames[0]["status"] == "ok"
        assert frames[0]["offset"] == 0
        assert {"segment", "length", "crc_ok", "kind"} <= set(frames[0])

    def test_wal_inspect_reports_torn_frames(self, wal_dir, capsys):
        tail = sorted(wal_dir.glob("wal-*.log"))[-1]
        tail.write_bytes(tail.read_bytes()[:-5])
        main(["wal-inspect", str(wal_dir), "--json"])
        frames = json.loads(capsys.readouterr().out)
        assert frames[-1]["status"] == "torn"
        assert frames[-1]["crc_ok"] is False

    def test_wal_inspect_missing_directory_errors(
        self, tmp_path, capsys
    ):
        exit_code = main(["wal-inspect", str(tmp_path / "absent")])
        assert exit_code == 1
        assert "no WAL segments" in capsys.readouterr().err


class TestAttack:
    def test_attack_output(self, data_csv, capsys):
        exit_code = main(["attack", str(data_csv), "--k", "10"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "record-linkage attack" in out
        assert "attribute-disclosure attack" in out
        assert "label" in out


class TestTelemetryFlags:
    def test_metrics_out_is_valid_prometheus(self, tmp_path, data_csv):
        metrics_path = tmp_path / "run.prom"
        exit_code = main([
            "anonymize", str(data_csv), str(tmp_path / "r.csv"),
            "--k", "10", "--metrics-out", str(metrics_path),
        ])
        assert exit_code == 0
        text = metrics_path.read_text()
        assert "# TYPE repro_condense_records_total counter" in text
        assert "repro_condense_records_total 150.0" in text
        assert 'repro_condense_group_size_bucket{le="+Inf"}' in text
        # Every non-comment line is "name{labels} value".
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name.startswith("repro_")
            float(value)

    def test_trace_out_is_json_lines(self, tmp_path, data_csv):
        from repro.telemetry import read_events

        trace_path = tmp_path / "run.jsonl"
        exit_code = main([
            "anonymize", str(data_csv), str(tmp_path / "r.csv"),
            "--k", "10", "--trace-out", str(trace_path),
        ])
        assert exit_code == 0
        events = read_events(trace_path)
        names = {e["name"] for e in events if e["type"] == "span"}
        assert "condense.create_groups" in names
        assert "generation.generate" in names
        assert events[-1]["type"] == "metrics"

    def test_telemetry_subcommand_summarizes(self, tmp_path, data_csv,
                                             capsys):
        trace_path = tmp_path / "run.jsonl"
        main([
            "anonymize", str(data_csv), str(tmp_path / "r.csv"),
            "--k", "10", "--trace-out", str(trace_path),
        ])
        capsys.readouterr()
        exit_code = main(["telemetry", str(trace_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "condense.create_groups" in out
        assert "condense.records" in out

    def test_telemetry_subcommand_missing_file(self, tmp_path, capsys):
        exit_code = main(["telemetry", str(tmp_path / "nope.jsonl")])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_pipeline_restored_after_run(self, tmp_path, data_csv):
        from repro import telemetry
        from repro.telemetry import NULL_PIPELINE

        main([
            "anonymize", str(data_csv), str(tmp_path / "r.csv"),
            "--k", "10", "--metrics-out", str(tmp_path / "m.prom"),
        ])
        assert telemetry.get_pipeline() is NULL_PIPELINE

    def test_no_flags_stays_on_null_pipeline(self, tmp_path, data_csv):
        from repro import telemetry
        from repro.telemetry import NULL_PIPELINE

        main([
            "anonymize", str(data_csv), str(tmp_path / "r.csv"),
            "--k", "10",
        ])
        assert telemetry.get_pipeline() is NULL_PIPELINE


class TestVerbosityFlags:
    def test_quiet_and_verbose_accepted_after_subcommand(self, tmp_path,
                                                         data_csv):
        assert main([
            "anonymize", str(data_csv), str(tmp_path / "r1.csv"),
            "--k", "10", "--quiet",
        ]) == 0
        assert main([
            "anonymize", str(data_csv), str(tmp_path / "r2.csv"),
            "--k", "10", "-vv",
        ]) == 0

    def test_quiet_and_verbose_are_exclusive(self, tmp_path, data_csv):
        with pytest.raises(SystemExit):
            main([
                "anonymize", str(data_csv), str(tmp_path / "r.csv"),
                "--k", "10", "-q", "-v",
            ])

    def test_verbose_logs_progress(self, tmp_path, data_csv, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro"):
            main([
                "anonymize", str(data_csv), str(tmp_path / "r.csv"),
                "--k", "10", "-v",
            ])
        assert any("150 records" in record.message
                   for record in caplog.records)

    def test_quiet_suppresses_info(self, tmp_path, data_csv, caplog):
        main([
            "anonymize", str(data_csv), str(tmp_path / "r.csv"),
            "--k", "10", "-q",
        ])
        assert not [record for record in caplog.records
                    if record.name == "repro"
                    and record.levelname == "INFO"]

"""Tests for repro.cli — the command-line pipeline."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.io.csv import read_records, write_records


@pytest.fixture
def data_csv(tmp_path, rng):
    data = rng.normal(size=(150, 3))
    labels = (data[:, 0] > 0).astype(float)
    path = tmp_path / "data.csv"
    write_records(
        path, np.column_stack([data, labels]),
        feature_names=["a", "b", "c", "label"],
    )
    return path


class TestCondenseGenerate:
    def test_condense_writes_model(self, tmp_path, data_csv, capsys):
        model_path = tmp_path / "model.json"
        exit_code = main([
            "condense", str(data_csv), str(model_path), "--k", "10",
        ])
        assert exit_code == 0
        payload = json.loads(model_path.read_text())
        assert payload["k"] == 10
        assert payload["metadata"] == {}
        out = capsys.readouterr().out
        assert "150 records" in out

    def test_generate_from_model(self, tmp_path, data_csv):
        model_path = tmp_path / "model.json"
        release_path = tmp_path / "release.csv"
        main(["condense", str(data_csv), str(model_path), "--k", "10"])
        exit_code = main([
            "generate", str(model_path), str(release_path),
        ])
        assert exit_code == 0
        release, header = read_records(release_path)
        assert release.shape == (150, 4)

    def test_generate_deterministic_under_seed(self, tmp_path, data_csv):
        model_path = tmp_path / "model.json"
        main(["condense", str(data_csv), str(model_path), "--k", "10"])
        first = tmp_path / "r1.csv"
        second = tmp_path / "r2.csv"
        main(["generate", str(model_path), str(first), "--seed", "3"])
        main(["generate", str(model_path), str(second), "--seed", "3"])
        a, __ = read_records(first)
        b, __ = read_records(second)
        np.testing.assert_array_equal(a, b)


class TestAnonymize:
    def test_one_step_anonymize(self, tmp_path, data_csv):
        release_path = tmp_path / "release.csv"
        exit_code = main([
            "anonymize", str(data_csv), str(release_path), "--k", "10",
        ])
        assert exit_code == 0
        release, header = read_records(release_path)
        assert release.shape == (150, 4)
        assert header == ["a", "b", "c", "label"]

    def test_classwise_anonymize_preserves_labels(self, tmp_path,
                                                  data_csv):
        release_path = tmp_path / "release.csv"
        exit_code = main([
            "anonymize", str(data_csv), str(release_path),
            "--k", "10", "--target-column", "label",
        ])
        assert exit_code == 0
        release, header = read_records(release_path)
        assert header[-1] == "label"
        labels = release[:, -1]
        assert set(np.unique(labels).tolist()) <= {0.0, 1.0}
        original, __ = read_records(data_csv)
        original_counts = np.bincount(original[:, -1].astype(int))
        release_counts = np.bincount(labels.astype(int))
        np.testing.assert_array_equal(original_counts, release_counts)

    def test_missing_target_column_fails(self, tmp_path, data_csv,
                                         capsys):
        exit_code = main([
            "anonymize", str(data_csv), str(tmp_path / "r.csv"),
            "--k", "10", "--target-column", "nope",
        ])
        assert exit_code == 1
        assert "not found" in capsys.readouterr().err

    def test_mdav_strategy_accepted(self, tmp_path, data_csv):
        exit_code = main([
            "anonymize", str(data_csv), str(tmp_path / "r.csv"),
            "--k", "10", "--strategy", "mdav",
        ])
        assert exit_code == 0


class TestReport:
    def test_report_output(self, tmp_path, data_csv, capsys):
        release_path = tmp_path / "release.csv"
        main(["anonymize", str(data_csv), str(release_path), "--k", "10"])
        capsys.readouterr()
        exit_code = main([
            "report", str(data_csv), str(release_path),
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "covariance compatibility" in out
        assert "KS" in out

    def test_report_dimension_mismatch(self, tmp_path, data_csv, rng,
                                       capsys):
        other = tmp_path / "other.csv"
        write_records(other, rng.normal(size=(10, 2)))
        exit_code = main(["report", str(data_csv), str(other)])
        assert exit_code == 1
        assert "attribute counts" in capsys.readouterr().err


class TestCoarsen:
    def test_coarsen_model(self, tmp_path, data_csv, capsys):
        model_path = tmp_path / "model.json"
        coarse_path = tmp_path / "coarse.json"
        main(["condense", str(data_csv), str(model_path), "--k", "10"])
        exit_code = main([
            "coarsen", str(model_path), str(coarse_path), "--k", "30",
        ])
        assert exit_code == 0
        from repro.io.model_store import load_model

        coarse = load_model(coarse_path)
        assert (coarse.group_sizes >= 30).all()
        assert coarse.total_count == 150

    def test_coarsen_invalid_target(self, tmp_path, data_csv, capsys):
        model_path = tmp_path / "model.json"
        main(["condense", str(data_csv), str(model_path), "--k", "10"])
        exit_code = main([
            "coarsen", str(model_path), str(tmp_path / "c.json"),
            "--k", "5",
        ])
        assert exit_code == 1
        assert "below" in capsys.readouterr().err


class TestAttack:
    def test_attack_output(self, data_csv, capsys):
        exit_code = main(["attack", str(data_csv), "--k", "10"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "record-linkage attack" in out
        assert "attribute-disclosure attack" in out
        assert "label" in out

"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def gaussian_data(rng):
    """A correlated Gaussian blob: 120 records in 4 dimensions."""
    covariance = np.array(
        [
            [2.0, 0.8, 0.3, 0.0],
            [0.8, 1.5, 0.5, 0.2],
            [0.3, 0.5, 1.0, 0.4],
            [0.0, 0.2, 0.4, 0.8],
        ]
    )
    mean = np.array([1.0, -2.0, 0.5, 3.0])
    return rng.multivariate_normal(mean, covariance, size=120)


@pytest.fixture
def labelled_blobs(rng):
    """Two separable classes of 60 records each in 3 dimensions."""
    class_a = rng.normal(loc=0.0, scale=1.0, size=(60, 3))
    class_b = rng.normal(loc=4.0, scale=1.0, size=(60, 3))
    data = np.vstack([class_a, class_b])
    labels = np.array([0] * 60 + [1] * 60)
    permuted = rng.permutation(120)
    return data[permuted], labels[permuted]

"""Shared fixtures and Hypothesis profiles for the test suite.

Hypothesis settings live here, not on individual tests: the ``default``
profile keeps local runs fast, while ``ci`` turns up the example count
and drops deadlines for thorough scheduled runs.  Select one with the
``HYPOTHESIS_PROFILE`` environment variable (CI exports
``HYPOTHESIS_PROFILE=ci``); tests themselves carry no ``@settings``
boilerplate.
"""

import os

import numpy as np
import pytest
from hypothesis import settings

settings.register_profile("default", max_examples=25, deadline=None)
settings.register_profile("ci", max_examples=100, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng():
    """A deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def gaussian_data(rng):
    """A correlated Gaussian blob: 120 records in 4 dimensions."""
    covariance = np.array(
        [
            [2.0, 0.8, 0.3, 0.0],
            [0.8, 1.5, 0.5, 0.2],
            [0.3, 0.5, 1.0, 0.4],
            [0.0, 0.2, 0.4, 0.8],
        ]
    )
    mean = np.array([1.0, -2.0, 0.5, 3.0])
    return rng.multivariate_normal(mean, covariance, size=120)


@pytest.fixture
def labelled_blobs(rng):
    """Two separable classes of 60 records each in 3 dimensions."""
    class_a = rng.normal(loc=0.0, scale=1.0, size=(60, 3))
    class_b = rng.normal(loc=4.0, scale=1.0, size=(60, 3))
    data = np.vstack([class_a, class_b])
    labels = np.array([0] * 60 + [1] * 60)
    permuted = rng.permutation(120)
    return data[permuted], labels[permuted]

"""Tests for repro.linalg.rng."""

import numpy as np
import pytest

from repro.linalg.rng import (
    bootstrap_indices,
    check_random_state,
    derive_seed,
    permutation,
    rng_from_seed_sequence,
    sample_without_replacement,
    seeds_for,
    spawn_rngs,
    spawn_seed_sequences,
)


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = check_random_state(7).integers(0, 1000, size=10)
        b = check_random_state(7).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(7).integers(0, 10**9)
        b = check_random_state(8).integers(0, 10**9)
        assert a != b

    def test_generator_passes_through(self):
        generator = np.random.default_rng(3)
        assert check_random_state(generator) is generator

    def test_numpy_integer_seed_accepted(self):
        seed = np.int64(11)
        generator = check_random_state(seed)
        assert isinstance(generator, np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_random_state(-1)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="random_state"):
            check_random_state("seed")


class TestDeriveSeed:
    def test_is_deterministic_from_seeded_parent(self):
        a = derive_seed(check_random_state(5))
        b = derive_seed(check_random_state(5))
        assert a == b

    def test_in_63_bit_range(self):
        seed = derive_seed(check_random_state(5))
        assert 0 <= seed < 2**63


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**9, size=5)
        b = children[1].integers(0, 10**9, size=5)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(9, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(9, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count_allowed(self):
        assert spawn_rngs(0, 0) == []


class TestSpawnSeedSequences:
    def test_count_and_type(self):
        sequences = spawn_seed_sequences(0, 3)
        assert len(sequences) == 3
        assert all(
            isinstance(s, np.random.SeedSequence) for s in sequences
        )

    def test_reproducible_for_fixed_seed(self):
        first = [
            rng_from_seed_sequence(s).integers(0, 10**9)
            for s in spawn_seed_sequences(9, 3)
        ]
        second = [
            rng_from_seed_sequence(s).integers(0, 10**9)
            for s in spawn_seed_sequences(9, 3)
        ]
        assert first == second

    def test_children_are_independent_streams(self):
        first, second = spawn_seed_sequences(0, 2)
        a = rng_from_seed_sequence(first).integers(0, 10**9, size=5)
        b = rng_from_seed_sequence(second).integers(0, 10**9, size=5)
        assert not np.array_equal(a, b)

    def test_sequences_survive_pickling_boundary(self):
        # The parallel engine ships sequences to process-pool workers;
        # a spawned child must yield the same stream on either side.
        import copy

        (sequence,) = spawn_seed_sequences(4, 1)
        local = rng_from_seed_sequence(sequence).integers(0, 10**9)
        remote = rng_from_seed_sequence(
            copy.deepcopy(sequence)
        ).integers(0, 10**9)
        assert local == remote

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)

    def test_non_sequence_rejected(self):
        with pytest.raises(TypeError, match="SeedSequence"):
            rng_from_seed_sequence(7)


class TestSamplingHelpers:
    def test_permutation_covers_range(self, rng):
        perm = permutation(rng, 10)
        assert sorted(perm.tolist()) == list(range(10))

    def test_permutation_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            permutation(rng, -1)

    def test_sample_without_replacement_distinct(self, rng):
        sample = sample_without_replacement(rng, 100, 20)
        assert len(set(sample.tolist())) == 20

    def test_sample_without_replacement_too_many(self, rng):
        with pytest.raises(ValueError):
            sample_without_replacement(rng, 5, 6)

    def test_bootstrap_indices_shape_and_range(self, rng):
        indices = bootstrap_indices(rng, 50, size=30)
        assert indices.shape == (30,)
        assert indices.min() >= 0 and indices.max() < 50

    def test_bootstrap_default_size(self, rng):
        assert bootstrap_indices(rng, 17).shape == (17,)

    def test_bootstrap_empty_population_rejected(self, rng):
        with pytest.raises(ValueError):
            bootstrap_indices(rng, 0)

    def test_seeds_for_labels(self):
        seeds = seeds_for(["a", "b"], 3)
        assert set(seeds) == {"a", "b"}
        assert seeds == seeds_for(["a", "b"], 3)

"""Tests for repro.linalg.accumulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.accumulators import MomentAccumulator, WelfordAccumulator


def records_for(seed, n=40, d=3, scale=1.0, offset=0.0):
    rng = np.random.default_rng(seed)
    return offset + scale * rng.normal(size=(n, d))


class TestMomentAccumulator:
    def test_mean_matches_numpy(self):
        records = records_for(0)
        accumulator = MomentAccumulator(3)
        accumulator.add_batch(records)
        np.testing.assert_allclose(
            accumulator.mean, records.mean(axis=0), atol=1e-10
        )

    def test_covariance_matches_numpy(self):
        records = records_for(1)
        accumulator = MomentAccumulator(3)
        accumulator.add_batch(records)
        np.testing.assert_allclose(
            accumulator.covariance, np.cov(records.T, bias=True), atol=1e-10
        )

    def test_single_adds_equal_batch(self):
        records = records_for(2)
        one_by_one = MomentAccumulator(3)
        for record in records:
            one_by_one.add(record)
        batched = MomentAccumulator(3)
        batched.add_batch(records)
        np.testing.assert_allclose(
            one_by_one.first_order, batched.first_order, atol=1e-9
        )
        np.testing.assert_allclose(
            one_by_one.second_order, batched.second_order, atol=1e-9
        )
        assert one_by_one.count == batched.count

    def test_remove_is_inverse_of_add(self):
        records = records_for(3)
        accumulator = MomentAccumulator(3)
        accumulator.add_batch(records)
        extra = np.array([1.0, 2.0, 3.0])
        accumulator.add(extra)
        accumulator.remove(extra)
        np.testing.assert_allclose(
            accumulator.mean, records.mean(axis=0), atol=1e-9
        )
        assert accumulator.count == records.shape[0]

    def test_remove_from_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            MomentAccumulator(2).remove(np.zeros(2))

    def test_merge_equals_joint(self):
        left, right = records_for(4, n=25), records_for(5, n=35)
        a = MomentAccumulator(3)
        a.add_batch(left)
        b = MomentAccumulator(3)
        b.add_batch(right)
        a.merge(b)
        joint = np.vstack([left, right])
        np.testing.assert_allclose(a.mean, joint.mean(axis=0), atol=1e-10)
        np.testing.assert_allclose(
            a.covariance, np.cov(joint.T, bias=True), atol=1e-9
        )

    def test_merge_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimensionality"):
            MomentAccumulator(2).merge(MomentAccumulator(3))

    def test_empty_mean_undefined(self):
        with pytest.raises(ValueError):
            __ = MomentAccumulator(2).mean

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            MomentAccumulator(2).add(np.zeros(3))

    def test_copy_is_independent(self):
        accumulator = MomentAccumulator(2)
        accumulator.add(np.array([1.0, 2.0]))
        clone = accumulator.copy()
        clone.add(np.array([5.0, 5.0]))
        assert accumulator.count == 1
        assert clone.count == 2

    def test_len(self):
        accumulator = MomentAccumulator(2)
        accumulator.add_batch(np.zeros((7, 2)))
        assert len(accumulator) == 7

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            MomentAccumulator(0)


class TestWelfordAccumulator:
    def test_matches_numpy(self):
        records = records_for(6)
        accumulator = WelfordAccumulator(3)
        for record in records:
            accumulator.add(record)
        np.testing.assert_allclose(
            accumulator.mean, records.mean(axis=0), atol=1e-10
        )
        np.testing.assert_allclose(
            accumulator.covariance, np.cov(records.T, bias=True), atol=1e-10
        )

    def test_batch_matches_single(self):
        records = records_for(7)
        singles = WelfordAccumulator(3)
        for record in records:
            singles.add(record)
        batches = WelfordAccumulator(3)
        batches.add_batch(records[:15])
        batches.add_batch(records[15:])
        np.testing.assert_allclose(singles.mean, batches.mean, atol=1e-10)
        np.testing.assert_allclose(
            singles.covariance, batches.covariance, atol=1e-10
        )

    def test_empty_batch_noop(self):
        accumulator = WelfordAccumulator(3)
        accumulator.add_batch(np.empty((0, 3)))
        assert len(accumulator) == 0

    def test_more_stable_than_raw_sums_at_large_offset(self):
        # With mean >> stddev the raw-sum covariance loses precision;
        # Welford should stay closer to the true covariance.
        records = records_for(8, n=2000, d=2, scale=1e-3, offset=1e6)
        truth = np.cov(records.T, bias=True)
        raw = MomentAccumulator(2)
        raw.add_batch(records)
        stable = WelfordAccumulator(2)
        stable.add_batch(records)
        raw_error = np.abs(raw.covariance - truth).max()
        stable_error = np.abs(stable.covariance - truth).max()
        assert stable_error <= raw_error + 1e-15

    def test_empty_covariance_undefined(self):
        with pytest.raises(ValueError):
            __ = WelfordAccumulator(2).covariance


class TestAgreementProperty:
    @given(seed=st.integers(0, 500), n=st.integers(1, 50),
           d=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_raw_and_welford_agree_on_moderate_data(self, seed, n, d):
        records = np.random.default_rng(seed).normal(size=(n, d))
        raw = MomentAccumulator(d)
        raw.add_batch(records)
        stable = WelfordAccumulator(d)
        stable.add_batch(records)
        np.testing.assert_allclose(raw.mean, stable.mean, atol=1e-8)
        np.testing.assert_allclose(
            raw.covariance, stable.covariance, atol=1e-8
        )

"""Tests for repro.linalg.symmetric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.symmetric import (
    correlation_from_covariance,
    covariance_from_sums,
    is_positive_semidefinite,
    nearest_psd,
    sorted_eigh,
    sums_from_covariance,
    symmetrize,
)

finite_floats = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


def random_records(seed, n=30, d=4):
    return np.random.default_rng(seed).normal(size=(n, d))


class TestSymmetrize:
    def test_output_is_symmetric(self):
        matrix = np.arange(9, dtype=float).reshape(3, 3)
        sym = symmetrize(matrix)
        np.testing.assert_allclose(sym, sym.T)

    def test_symmetric_input_unchanged(self):
        matrix = np.array([[2.0, 1.0], [1.0, 3.0]])
        np.testing.assert_allclose(symmetrize(matrix), matrix)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            symmetrize(np.ones((2, 3)))


class TestSortedEigh:
    def test_eigenvalues_decreasing(self):
        matrix = np.diag([1.0, 5.0, 3.0])
        eigenvalues, __ = sorted_eigh(matrix)
        np.testing.assert_allclose(eigenvalues, [5.0, 3.0, 1.0])

    def test_reconstruction(self):
        records = random_records(0)
        covariance = np.cov(records.T, bias=True)
        eigenvalues, eigenvectors = sorted_eigh(covariance)
        rebuilt = (eigenvectors * eigenvalues) @ eigenvectors.T
        np.testing.assert_allclose(rebuilt, covariance, atol=1e-10)

    def test_eigenvectors_orthonormal(self):
        records = random_records(1)
        covariance = np.cov(records.T, bias=True)
        __, eigenvectors = sorted_eigh(covariance)
        np.testing.assert_allclose(
            eigenvectors.T @ eigenvectors, np.eye(4), atol=1e-10
        )

    def test_clips_tiny_negative_eigenvalues(self):
        # Rank-1 matrix plus a tiny asymmetric perturbation.
        v = np.array([1.0, 2.0, 3.0])
        matrix = np.outer(v, v)
        matrix[0, 1] += 1e-13
        eigenvalues, __ = sorted_eigh(matrix)
        assert (eigenvalues >= 0).all()

    def test_rejects_significantly_negative(self):
        with pytest.raises(ValueError, match="not positive semidefinite"):
            sorted_eigh(np.diag([1.0, -1.0]))

    def test_no_clip_keeps_negative(self):
        eigenvalues, __ = sorted_eigh(np.diag([1.0, -1.0]), clip=False)
        assert eigenvalues[-1] == pytest.approx(-1.0)


class TestPsdHelpers:
    def test_is_psd_true(self):
        records = random_records(2)
        assert is_positive_semidefinite(np.cov(records.T, bias=True))

    def test_is_psd_false(self):
        assert not is_positive_semidefinite(np.diag([1.0, -0.5]))

    def test_nearest_psd_is_psd(self):
        matrix = np.diag([2.0, -0.5, 1.0])
        projected = nearest_psd(matrix)
        assert is_positive_semidefinite(projected)

    def test_nearest_psd_identity_on_psd(self):
        records = random_records(3)
        covariance = np.cov(records.T, bias=True)
        np.testing.assert_allclose(
            nearest_psd(covariance), covariance, atol=1e-10
        )


class TestCovarianceFromSums:
    def test_matches_numpy_population_covariance(self):
        records = random_records(4)
        first = records.sum(axis=0)
        second = records.T @ records
        covariance = covariance_from_sums(first, second, records.shape[0])
        np.testing.assert_allclose(
            covariance, np.cov(records.T, bias=True), atol=1e-10
        )

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            covariance_from_sums(np.zeros(2), np.zeros((2, 2)), 0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            covariance_from_sums(np.zeros(2), np.zeros((3, 3)), 5)

    @given(seed=st.integers(0, 1000), n=st.integers(2, 60),
           d=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_numpy(self, seed, n, d):
        records = np.random.default_rng(seed).normal(size=(n, d))
        covariance = covariance_from_sums(
            records.sum(axis=0), records.T @ records, n
        )
        np.testing.assert_allclose(
            covariance, np.cov(records.T, bias=True).reshape(d, d),
            atol=1e-8,
        )


class TestSumsRoundTrip:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_round_trip(self, seed):
        records = random_records(seed)
        n = records.shape[0]
        mean = records.mean(axis=0)
        covariance = np.cov(records.T, bias=True)
        first, second = sums_from_covariance(mean, covariance, n)
        np.testing.assert_allclose(first, records.sum(axis=0), atol=1e-8)
        np.testing.assert_allclose(second, records.T @ records, atol=1e-6)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            sums_from_covariance(np.zeros(2), np.eye(2), 0)


class TestCorrelationFromCovariance:
    def test_unit_diagonal(self):
        records = random_records(5)
        correlation = correlation_from_covariance(
            np.cov(records.T, bias=True)
        )
        np.testing.assert_allclose(np.diag(correlation), 1.0)

    def test_bounded(self):
        records = random_records(6)
        correlation = correlation_from_covariance(
            np.cov(records.T, bias=True)
        )
        assert (np.abs(correlation) <= 1.0 + 1e-12).all()

    def test_zero_variance_column(self):
        covariance = np.array([[1.0, 0.0], [0.0, 0.0]])
        correlation = correlation_from_covariance(covariance)
        assert correlation[0, 1] == 0.0
        assert correlation[1, 1] == pytest.approx(1.0)

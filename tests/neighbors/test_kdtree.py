"""Tests for repro.neighbors.kdtree — exactness against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neighbors.brute import BruteForceIndex
from repro.neighbors.kdtree import KDTreeIndex


def assert_same_neighbour_distances(points, queries, k, leaf_size=4):
    """The k-d tree must return the same neighbour distances as brute
    force (indices may differ on exact ties; distances may not)."""
    tree = KDTreeIndex(points, leaf_size=leaf_size)
    brute = BruteForceIndex(points)
    tree_d, __ = tree.query(queries, k=k)
    brute_d, __ = brute.query(queries, k=k)
    # The brute index uses the expanded quadratic form, which carries
    # ~sqrt(eps) absolute error near zero; tolerate that, not more.
    np.testing.assert_allclose(tree_d, brute_d, atol=1e-6)


class TestKDTreeExactness:
    def test_random_gaussian(self, rng):
        points = rng.normal(size=(200, 5))
        queries = rng.normal(size=(20, 5))
        assert_same_neighbour_distances(points, queries, k=7)

    def test_k_equals_one(self, rng):
        points = rng.normal(size=(50, 3))
        assert_same_neighbour_distances(points, points, k=1)

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(12, 2))
        queries = rng.normal(size=(3, 2))
        assert_same_neighbour_distances(points, queries, k=12)

    def test_duplicated_points(self, rng):
        base = rng.normal(size=(10, 3))
        points = np.vstack([base, base, base])
        queries = rng.normal(size=(5, 3))
        assert_same_neighbour_distances(points, queries, k=8)

    def test_all_identical_points(self):
        points = np.ones((30, 2))
        queries = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert_same_neighbour_distances(points, queries, k=5)

    def test_collinear_points(self):
        points = np.column_stack([np.linspace(0, 1, 40), np.zeros(40)])
        queries = np.array([[0.5, 0.2], [-1.0, 0.0]])
        assert_same_neighbour_distances(points, queries, k=6)

    def test_many_equal_median_values(self, rng):
        # Columns with heavy value repetition exercise the degenerate
        # median-split guard.
        points = rng.integers(0, 3, size=(100, 4)).astype(float)
        queries = rng.normal(size=(10, 4))
        assert_same_neighbour_distances(points, queries, k=9)

    def test_single_point(self):
        points = np.array([[3.0, 4.0]])
        tree = KDTreeIndex(points)
        distances, indices = tree.query(np.array([0.0, 0.0]), k=1)
        assert indices[0] == 0
        assert distances[0] == pytest.approx(5.0)

    def test_leaf_size_one(self, rng):
        points = rng.normal(size=(60, 3))
        queries = rng.normal(size=(8, 3))
        assert_same_neighbour_distances(points, queries, k=4, leaf_size=1)

    @given(
        seed=st.integers(0, 1000),
        n=st.integers(1, 80),
        d=st.integers(1, 5),
        k=st.integers(1, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_brute_force(self, seed, n, d, k):
        k = min(k, n)
        generator = np.random.default_rng(seed)
        points = generator.normal(size=(n, d))
        queries = generator.normal(size=(4, d))
        assert_same_neighbour_distances(points, queries, k=k)


class TestKDTreeValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            KDTreeIndex(np.empty((0, 2)))

    def test_bad_leaf_size(self, rng):
        with pytest.raises(ValueError, match="leaf_size"):
            KDTreeIndex(rng.normal(size=(5, 2)), leaf_size=0)

    def test_invalid_k(self, rng):
        tree = KDTreeIndex(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            tree.query(np.zeros(2), k=0)
        with pytest.raises(ValueError):
            tree.query(np.zeros(2), k=6)

    def test_dimension_mismatch(self, rng):
        tree = KDTreeIndex(rng.normal(size=(5, 3)))
        with pytest.raises(ValueError, match="dimensionality"):
            tree.query(np.zeros(2), k=1)

    def test_properties(self, rng):
        tree = KDTreeIndex(rng.normal(size=(9, 4)))
        assert tree.n_points == 9
        assert tree.n_features == 4

    def test_points_copied(self, rng):
        original = rng.normal(size=(20, 2))
        tree = KDTreeIndex(original)
        nearest_before, __ = tree.query(original[3], k=1)
        original[:] = 100.0
        nearest_after, __ = tree.query(np.full(2, 100.0), k=1)
        assert nearest_after[0] > 1.0  # still indexes the old points
        assert nearest_before[0] == pytest.approx(0.0, abs=1e-9)


class TestKDTreeRadiusQuery:
    def test_matches_brute_force(self, rng):
        points = rng.normal(size=(150, 3))
        tree = KDTreeIndex(points, leaf_size=8)
        brute = BruteForceIndex(points)
        for query in rng.normal(size=(10, 3)):
            for radius in (0.1, 0.5, 1.5, 5.0):
                tree_hits = tree.query_radius(query, radius)
                brute_hits = np.sort(brute.query_radius(query, radius))
                np.testing.assert_array_equal(tree_hits, brute_hits)

    def test_zero_radius(self, rng):
        points = rng.normal(size=(30, 2))
        tree = KDTreeIndex(points)
        hits = tree.query_radius(points[7], 0.0)
        assert 7 in hits.tolist()

    def test_negative_radius_rejected(self, rng):
        tree = KDTreeIndex(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            tree.query_radius(np.zeros(2), -1.0)

    def test_shape_checked(self, rng):
        tree = KDTreeIndex(rng.normal(size=(5, 3)))
        with pytest.raises(ValueError, match="shape"):
            tree.query_radius(np.zeros(2), 1.0)

"""Tests for repro.neighbors.knn."""

import numpy as np
import pytest

from repro.neighbors.knn import KNeighborsClassifier, KNeighborsRegressor


class TestKNeighborsClassifier:
    def test_perfect_on_training_data_with_k1(self, labelled_blobs):
        data, labels = labelled_blobs
        classifier = KNeighborsClassifier(n_neighbors=1).fit(data, labels)
        assert classifier.score(data, labels) == pytest.approx(1.0)

    def test_separable_classes(self, labelled_blobs):
        data, labels = labelled_blobs
        classifier = KNeighborsClassifier(n_neighbors=3).fit(
            data[:100], labels[:100]
        )
        assert classifier.score(data[100:], labels[100:]) >= 0.9

    def test_kd_tree_agrees_with_brute(self, labelled_blobs):
        data, labels = labelled_blobs
        brute = KNeighborsClassifier(n_neighbors=3, algorithm="brute")
        tree = KNeighborsClassifier(n_neighbors=3, algorithm="kd_tree")
        queries = data[:20] + 0.01
        np.testing.assert_array_equal(
            brute.fit(data, labels).predict(queries),
            tree.fit(data, labels).predict(queries),
        )

    def test_string_labels(self):
        data = np.array([[0.0], [0.1], [5.0], [5.1]])
        labels = np.array(["cat", "cat", "dog", "dog"])
        classifier = KNeighborsClassifier(n_neighbors=1).fit(data, labels)
        assert classifier.predict(np.array([[0.05]]))[0] == "cat"
        assert classifier.predict(np.array([[4.9]]))[0] == "dog"

    def test_predict_proba_sums_to_one(self, labelled_blobs):
        data, labels = labelled_blobs
        classifier = KNeighborsClassifier(n_neighbors=5).fit(data, labels)
        probabilities = classifier.predict_proba(data[:10])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_predict_proba_matches_prediction(self, labelled_blobs):
        data, labels = labelled_blobs
        classifier = KNeighborsClassifier(n_neighbors=5).fit(data, labels)
        probabilities = classifier.predict_proba(data[:10])
        predictions = classifier.predict(data[:10])
        np.testing.assert_array_equal(
            classifier.classes_[np.argmax(probabilities, axis=1)],
            predictions,
        )

    def test_single_query(self, labelled_blobs):
        data, labels = labelled_blobs
        classifier = KNeighborsClassifier(n_neighbors=1).fit(data, labels)
        assert classifier.predict(data[0]).shape == (1,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            KNeighborsClassifier().predict(np.zeros((1, 2)))

    def test_bad_n_neighbors(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)

    def test_too_few_training_records(self):
        with pytest.raises(ValueError, match="n_neighbors"):
            KNeighborsClassifier(n_neighbors=5).fit(
                np.zeros((3, 2)), np.array([0, 1, 0])
            )

    def test_label_shape_mismatch(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier().fit(np.zeros((4, 2)), np.zeros(3))

    def test_unknown_algorithm(self):
        classifier = KNeighborsClassifier(algorithm="ball_tree")
        with pytest.raises(ValueError, match="unknown algorithm"):
            classifier.fit(np.zeros((3, 2)), np.array([0, 1, 0]))


class TestKNeighborsRegressor:
    def test_exact_on_training_with_k1(self, rng):
        data = rng.normal(size=(30, 2))
        targets = rng.normal(size=30)
        regressor = KNeighborsRegressor(n_neighbors=1).fit(data, targets)
        np.testing.assert_allclose(
            regressor.predict(data), targets, atol=1e-9
        )

    def test_mean_of_neighbours(self):
        data = np.array([[0.0], [1.0], [10.0]])
        targets = np.array([2.0, 4.0, 100.0])
        regressor = KNeighborsRegressor(n_neighbors=2).fit(data, targets)
        assert regressor.predict(np.array([[0.4]]))[0] == pytest.approx(3.0)

    def test_tolerance_score(self):
        data = np.array([[0.0], [1.0], [2.0]])
        targets = np.array([0.0, 1.0, 2.0])
        regressor = KNeighborsRegressor(n_neighbors=1).fit(data, targets)
        queries = np.array([[0.1], [1.1], [2.1]])
        true = np.array([0.0, 1.0, 10.0])
        assert regressor.score(queries, true, tol=1.0) == pytest.approx(
            2.0 / 3.0
        )

    def test_smooth_function_recovery(self, rng):
        data = np.sort(rng.uniform(0, 10, size=(200, 1)), axis=0)
        targets = np.sin(data[:, 0])
        regressor = KNeighborsRegressor(n_neighbors=5).fit(data, targets)
        queries = rng.uniform(1, 9, size=(50, 1))
        predictions = regressor.predict(queries)
        errors = np.abs(predictions - np.sin(queries[:, 0]))
        assert errors.mean() < 0.1

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            KNeighborsRegressor().predict(np.zeros((1, 2)))

    def test_target_shape_mismatch(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor().fit(np.zeros((4, 2)), np.zeros(5))


class TestLshBackend:
    def test_lsh_classifier_close_to_exact(self, labelled_blobs):
        data, labels = labelled_blobs
        exact = KNeighborsClassifier(n_neighbors=3, algorithm="brute")
        approximate = KNeighborsClassifier(n_neighbors=3,
                                           algorithm="lsh")
        exact.fit(data[:100], labels[:100])
        approximate.fit(data[:100], labels[:100])
        exact_accuracy = exact.score(data[100:], labels[100:])
        approx_accuracy = approximate.score(data[100:], labels[100:])
        assert approx_accuracy >= exact_accuracy - 0.1

    def test_lsh_regressor_runs(self, rng):
        data = rng.normal(size=(200, 3))
        targets = data[:, 0]
        regressor = KNeighborsRegressor(
            n_neighbors=3, algorithm="lsh"
        ).fit(data, targets)
        predictions = regressor.predict(data[:20])
        assert predictions.shape == (20,)
        assert np.abs(predictions - targets[:20]).mean() < 1.0

"""Tests for repro.neighbors.lsh."""

import numpy as np
import pytest

from repro.neighbors.brute import BruteForceIndex
from repro.neighbors.lsh import LSHIndex


class TestLSHIndex:
    def test_contract_shapes(self, rng):
        points = rng.normal(size=(200, 8))
        index = LSHIndex(points, random_state=0)
        distances, indices = index.query(rng.normal(size=(5, 8)), k=3)
        assert distances.shape == (5, 3)
        assert indices.shape == (5, 3)
        assert (np.diff(distances, axis=1) >= -1e-12).all()

    def test_single_query(self, rng):
        points = rng.normal(size=(50, 4))
        index = LSHIndex(points, random_state=0)
        distances, indices = index.query(points[3], k=1)
        assert distances.shape == (1,)
        # The query point itself hashes into its own bucket.
        assert indices[0] == 3

    def test_high_recall_on_clustered_data(self, rng):
        # Queries near cluster centres should recover most of their
        # exact neighbours.
        points = np.vstack([
            rng.normal(loc=offset, scale=0.5, size=(150, 6))
            for offset in (0.0, 20.0)
        ])
        queries = points[rng.choice(300, size=30, replace=False)]
        exact = BruteForceIndex(points)
        __, exact_indices = exact.query(queries, k=5)
        index = LSHIndex(points, n_tables=12, n_bits=6, random_state=0)
        recall = index.recall_at_k(queries, 5, exact_indices)
        assert recall > 0.8

    def test_more_tables_raise_recall(self, rng):
        points = rng.normal(size=(400, 10))
        queries = rng.normal(size=(30, 10))
        exact = BruteForceIndex(points)
        __, exact_indices = exact.query(queries, k=5)
        recalls = []
        for n_tables in (1, 16):
            index = LSHIndex(
                points, n_tables=n_tables, n_bits=8, random_state=0
            )
            recalls.append(
                index.recall_at_k(queries, 5, exact_indices)
            )
        assert recalls[1] >= recalls[0]

    def test_small_candidate_set_falls_back_to_exact(self, rng):
        # With very many bits, buckets are tiny; the top-up guarantees
        # k results that then match brute force exactly.
        points = rng.normal(size=(60, 3))
        index = LSHIndex(points, n_tables=1, n_bits=30, random_state=0)
        queries = rng.normal(size=(5, 3))
        distances, __ = index.query(queries, k=10)
        exact_distances, __ = BruteForceIndex(points).query(queries, k=10)
        np.testing.assert_allclose(distances, exact_distances, atol=1e-6)

    def test_approximate_distances_never_beat_exact(self, rng):
        points = rng.normal(size=(300, 5))
        queries = rng.normal(size=(20, 5))
        index = LSHIndex(points, n_tables=4, n_bits=10, random_state=0)
        approximate, __ = index.query(queries, k=3)
        exact, __ = BruteForceIndex(points).query(queries, k=3)
        assert (approximate + 1e-9 >= exact).all()

    def test_validation(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            LSHIndex(np.empty((0, 2)))
        with pytest.raises(ValueError):
            LSHIndex(points, n_tables=0)
        with pytest.raises(ValueError):
            LSHIndex(points, n_bits=0)
        index = LSHIndex(points, random_state=0)
        with pytest.raises(ValueError):
            index.query(np.zeros(3), k=1)
        with pytest.raises(ValueError):
            index.query(np.zeros(2), k=11)

    def test_points_copied(self, rng):
        original = rng.normal(size=(30, 2))
        index = LSHIndex(original, random_state=0)
        original[:] = 1e6
        distances, __ = index.query(np.zeros(2), k=1)
        assert distances[0] < 100.0

"""Index-invariance tests for :class:`repro.neighbors.CentroidIndex`.

The maintained centroid index is a pure accelerator: at every point of
a churning ingest/split/merge/remove workload its ``nearest`` answer
must equal the brute-force argmin (lowest id on ties), including right
after a lazy rebuild and right after an invalidation.  The tests drive
both the index directly (synthetic churn against a mutable centroid
matrix) and the full maintainer (real splits and merges).
"""

import numpy as np
import pytest

from repro.core.dynamic import DynamicGroupMaintainer
from repro.neighbors.brute import pairwise_distances
from repro.neighbors.centroids import CentroidIndex
from repro.neighbors.kdtree import KDTreeIndex


def brute_nearest(record, centroids):
    distances = pairwise_distances(
        record[None, :], centroids, squared=True
    )[0]
    return int(np.argmin(distances))


class TestKDTreeMask:
    def test_masked_query_matches_masked_brute_force(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(200, 3))
        tree = KDTreeIndex(points, leaf_size=4)
        for seed in range(30):
            local = np.random.default_rng(seed)
            mask = local.random(200) < 0.6
            if not mask.any():
                mask[0] = True
            query = local.normal(size=3)
            __, indices = tree.query(query, k=1, mask=mask)
            eligible = np.flatnonzero(mask)
            distances = pairwise_distances(
                query[None, :], points[eligible], squared=True
            )[0]
            assert int(indices[0]) == int(eligible[np.argmin(distances)])

    def test_mask_validates_shape_and_k(self):
        points = np.random.default_rng(1).normal(size=(20, 2))
        tree = KDTreeIndex(points)
        with pytest.raises(ValueError, match="mask"):
            tree.query(points[0], k=1, mask=np.ones(5, dtype=bool))
        sparse = np.zeros(20, dtype=bool)
        sparse[3] = True
        with pytest.raises(ValueError, match="k must be"):
            tree.query(points[0], k=2, mask=sparse)
        __, indices = tree.query(points[0], k=1, mask=sparse)
        assert int(indices[0]) == 3


class TestSyntheticChurn:
    def test_randomized_churn_matches_brute_at_every_step(self):
        # Tiny thresholds so rebuilds, overlays, and invalidations all
        # happen many times within a few hundred steps.
        rng = np.random.default_rng(42)
        index = CentroidIndex(min_index_size=8, staleness=0.2,
                              min_stale=2, leaf_size=2)
        centroids = rng.normal(size=(12, 3))
        for step in range(400):
            action = rng.random()
            if action < 0.35 and centroids.shape[0] > 4:
                # Nudge one centroid (an absorb).
                target = int(rng.integers(centroids.shape[0]))
                centroids[target] += rng.normal(scale=0.3, size=3)
                index.mark_dirty(target)
            elif action < 0.55:
                # Append one centroid (a split).
                centroids = np.vstack(
                    [centroids, rng.normal(size=(1, 3))]
                )
            elif action < 0.65 and centroids.shape[0] > 6:
                # Pop one centroid (a merge renumbers ids).
                victim = int(rng.integers(centroids.shape[0]))
                centroids = np.delete(centroids, victim, axis=0)
                index.invalidate()
            query = rng.normal(size=3)
            got = index.nearest(query, centroids)
            assert got == brute_nearest(query, centroids), step

    def test_every_snapshot_entry_dirty_still_exact(self):
        rng = np.random.default_rng(7)
        index = CentroidIndex(min_index_size=4, staleness=1.0,
                              min_stale=1_000_000)
        centroids = rng.normal(size=(10, 2))
        index.nearest(rng.normal(size=2), centroids)
        assert index.indexed
        for target in range(10):
            centroids[target] += rng.normal(scale=0.5, size=2)
            index.mark_dirty(target)
            query = rng.normal(size=2)
            assert index.nearest(query, centroids) == brute_nearest(
                query, centroids
            )

    def test_tie_breaks_toward_lowest_id(self):
        centroids = np.array(
            [[1.0, 0.0], [0.0, 1.0], [1.0, 0.0], [0.0, 1.0]]
        )
        index = CentroidIndex(min_index_size=2)
        query = np.array([0.5, 0.5])
        assert index.nearest(query, centroids) == 0
        # Same after a rebuild with an overlay over the duplicates.
        index.mark_dirty(2)
        assert index.nearest(query, centroids) == 0

    def test_brute_below_min_index_size(self):
        rng = np.random.default_rng(3)
        index = CentroidIndex(min_index_size=64)
        centroids = rng.normal(size=(20, 3))
        query = rng.normal(size=3)
        assert index.nearest(query, centroids) == brute_nearest(
            query, centroids
        )
        assert not index.indexed

    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="min_index_size"):
            CentroidIndex(min_index_size=1)
        with pytest.raises(ValueError, match="staleness"):
            CentroidIndex(staleness=0.0)


class TestMaintainerChurn:
    def test_maintainer_routing_matches_brute_under_churn(self):
        # Real workload: enough groups that the tree engages, with
        # ingestion (dirty marks), splits (appends), and removes that
        # trigger merges (invalidations).  The maintainer consults the
        # index for every routing decision, so checking its answer
        # against brute before each operation covers the full lifecycle.
        rng = np.random.default_rng(9)
        maintainer = DynamicGroupMaintainer(
            6, initial_data=rng.normal(size=(900, 3)), random_state=0
        )
        assert maintainer.n_groups >= 64
        for step in range(600):
            record = rng.normal(size=3)
            expected = brute_nearest(record, maintainer._centroids)
            assert maintainer._index.nearest(
                record, maintainer._centroids
            ) == expected, step
            if step % 5 == 4:
                maintainer.remove(rng.normal(size=3))
            else:
                maintainer.add(record)
        sizes = maintainer.group_sizes()
        assert (sizes >= 6).all() and (sizes < 12).all()

    def test_batch_ingest_keeps_index_consistent(self):
        rng = np.random.default_rng(10)
        maintainer = DynamicGroupMaintainer(
            6, initial_data=rng.normal(size=(900, 3)), random_state=0
        )
        for __ in range(20):
            maintainer.ingest_block(rng.normal(size=(64, 3)))
            record = rng.normal(size=3)
            assert maintainer._index.nearest(
                record, maintainer._centroids
            ) == brute_nearest(record, maintainer._centroids)

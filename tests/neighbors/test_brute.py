"""Tests for repro.neighbors.brute."""

import numpy as np
import pytest

from repro.neighbors.brute import BruteForceIndex, pairwise_distances


class TestPairwiseDistances:
    def test_matches_direct_computation(self, rng):
        queries = rng.normal(size=(5, 3))
        points = rng.normal(size=(8, 3))
        distances = pairwise_distances(queries, points)
        for i in range(5):
            for j in range(8):
                expected = np.linalg.norm(queries[i] - points[j])
                assert distances[i, j] == pytest.approx(expected)

    def test_squared_option(self, rng):
        queries = rng.normal(size=(3, 2))
        points = rng.normal(size=(4, 2))
        squared = pairwise_distances(queries, points, squared=True)
        np.testing.assert_allclose(
            np.sqrt(squared), pairwise_distances(queries, points)
        )

    def test_self_distance_zero(self, rng):
        points = rng.normal(size=(6, 4))
        distances = pairwise_distances(points, points)
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-7)

    def test_never_negative_under_cancellation(self):
        # Large coordinates provoke catastrophic cancellation in the
        # expanded form; the clip must keep results non-negative.
        points = np.full((2, 3), 1e8)
        distances = pairwise_distances(points, points, squared=True)
        assert (distances >= 0).all()

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimensionality"):
            pairwise_distances(np.ones((2, 3)), np.ones((2, 4)))


class TestBruteForceIndex:
    def test_nearest_is_self_for_indexed_point(self, rng):
        points = rng.normal(size=(20, 3))
        index = BruteForceIndex(points)
        distances, indices = index.query(points, k=1)
        np.testing.assert_array_equal(indices[:, 0], np.arange(20))
        np.testing.assert_allclose(distances[:, 0], 0.0, atol=1e-7)

    def test_distances_ascending(self, rng):
        points = rng.normal(size=(30, 4))
        index = BruteForceIndex(points)
        distances, __ = index.query(rng.normal(size=(5, 4)), k=7)
        assert (np.diff(distances, axis=1) >= -1e-12).all()

    def test_k_equal_n(self, rng):
        points = rng.normal(size=(6, 2))
        index = BruteForceIndex(points)
        distances, indices = index.query(rng.normal(size=(1, 2)), k=6)
        assert sorted(indices[0].tolist()) == list(range(6))
        assert (np.diff(distances[0]) >= -1e-12).all()

    def test_single_query_vector(self, rng):
        points = rng.normal(size=(10, 3))
        index = BruteForceIndex(points)
        distances, indices = index.query(points[4], k=2)
        assert distances.shape == (2,)
        assert indices[0] == 4

    def test_matches_argsort_reference(self, rng):
        points = rng.normal(size=(40, 3))
        queries = rng.normal(size=(7, 3))
        index = BruteForceIndex(points)
        __, indices = index.query(queries, k=5)
        reference = np.argsort(
            pairwise_distances(queries, points), axis=1
        )[:, :5]
        ref_d = np.take_along_axis(
            pairwise_distances(queries, points), reference, axis=1
        )
        got_d = np.take_along_axis(
            pairwise_distances(queries, points), indices, axis=1
        )
        np.testing.assert_allclose(got_d, ref_d, atol=1e-9)

    def test_invalid_k(self, rng):
        index = BruteForceIndex(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            index.query(np.zeros(2), k=0)
        with pytest.raises(ValueError):
            index.query(np.zeros(2), k=6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            BruteForceIndex(np.empty((0, 3)))

    def test_points_copied(self, rng):
        original = rng.normal(size=(5, 2))
        index = BruteForceIndex(original)
        original[:] = 0.0
        assert not np.allclose(index.points, 0.0)

    def test_points_view_read_only(self, rng):
        index = BruteForceIndex(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            index.points[0, 0] = 1.0

    def test_query_radius(self):
        points = np.array([[0.0], [1.0], [2.0], [10.0]])
        index = BruteForceIndex(points)
        hits = index.query_radius(np.array([0.5]), radius=2.0)
        assert sorted(hits.tolist()) == [0, 1, 2]

    def test_query_radius_negative(self):
        index = BruteForceIndex(np.zeros((2, 1)))
        with pytest.raises(ValueError):
            index.query_radius(np.zeros(1), radius=-1.0)

    def test_properties(self, rng):
        index = BruteForceIndex(rng.normal(size=(9, 4)))
        assert index.n_points == 9
        assert index.n_features == 4

"""PRIV-001: the statistics-only condensation invariant (paper §2)."""

from textwrap import dedent

from tests.analysis.conftest import rule_ids


class TestRecordRetention:
    def test_record_store_attribute_flagged(self, run_core):
        source = dedent(
            """
            class Group:
                def __init__(self, records):
                    self._records = records
            """
        )
        findings = run_core(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]
        assert "(Fs, Sc, n)" in findings[0].message

    def test_record_value_name_flagged_even_on_innocent_attribute(
        self, run_core
    ):
        source = dedent(
            """
            class Group:
                def fit(self, data):
                    self.cache = data.copy()
            """
        )
        findings = run_core(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]

    def test_wrapped_record_value_flagged(self, run_core):
        source = dedent(
            """
            import numpy as np


            class Group:
                def fit(self, X):
                    self.kept = np.asarray(X, dtype=float)
            """
        )
        findings = run_core(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]

    def test_append_onto_record_attribute_flagged(self, run_stream):
        source = dedent(
            """
            class Condenser:
                def push(self, record):
                    self._buffer.append(record.copy())
            """
        )
        findings = run_stream(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]

    def test_statistics_aggregation_is_clean(self, run_core):
        # ``+=`` into the sums IS the paper's aggregation, not retention.
        source = dedent(
            """
            import numpy as np


            class GroupStatistics:
                def add(self, record):
                    self.first_order += record
                    self.second_order += np.outer(record, record)
                    self.count += 1
            """
        )
        assert run_core(source, select=["PRIV-001"]) == []

    def test_counts_and_flags_are_clean(self, run_core):
        source = dedent(
            """
            class Group:
                def __init__(self, data):
                    self.count = len(data)
                    self.n_features = int(data.shape[1])
                    self.fitted = True
                    self.children = []
            """
        )
        assert run_core(source, select=["PRIV-001"]) == []

    def test_stream_source_class_is_exempt(self, run_stream):
        # ``*Stream``/``*Source`` classes model the trusted input feed.
        source = dedent(
            """
            class ArrayStream:
                def __init__(self, data):
                    self._data = data
            """
        )
        assert run_stream(source, select=["PRIV-001"]) == []

    def test_rule_is_scoped_to_core_and_stream(self, run_lib):
        source = dedent(
            """
            class Holder:
                def __init__(self, records):
                    self._records = records
            """
        )
        assert run_lib(source, select=["PRIV-001"]) == []

    def test_parallel_package_is_privacy_critical(self, run_parallel):
        source = dedent(
            """
            class ShardWorker:
                def __init__(self, records):
                    self._records = records
            """
        )
        findings = run_parallel(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]
        assert "(Fs, Sc, n)" in findings[0].message

    def test_parallel_serializer_import_flagged(self, run_parallel):
        findings = run_parallel("import pickle\n", select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]
        assert "repro/parallel" in findings[0].message

    def test_parallel_telemetry_payloads_audited(self, run_parallel):
        source = dedent(
            """
            from repro import telemetry

            def condense_shard(records):
                telemetry.gauge_set("parallel.batch", records)
            """
        )
        findings = run_parallel(source, select=["PRIV-002"])
        assert rule_ids(findings) == ["PRIV-002"]


class TestSerialization:
    def test_pickle_import_flagged(self, run_core):
        findings = run_core("import pickle\n", select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]
        assert "repro/io" in findings[0].message

    def test_pickle_dump_flagged(self, run_core):
        source = dedent(
            """
            import pickle


            def stash(group, handle):
                pickle.dump(group, handle)
            """
        )
        findings = run_core(source, select=["PRIV-001"])
        # The import and the call each produce a finding.
        assert rule_ids(findings) == ["PRIV-001", "PRIV-001"]

    def test_numpy_save_flagged(self, run_stream):
        source = dedent(
            """
            import numpy as np


            def stash(path, batch):
                np.save(path, batch)
            """
        )
        findings = run_stream(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]

    def test_tofile_flagged(self, run_core):
        source = "window.tofile('dump.bin')\n"
        findings = run_core(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]

    def test_serialization_allowed_outside_core_stream(self, run_lib):
        assert run_lib("import pickle\n", select=["PRIV-001"]) == []


class TestTelemetryPayloads:
    """PRIV-002: telemetry call sites carry scalars, never records."""

    def test_module_call_with_record_batch_flagged(self, run_core):
        source = dedent(
            """
            from repro import telemetry


            def absorb(records):
                telemetry.counter_inc("condense.records", records)
            """
        )
        findings = run_core(source, select=["PRIV-002"])
        assert rule_ids(findings) == ["PRIV-002"]
        assert "scalar aggregates" in findings[0].message

    def test_direct_import_call_flagged(self, run_stream):
        source = dedent(
            """
            from repro.telemetry import histogram_observe


            def track(batch):
                histogram_observe("stream.sizes", batch)
            """
        )
        findings = run_stream(source, select=["PRIV-002"])
        assert rule_ids(findings) == ["PRIV-002"]

    def test_aliased_import_flagged(self, run_core):
        source = dedent(
            """
            from repro.telemetry import counter_inc as bump


            def absorb(data):
                bump("condense.records", data)
            """
        )
        findings = run_core(source, select=["PRIV-002"])
        assert rule_ids(findings) == ["PRIV-002"]

    def test_record_label_value_flagged(self, run_core):
        source = dedent(
            """
            from repro import telemetry


            def absorb(records):
                telemetry.counter_inc(
                    "condense.records", 1, labels={"payload": records}
                )
            """
        )
        findings = run_core(source, select=["PRIV-002"])
        assert rule_ids(findings) == ["PRIV-002"]

    def test_span_attribute_with_records_flagged(self, run_core):
        source = dedent(
            """
            from repro import telemetry


            def condense(records):
                with telemetry.span("condense") as span:
                    span.set_attribute("members", records)
            """
        )
        findings = run_core(source, select=["PRIV-002"])
        assert rule_ids(findings) == ["PRIV-002"]

    def test_wrapped_record_batch_flagged(self, run_core):
        source = dedent(
            """
            import numpy as np

            from repro import telemetry


            def absorb(records):
                telemetry.gauge_set("condense.last", np.asarray(records))
            """
        )
        findings = run_core(source, select=["PRIV-002"])
        assert rule_ids(findings) == ["PRIV-002"]

    def test_scalar_aggregates_clean(self, run_core):
        source = dedent(
            """
            from repro import telemetry


            def absorb(records, group):
                telemetry.counter_inc("condense.records", len(records))
                telemetry.counter_inc("condense.rows", records.shape[0])
                telemetry.histogram_observe(
                    "condense.group_size", group.count
                )
                with telemetry.span("condense") as span:
                    span.set_attribute("strategy", "random")
                    span.set_attribute("n_records", int(records.shape[0]))
            """
        )
        assert run_core(source, select=["PRIV-002"]) == []

    def test_generic_methods_need_telemetry_receiver(self, run_core):
        # .set()/.inc() on arbitrary objects is not telemetry.
        source = dedent(
            """
            def track(records, cache, gauge):
                cache.set("latest", records)
                gauge.set(records)
            """
        )
        findings = run_core(source, select=["PRIV-002"])
        assert rule_ids(findings) == ["PRIV-002"]
        assert "set()" in findings[0].message

    def test_not_applied_outside_core_stream(self, run_lib):
        source = dedent(
            """
            from repro import telemetry


            def track(records):
                telemetry.counter_inc("lib.records", records)
            """
        )
        assert run_lib(source, select=["PRIV-002"]) == []

    def test_not_applied_in_tests(self, run_tests):
        source = dedent(
            """
            from repro import telemetry


            def test_counter(records):
                telemetry.counter_inc("test.records", records)
            """
        )
        assert run_tests(source, select=["PRIV-002"]) == []

    def test_suppression_honoured(self, run_core):
        source = dedent(
            """
            from repro import telemetry


            def absorb(records):
                # repro-lint: disable-next=PRIV-002 -- justified
                telemetry.counter_inc("condense.records", records)
            """
        )
        assert run_core(source, select=["PRIV-002"]) == []

"""PRIV-001: the statistics-only condensation invariant (paper §2)."""

from textwrap import dedent

from tests.analysis.conftest import rule_ids


class TestRecordRetention:
    def test_record_store_attribute_flagged(self, run_core):
        source = dedent(
            """
            class Group:
                def __init__(self, records):
                    self._records = records
            """
        )
        findings = run_core(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]
        assert "(Fs, Sc, n)" in findings[0].message

    def test_record_value_name_flagged_even_on_innocent_attribute(
        self, run_core
    ):
        source = dedent(
            """
            class Group:
                def fit(self, data):
                    self.cache = data.copy()
            """
        )
        findings = run_core(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]

    def test_wrapped_record_value_flagged(self, run_core):
        source = dedent(
            """
            import numpy as np


            class Group:
                def fit(self, X):
                    self.kept = np.asarray(X, dtype=float)
            """
        )
        findings = run_core(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]

    def test_append_onto_record_attribute_flagged(self, run_stream):
        source = dedent(
            """
            class Condenser:
                def push(self, record):
                    self._buffer.append(record.copy())
            """
        )
        findings = run_stream(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]

    def test_statistics_aggregation_is_clean(self, run_core):
        # ``+=`` into the sums IS the paper's aggregation, not retention.
        source = dedent(
            """
            import numpy as np


            class GroupStatistics:
                def add(self, record):
                    self.first_order += record
                    self.second_order += np.outer(record, record)
                    self.count += 1
            """
        )
        assert run_core(source, select=["PRIV-001"]) == []

    def test_counts_and_flags_are_clean(self, run_core):
        source = dedent(
            """
            class Group:
                def __init__(self, data):
                    self.count = len(data)
                    self.n_features = int(data.shape[1])
                    self.fitted = True
                    self.children = []
            """
        )
        assert run_core(source, select=["PRIV-001"]) == []

    def test_stream_source_class_is_exempt(self, run_stream):
        # ``*Stream``/``*Source`` classes model the trusted input feed.
        source = dedent(
            """
            class ArrayStream:
                def __init__(self, data):
                    self._data = data
            """
        )
        assert run_stream(source, select=["PRIV-001"]) == []

    def test_rule_is_scoped_to_core_and_stream(self, run_lib):
        source = dedent(
            """
            class Holder:
                def __init__(self, records):
                    self._records = records
            """
        )
        assert run_lib(source, select=["PRIV-001"]) == []


class TestSerialization:
    def test_pickle_import_flagged(self, run_core):
        findings = run_core("import pickle\n", select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]
        assert "repro/io" in findings[0].message

    def test_pickle_dump_flagged(self, run_core):
        source = dedent(
            """
            import pickle


            def stash(group, handle):
                pickle.dump(group, handle)
            """
        )
        findings = run_core(source, select=["PRIV-001"])
        # The import and the call each produce a finding.
        assert rule_ids(findings) == ["PRIV-001", "PRIV-001"]

    def test_numpy_save_flagged(self, run_stream):
        source = dedent(
            """
            import numpy as np


            def stash(path, batch):
                np.save(path, batch)
            """
        )
        findings = run_stream(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]

    def test_tofile_flagged(self, run_core):
        source = "window.tofile('dump.bin')\n"
        findings = run_core(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]

    def test_serialization_allowed_outside_core_stream(self, run_lib):
        assert run_lib("import pickle\n", select=["PRIV-001"]) == []

"""Unit coverage for the interprocedural lock-set engine.

Synthetic serve-plane fixtures exercise each engine capability in
isolation: lock discovery (attribute, module-level, collection),
thread-root discovery (handlers, ``threading.Thread`` targets, serve
loops), helper-call lock propagation, RLock re-entrancy,
``try/finally`` acquire/release, lock aliasing, and the must/may
split.  The THR rule behavior on these fixtures lives in
``test_threading_rules.py``.
"""

import textwrap

from repro.analysis import ModuleContext
from repro.analysis.project import LockSetEngine, build_index, lock_sets


def _index(sources):
    contexts = [
        ModuleContext.from_source(textwrap.dedent(text), path)
        for path, text in sources.items()
    ]
    return build_index(contexts)


def _engine(sources):
    return LockSetEngine.build(_index(sources))


COUNTER = {
    "src/repro/serve/counter.py": """
    import threading


    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._total = 0

        def deposit(self, value):
            with self._lock:
                self._total = self._total + value

        def snapshot(self):
            with self._lock:
                return self._total

        def racy_read(self):
            return self._total


    def start(counter):
        threading.Thread(target=counter.deposit).start()
        threading.Thread(target=counter.snapshot).start()
        threading.Thread(target=counter.racy_read).start()
    """,
}


class TestLockDiscovery:
    def test_attribute_lock(self):
        engine = _engine(COUNTER)
        assert "repro.serve.counter.Counter._lock" in engine.locks

    def test_module_level_and_collection_locks(self):
        engine = _engine({
            "src/repro/serve/pool.py": """
            import threading

            GLOBAL_LOCK = threading.Lock()


            class Pool:
                def __init__(self, n):
                    self._shard_locks = [
                        threading.RLock() for _ in range(n)
                    ]
            """,
        })
        assert "repro.serve.pool.GLOBAL_LOCK" in engine.locks
        collection = engine.locks[
            "repro.serve.pool.Pool._shard_locks"
        ]
        assert collection.collection
        assert engine.display(collection.lock_id).endswith("[*]")

    def test_lock_attributes_are_not_tracked_as_shared_state(self):
        engine = _engine(COUNTER)
        assert "repro.serve.counter.Counter._lock" \
            not in engine.tracked_attrs
        assert "repro.serve.counter.Counter._total" \
            in engine.tracked_attrs


class TestRootDiscovery:
    def test_thread_targets_resolve_through_receivers(self):
        engine = _engine(COUNTER)
        kinds = {
            name: root.kind for name, root in engine.roots.items()
        }
        assert kinds.get("repro.serve.counter.Counter.deposit") \
            == "thread"
        assert kinds.get("repro.serve.counter.Counter.racy_read") \
            == "thread"

    def test_handler_do_methods_and_serve_loops(self):
        engine = _engine({
            "src/repro/serve/web.py": """
            from http.server import BaseHTTPRequestHandler


            class Handler(BaseHTTPRequestHandler):
                def do_GET(self):
                    self.send_response(200)


            def run(server):
                server.serve_forever()
            """,
        })
        assert engine.roots["repro.serve.web.Handler.do_GET"].kind \
            == "handler"
        assert engine.roots["repro.serve.web.run"].kind == "serve-loop"


class TestLockSetPropagation:
    HELPER = {
        "src/repro/serve/register.py": """
        import threading


        class Register:
            def __init__(self):
                self._lock = threading.RLock()
                self._entries = []

            def record(self, item):
                with self._lock:
                    self._store(item)

            def audit(self):
                with self._lock:
                    return len(self._entries)

            def _store(self, item):
                self._entries.append(item)


        def start(register):
            threading.Thread(target=register.record).start()
            threading.Thread(target=register.audit).start()
        """,
    }

    def test_helper_inherits_callers_lock_set(self):
        engine = _engine(self.HELPER)
        lock = "repro.serve.register.Register._lock"
        store_accesses = [
            access for access in engine.accesses
            if access.function.endswith("._store")
        ]
        assert store_accesses, "helper access not reached"
        assert all(
            lock in access.must_held for access in store_accesses
        )

    def test_guard_inferred_from_majority(self):
        engine = _engine(self.HELPER)
        guards = engine.guards()
        attr = "repro.serve.register.Register._entries"
        lock, guarded, total = guards[attr]
        assert lock == "repro.serve.register.Register._lock"
        assert guarded == total

    def test_call_path_traces_back_to_the_root(self):
        engine = _engine(self.HELPER)
        [access] = [
            access for access in engine.accesses
            if access.function.endswith("._store")
        ]
        assert access.path[0].endswith(".record") \
            or access.path[0].endswith(".audit")
        assert access.path[-1].endswith("._store")


class TestReentrancyAndManualAcquire:
    SOURCE = {
        "src/repro/serve/manual.py": """
        import threading


        class Box:
            def __init__(self):
                self._lock = threading.RLock()
                self._items = []

            def nested(self):
                with self._lock:
                    with self._lock:
                        self._items.append(1)

            def manual(self):
                self._lock.acquire()
                try:
                    self._items.append(2)
                finally:
                    self._lock.release()


        def start(box):
            threading.Thread(target=box.nested).start()
            threading.Thread(target=box.manual).start()
        """,
    }

    def test_reacquiring_a_held_rlock_adds_no_acquisition(self):
        engine = _engine(self.SOURCE)
        summary = engine._summary("repro.serve.manual.Box.nested")
        assert len(summary.acquires) == 1
        assert engine.order_edges == []

    def test_try_finally_acquire_release_is_tracked(self):
        engine = _engine(self.SOURCE)
        lock = "repro.serve.manual.Box._lock"
        [access] = [
            access for access in engine.accesses
            if access.function.endswith(".manual")
        ]
        assert lock in access.must_held


class TestAliasesAndCollections:
    def test_loop_variable_aliases_the_collection_lock(self):
        engine = _engine({
            "src/repro/serve/fleet.py": """
            import threading


            class Fleet:
                def __init__(self, n):
                    self._shard_locks = [
                        threading.RLock() for _ in range(n)
                    ]
                    self._sizes = [0] * n

                def resize(self, n):
                    for shard_lock in self._shard_locks:
                        with shard_lock:
                            self._sizes.append(n)

                def indexed(self, i):
                    with self._shard_locks[i]:
                        self._sizes.append(i)


            def start(fleet):
                threading.Thread(target=fleet.resize).start()
                threading.Thread(target=fleet.indexed).start()
            """,
        })
        composite = "repro.serve.fleet.Fleet._shard_locks"
        for access in engine.accesses:
            assert composite in access.must_held, access.function


class TestEngineMemoization:
    def test_lock_sets_reuses_the_engine_per_index(self):
        index = _index(COUNTER)
        assert lock_sets(index) is lock_sets(index)

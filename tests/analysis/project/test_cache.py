"""Incremental cache: warm replay, transitive invalidation, safety valves."""

import time
from pathlib import Path

from repro.analysis import get_rules
from repro.analysis.project import AnalysisCache, content_hash, run_project
from repro.analysis.project.cache import CACHE_VERSION

REPO_ROOT = Path(__file__).resolve().parents[3]


def _write_tree(root, n_modules=12):
    """A chain of modules, each importing the previous one."""
    package = root / "src" / "repro" / "chainpkg"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "m000.py").write_text(
        '"""Chain base."""\n\n\ndef f000():\n    """Return zero.\n\n'
        "    Returns\n    -------\n    int\n    \"\"\"\n    return 0\n"
    )
    for i in range(1, n_modules):
        (package / f"m{i:03d}.py").write_text(
            f'"""Chain link {i}."""\n\n'
            f"from repro.chainpkg.m{i - 1:03d} import f{i - 1:03d}\n\n\n"
            f"def f{i:03d}():\n"
            f'    """Return the chain value.\n\n'
            f"    Returns\n    -------\n    int\n    \"\"\"\n"
            f"    return f{i - 1:03d}() + 1\n"
        )
    return package


class TestWarmReplay:
    def test_warm_run_replays_everything_and_is_faster(self, tmp_path):
        package = _write_tree(tmp_path)
        cache_file = tmp_path / "cache.json"

        started = time.perf_counter()
        cold = run_project([package], cache_path=cache_file)
        cold_elapsed = time.perf_counter() - started

        started = time.perf_counter()
        warm = run_project([package], cache_path=cache_file)
        warm_elapsed = time.perf_counter() - started

        assert cold.stats["cache_hit"] is False
        assert cold.stats["analyzed_files"] == cold.stats["total_files"]
        assert warm.stats["cache_hit"] is True
        assert warm.stats["analyzed_files"] == 0
        assert warm.stats["cached_files"] == warm.stats["total_files"]
        assert warm.findings == cold.findings
        assert warm_elapsed < cold_elapsed

    def test_editing_one_file_reanalyzes_only_that_module_pass(
        self, tmp_path
    ):
        package = _write_tree(tmp_path)
        cache_file = tmp_path / "cache.json"
        run_project([package], cache_path=cache_file)

        target = package / "m005.py"
        target.write_text(target.read_text() + "\n# touched\n")
        report = run_project([package], cache_path=cache_file)
        assert report.stats["cache_hit"] is False
        assert report.stats["analyzed_files"] == 1
        assert (
            report.stats["cached_files"]
            == report.stats["total_files"] - 1
        )

    def test_real_tree_warm_replay_holds_its_budget(self, tmp_path):
        # The commit-hook contract: with every rule family enabled
        # (including the FS/CONC/RES protocol rules), an unchanged tree
        # replays entirely from cache and stays interactive.  The bound
        # is deliberately loose for shared CI machines — the local
        # replay is ~10ms against a ~4s cold pass.
        cache_file = tmp_path / "cache.json"
        paths = [REPO_ROOT / "src", REPO_ROOT / "tests"]
        run_project(paths, rules=get_rules(), cache_path=cache_file)
        started = time.perf_counter()
        warm = run_project(
            paths, rules=get_rules(), cache_path=cache_file
        )
        warm_elapsed = time.perf_counter() - started
        assert warm.stats["cache_hit"] is True
        assert warm.stats["analyzed_files"] == 0
        assert warm_elapsed < 1.0

    def test_no_cache_flag_never_reads_or_writes(self, tmp_path):
        package = _write_tree(tmp_path, n_modules=3)
        cache_file = tmp_path / "cache.json"
        run_project([package], cache_path=cache_file, use_cache=False)
        assert not cache_file.exists()
        report = run_project(
            [package], cache_path=cache_file, use_cache=False
        )
        assert report.stats["cache_hit"] is False
        assert report.stats["analyzed_files"] == report.stats["total_files"]


class TestTransitiveInvalidation:
    def test_changing_a_dependency_invalidates_dependents(self):
        cache = AnalysisCache(fingerprint="fp")
        hashes = {
            "a.py": content_hash("a1"),
            "b.py": content_hash("b1"),
            "c.py": content_hash("c1"),
        }
        cache.store("a.py", hashes["a.py"], [], [], [], {})
        cache.store("b.py", hashes["b.py"], ["a.py"], [], [], {})
        cache.store("c.py", hashes["c.py"], ["b.py"], [], [], {})
        assert cache.project_valid("c.py", hashes)

        hashes["a.py"] = content_hash("a2 -- edited")
        # c.py's own hash is unchanged, but its transitive closure is not.
        assert cache.module_valid("c.py", hashes["c.py"])
        assert not cache.project_valid("c.py", hashes)

    def test_missing_dependency_entry_is_invalid(self):
        cache = AnalysisCache(fingerprint="fp")
        hashes = {"b.py": content_hash("b")}
        cache.store("b.py", hashes["b.py"], ["gone.py"], [], [], {})
        assert not cache.project_valid("b.py", hashes)

    def test_dependency_cycles_terminate(self):
        cache = AnalysisCache(fingerprint="fp")
        hashes = {
            "a.py": content_hash("a"),
            "b.py": content_hash("b"),
        }
        cache.store("a.py", hashes["a.py"], ["b.py"], [], [], {})
        cache.store("b.py", hashes["b.py"], ["a.py"], [], [], {})
        assert cache.project_valid("a.py", hashes)


class TestSafetyValves:
    def test_fingerprint_mismatch_drops_the_cache(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache = AnalysisCache(fingerprint="old")
        cache.store("a.py", "h", [], [], [], {})
        cache.save(cache_file)
        reloaded = AnalysisCache.load(cache_file, fingerprint="new")
        assert reloaded.files == {}

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json")
        reloaded = AnalysisCache.load(cache_file, fingerprint="fp")
        assert reloaded.files == {}

    def test_version_bump_drops_the_cache(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache = AnalysisCache(fingerprint="fp")
        cache.save(cache_file)
        text = cache_file.read_text().replace(
            f'"version": {CACHE_VERSION}', '"version": 999999'
        )
        cache_file.write_text(text)
        reloaded = AnalysisCache.load(cache_file, fingerprint="fp")
        assert reloaded.files == {}

    def test_prune_drops_departed_files(self):
        cache = AnalysisCache(fingerprint="fp")
        cache.store("keep.py", "h", [], [], [], {})
        cache.store("gone.py", "h", [], [], [], {})
        cache.prune({"keep.py"})
        assert set(cache.files) == {"keep.py"}

"""The serving layer is inside the analyzer's privacy-critical scope.

Satellite of the serving PR: PRIV-001/002/003 must cover
``repro/serve``, and a vandalized HTTP handler that echoes ingested
records back to a client must be flagged by the whole-program taint
rule — raw records may flow *into* the service, never out of it.
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis import ModuleContext, analyze_source, get_rules
from repro.analysis.project import build_index

REPO_ROOT = Path(__file__).resolve().parents[3]
HANDLER_LINE = "    return service.ingest(records)"


def _contexts_for_tree(root):
    return [
        ModuleContext.from_source(
            path.read_text(encoding="utf-8"), str(path)
        )
        for path in sorted(Path(root).rglob("*.py"))
    ]


def _findings(contexts, rule_id):
    index = build_index(contexts)
    [rule] = get_rules(select=[rule_id])
    return list(rule.check_project(index))


class TestServeIsPrivacyCritical:
    @pytest.mark.parametrize("module", [
        "service.py", "http.py", "router.py", "loadgen.py",
    ])
    def test_modules_in_scope(self, module):
        path = REPO_ROOT / "src" / "repro" / "serve" / module
        context = ModuleContext.from_source(
            path.read_text(encoding="utf-8"),
            f"src/repro/serve/{module}",
        )
        assert context.is_privacy_critical

    def test_priv_001_summary_names_serve(self):
        [rule] = get_rules(select=["PRIV-001"])
        assert "serve" in rule.summary

    def test_injected_record_attribute_trips_priv_001(self):
        source = (
            REPO_ROOT / "src" / "repro" / "serve" / "service.py"
        ).read_text(encoding="utf-8")
        injected = source + (
            "\n\ndef _stash(service, records):\n"
            "    service._records = records\n"
        )
        findings = analyze_source(
            injected, path="src/repro/serve/service.py"
        )
        assert "PRIV-001" in {finding.rule_id for finding in findings}

    def test_injected_record_telemetry_trips_priv_002(self):
        source = (
            REPO_ROOT / "src" / "repro" / "serve" / "http.py"
        ).read_text(encoding="utf-8")
        injected = source + (
            "\n\ndef _debug(records):\n"
            "    telemetry.gauge_set('serve.debug', records)\n"
        )
        findings = analyze_source(
            injected, path="src/repro/serve/http.py"
        )
        assert "PRIV-002" in {finding.rule_id for finding in findings}


class TestVandalizedHandlerCanary:
    @pytest.fixture(scope="class")
    def repro_copy(self, tmp_path_factory):
        destination = tmp_path_factory.mktemp("serve-tree") / "repro"
        shutil.copytree(REPO_ROOT / "src" / "repro", destination)
        return destination

    def test_clean_tree_has_no_serve_leaks(self):
        # PRIV-003 needs the whole tree for cross-module resolution;
        # scope the check by filtering findings to files in the serve
        # package (matching path *components*, not substrings — the
        # tree may live under a directory whose name contains "serve").
        contexts = _contexts_for_tree(REPO_ROOT / "src" / "repro")
        leaks = [
            finding for finding in _findings(contexts, "PRIV-003")
            if "serve" in Path(finding.path).parts
        ]
        assert leaks == []

    def test_handler_echoing_records_is_flagged(self, repro_copy):
        handler = repro_copy / "serve" / "http.py"
        source = handler.read_text(encoding="utf-8")
        assert HANDLER_LINE in source
        handler.write_text(
            source.replace(
                HANDLER_LINE,
                "    service.ingest(records)\n"
                "    return records.tolist()",
            ),
            encoding="utf-8",
        )
        findings = _findings(_contexts_for_tree(repro_copy), "PRIV-003")
        serve_leaks = [
            finding for finding in findings
            if "serve" in Path(finding.path).parts
        ]
        assert serve_leaks, "vandalized handler was not flagged"
        message = serve_leaks[0].message
        assert "ingest_records" in message
        assert "serialization" in message


class TestLoadgenSanction:
    def test_loadgen_client_is_sanctioned(self):
        # The load generator ships raw synthetic records to /ingest —
        # the trusted client side of the paper's deployment — so its
        # sinks must not count as leaks.
        contexts = _contexts_for_tree(REPO_ROOT / "src" / "repro")
        leaks = [
            finding for finding in _findings(contexts, "PRIV-003")
            if "loadgen" in finding.path
        ]
        assert leaks == []

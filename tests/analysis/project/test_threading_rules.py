"""THR-001..004 behavior: synthetic fixtures, real tree, canary.

The canary mirrors the vandalized-handler pattern of
``test_serve_scope.py``: a copy of the real tree with one
``with self._lock:`` deleted from ``ShardedCondensationService.status``
must trip THR-001 — proof the gate actually protects the serving
plane's lock discipline, not just the fixtures.
"""

import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import ModuleContext, get_rules
from repro.analysis.project import build_index

REPO_ROOT = Path(__file__).resolve().parents[3]

STATUS_LOCK_SNIPPET = (
    "        with self._lock:\n"
    "            return {\n"
    '                "status":'
)


def _contexts_for_tree(root):
    return [
        ModuleContext.from_source(
            path.read_text(encoding="utf-8"), str(path)
        )
        for path in sorted(Path(root).rglob("*.py"))
    ]


def _findings(contexts, rule_id):
    index = build_index(contexts)
    [rule] = get_rules(select=[rule_id])
    return list(rule.check_project(index))


def _fixture_findings(sources, rule_id):
    contexts = [
        ModuleContext.from_source(textwrap.dedent(text), path)
        for path, text in sources.items()
    ]
    return _findings(contexts, rule_id)


class TestTHR001UnguardedAccess:
    SOURCES = {
        "src/repro/serve/counter.py": """
        import threading


        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._total = 0

            def deposit(self, value):
                with self._lock:
                    self._total = self._total + value

            def snapshot(self):
                with self._lock:
                    return self._total

            def racy_read(self):
                return self._total


        def start(counter):
            threading.Thread(target=counter.deposit).start()
            threading.Thread(target=counter.snapshot).start()
            threading.Thread(target=counter.racy_read).start()
        """,
    }

    def test_unguarded_read_is_flagged_with_root_trace(self):
        findings = _fixture_findings(self.SOURCES, "THR-001")
        assert [f.rule_id for f in findings] == ["THR-001"]
        [finding] = findings
        assert "_total" in finding.message
        assert "Counter._lock" in finding.message
        trace = "\n".join(finding.trace)
        assert "thread root" in trace
        assert "racy_read" in trace

    def test_guarded_tree_is_clean(self):
        original = self.SOURCES["src/repro/serve/counter.py"]
        patched = original.replace(
            "def racy_read(self):\n"
            "                return self._total",
            "def racy_read(self):\n"
            "                with self._lock:\n"
            "                    return self._total",
        )
        assert patched != original
        sources = {"src/repro/serve/counter.py": patched}
        assert _fixture_findings(sources, "THR-001") == []

    def test_single_root_attribute_is_not_flagged(self):
        sources = {
            "src/repro/serve/solo.py": """
            import threading


            class Solo:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._total = 0

                def deposit(self, value):
                    with self._lock:
                        self._total = self._total + value

                def tally(self):
                    with self._lock:
                        self._total = self._total + 1
                    return self._total


            def start(solo):
                threading.Thread(target=solo.tally).start()
            """,
        }
        assert _fixture_findings(sources, "THR-001") == []


class TestTHR002LockOrderCycle:
    SOURCES = {
        "src/repro/serve/ledger.py": """
        import threading

        LOCK_A = threading.Lock()
        LOCK_B = threading.Lock()


        def transfer():
            with LOCK_A:
                with LOCK_B:
                    pass


        def refund():
            with LOCK_B:
                with LOCK_A:
                    pass


        def start():
            threading.Thread(target=transfer).start()
            threading.Thread(target=refund).start()
        """,
    }

    def test_two_lock_cycle_is_flagged_once(self):
        findings = _fixture_findings(self.SOURCES, "THR-002")
        assert [f.rule_id for f in findings] == ["THR-002"]
        [finding] = findings
        assert "LOCK_A" in finding.message
        assert "LOCK_B" in finding.message
        trace = "\n".join(finding.trace)
        assert "transfer" in trace
        assert "refund" in trace

    def test_consistent_order_is_clean(self):
        original = self.SOURCES["src/repro/serve/ledger.py"]
        patched = original.replace(
            "with LOCK_B:\n"
            "                with LOCK_A:",
            "with LOCK_A:\n"
            "                with LOCK_B:",
        )
        assert patched != original
        sources = {"src/repro/serve/ledger.py": patched}
        assert _fixture_findings(sources, "THR-002") == []


class TestTHR003BlockingUnderLock:
    def test_fsync_under_lock_is_flagged(self):
        sources = {
            "src/repro/serve/journal.py": """
            import os
            import threading


            class Journal:
                def __init__(self, handle):
                    self._lock = threading.Lock()
                    self._handle = handle

                def persist(self, data):
                    with self._lock:
                        self._handle.write(data)
                        os.fsync(self._handle.fileno())


            def start(journal):
                threading.Thread(target=journal.persist).start()
            """,
        }
        findings = _fixture_findings(sources, "THR-003")
        assert [f.rule_id for f in findings] == ["THR-003"]
        [finding] = findings
        assert "os.fsync()" in finding.message
        assert "Journal._lock" in finding.message

    def test_fsync_outside_lock_is_clean(self):
        sources = {
            "src/repro/serve/journal.py": """
            import os
            import threading


            class Journal:
                def __init__(self, handle):
                    self._lock = threading.Lock()
                    self._handle = handle

                def persist(self, data):
                    with self._lock:
                        self._handle.write(data)
                    os.fsync(self._handle.fileno())


            def start(journal):
                threading.Thread(target=journal.persist).start()
            """,
        }
        assert _fixture_findings(sources, "THR-003") == []


class TestTHR004CheckThenAct:
    def test_split_read_write_regions_are_flagged(self):
        sources = {
            "src/repro/serve/gate.py": """
            import threading


            class Gate:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        current = self._count
                    with self._lock:
                        self._count = current + 1

                def peek(self):
                    with self._lock:
                        return self._count


            def start(gate):
                threading.Thread(target=gate.bump).start()
                threading.Thread(target=gate.peek).start()
            """,
        }
        findings = _fixture_findings(sources, "THR-004")
        assert [f.rule_id for f in findings] == ["THR-004"]
        [finding] = findings
        assert "_count" in finding.message
        assert "check-then-act" in finding.message

    def test_single_region_is_clean(self):
        sources = {
            "src/repro/serve/gate.py": """
            import threading


            class Gate:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        current = self._count
                        self._count = current + 1

                def peek(self):
                    with self._lock:
                        return self._count


            def start(gate):
                threading.Thread(target=gate.bump).start()
                threading.Thread(target=gate.peek).start()
            """,
        }
        assert _fixture_findings(sources, "THR-004") == []


class TestRealTree:
    def test_real_tree_raw_thr_findings_are_only_suppressed_sites(self):
        # check_project sees raw findings; the runner filters the two
        # justified THR-003 suppressions (router publication fsync and
        # the close-path drain checkpoint).  Nothing else may surface.
        contexts = _contexts_for_tree(REPO_ROOT / "src" / "repro")
        index = build_index(contexts)
        for rule_id in ("THR-001", "THR-002", "THR-004"):
            [rule] = get_rules(select=[rule_id])
            assert list(rule.check_project(index)) == [], rule_id
        [rule] = get_rules(select=["THR-003"])
        sites = sorted(
            finding.line for finding in rule.check_project(index)
        )
        assert len(sites) == 2

    def test_service_lock_guards_are_inferred(self):
        from repro.analysis.project import lock_sets

        contexts = _contexts_for_tree(REPO_ROOT / "src" / "repro")
        index = build_index(contexts)
        guards = lock_sets(index).guards()
        service = "repro.serve.service.ShardedCondensationService"
        for attribute in ("_router", "_pending", "_closed"):
            lock, guarded, total = guards[f"{service}.{attribute}"]
            assert lock == f"{service}._lock"
            assert guarded == total


class TestVandalizedServiceCanary:
    @pytest.fixture(scope="class")
    def repro_copy(self, tmp_path_factory):
        destination = tmp_path_factory.mktemp("thr-tree") / "repro"
        shutil.copytree(REPO_ROOT / "src" / "repro", destination)
        return destination

    def test_deleting_the_status_lock_trips_thr_001(self, repro_copy):
        service = repro_copy / "serve" / "service.py"
        source = service.read_text(encoding="utf-8")
        assert STATUS_LOCK_SNIPPET in source
        service.write_text(
            source.replace(
                STATUS_LOCK_SNIPPET,
                STATUS_LOCK_SNIPPET.replace(
                    "with self._lock:", "if True:"
                ),
            ),
            encoding="utf-8",
        )
        findings = _findings(_contexts_for_tree(repro_copy), "THR-001")
        assert findings, "vandalized service was not flagged"
        attrs = {
            finding.message.split("'")[1] for finding in findings
        }
        assert attrs & {"_router", "_pending", "_closed"}
        assert all(
            finding.path.endswith("service.py") for finding in findings
        )

"""Baseline ratchet: fingerprints, partitioning, persistence."""

import pytest

from repro.analysis import Finding
from repro.analysis.project import Baseline, fingerprint


def _finding(line=3, message="raw records reach np.savetxt() write"):
    return Finding(
        path="src/repro/core/x.py", line=line, column=0,
        rule_id="PRIV-003", message=message,
    )


class TestFingerprint:
    def test_line_shifts_do_not_change_the_fingerprint(self):
        assert fingerprint(_finding(line=3)) == fingerprint(_finding(line=90))

    def test_line_references_inside_messages_are_collapsed(self):
        a = _finding(message="leak at x.py:12 via produce()")
        b = _finding(message="leak at x.py:99 via produce()")
        assert fingerprint(a) == fingerprint(b)

    def test_different_rules_or_paths_differ(self):
        other = Finding(
            path="src/repro/core/y.py", line=3, column=0,
            rule_id="PRIV-003", message="raw records reach np.savetxt() write",
        )
        assert fingerprint(_finding()) != fingerprint(other)


class TestPartition:
    def test_baselined_findings_are_grandfathered(self):
        baseline = Baseline.from_findings([_finding()])
        fresh, baselined = baseline.partition([_finding(line=40)])
        assert fresh == []
        assert baselined == 1

    def test_findings_beyond_the_baselined_count_are_new(self):
        baseline = Baseline.from_findings([_finding()])
        fresh, baselined = baseline.partition(
            [_finding(line=10), _finding(line=20)]
        )
        assert baselined == 1
        assert len(fresh) == 1

    def test_empty_baseline_reports_everything(self):
        fresh, baselined = Baseline().partition([_finding()])
        assert len(fresh) == 1
        assert baselined == 0


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([_finding(), _finding(line=7)]).save(path)
        loaded = Baseline.load(path)
        fresh, baselined = loaded.partition([_finding(), _finding(line=9)])
        assert fresh == []
        assert baselined == 2

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").counts == {}

    def test_invalid_file_raises_value_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_update_shrinks_the_debt(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([_finding(), _finding(line=7)]).save(path)
        # One of the two findings was fixed; rewriting the baseline from
        # the survivors must drop the tolerated count with it.
        Baseline.from_findings([_finding()]).save(path)
        fresh, baselined = Baseline.load(path).partition(
            [_finding(), _finding(line=7)]
        )
        assert baselined == 1
        assert len(fresh) == 1

"""``repro lint --project``: flags, ratchet workflow, JSON artifact."""

import json

import pytest

from repro.analysis.cli import main as analysis_main
from repro.cli import main as repro_main

_LOADER = "def load_fake():\n    return [[1.0, 2.0]]\n"
_LEAKY = (
    "import numpy as np\n"
    "from repro.datasets.gen import load_fake\n\n"
    "def dump(path):\n"
    "    rows = load_fake()\n"
    "    np.savetxt(path, rows)\n"
)


@pytest.fixture
def leaky_tree(tmp_path):
    root = tmp_path / "src" / "repro"
    (root / "datasets").mkdir(parents=True)
    (root / "core").mkdir()
    (root / "datasets" / "gen.py").write_text(_LOADER)
    (root / "core" / "leaky.py").write_text(_LEAKY)
    return tmp_path


def _lint(tree, *extra):
    return analysis_main([
        str(tree / "src"),
        "--select", "PRIV-003",
        "--cache-file", str(tree / "cache.json"),
        *extra,
    ])


class TestProjectFlag:
    def test_project_pass_reports_the_leak_with_a_trace(
        self, leaky_tree, capsys
    ):
        assert _lint(leaky_tree, "--project", "--format", "json") == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["by_rule"] == {"PRIV-003": 1}
        [finding] = document["findings"]
        assert finding["rule_id"] == "PRIV-003"
        assert any("load_fake" in hop for hop in finding["trace"])
        assert any("savetxt" in hop for hop in finding["trace"])
        assert document["stats"]["cache_hit"] is False

    def test_module_pass_alone_misses_the_cross_module_leak(
        self, leaky_tree
    ):
        assert _lint(leaky_tree) == 0

    def test_second_run_hits_the_cache(self, leaky_tree, capsys):
        _lint(leaky_tree, "--project")
        capsys.readouterr()
        assert _lint(leaky_tree, "--project", "--format", "json") == 1
        document = json.loads(capsys.readouterr().out)
        assert document["stats"]["cache_hit"] is True
        assert document["stats"]["analyzed_files"] == 0

    def test_no_cache_disables_replay(self, leaky_tree, capsys):
        _lint(leaky_tree, "--project", "--no-cache")
        capsys.readouterr()
        assert not (leaky_tree / "cache.json").exists()
        assert (
            _lint(leaky_tree, "--project", "--no-cache", "--format", "json")
            == 1
        )
        document = json.loads(capsys.readouterr().out)
        assert document["stats"]["cache_hit"] is False

    def test_zero_filled_rules_in_the_artifact(self, leaky_tree, capsys):
        assert analysis_main([
            str(leaky_tree / "src"), "--project", "--format", "json",
            "--select", "PRIV-003,DET-001",
            "--cache-file", str(leaky_tree / "cache.json"),
        ]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["by_rule"] == {
            "DET-001": 0, "PRIV-003": 1,
        }


class TestBaselineRatchet:
    def test_update_baseline_grandfathers_and_later_runs_pass(
        self, leaky_tree, capsys
    ):
        baseline = leaky_tree / "baseline.json"
        assert _lint(
            leaky_tree, "--baseline", str(baseline), "--update-baseline"
        ) == 0
        assert baseline.exists()
        assert _lint(leaky_tree, "--baseline", str(baseline)) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_new_findings_beyond_the_baseline_fail(self, leaky_tree, capsys):
        baseline = leaky_tree / "baseline.json"
        _lint(leaky_tree, "--baseline", str(baseline), "--update-baseline")
        capsys.readouterr()
        leaky = leaky_tree / "src" / "repro" / "core" / "leaky.py"
        leaky.write_text(
            _LEAKY + "\ndef dump_again(path):\n"
            "    np.savetxt(path, load_fake())\n"
        )
        assert _lint(
            leaky_tree, "--baseline", str(baseline), "--format", "json"
        ) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["total"] == 1
        assert document["summary"]["baselined"] == 1

    def test_baseline_flag_implies_project_mode(self, leaky_tree, capsys):
        baseline = leaky_tree / "baseline.json"
        assert _lint(
            leaky_tree, "--baseline", str(baseline), "--format", "json"
        ) == 1
        document = json.loads(capsys.readouterr().out)
        assert "stats" in document

    def test_update_baseline_requires_baseline_path(self, leaky_tree, capsys):
        assert _lint(leaky_tree, "--update-baseline") == 2
        assert "requires --baseline" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, leaky_tree, capsys):
        baseline = leaky_tree / "baseline.json"
        baseline.write_text("[]")
        assert _lint(leaky_tree, "--baseline", str(baseline)) == 2
        assert "invalid baseline" in capsys.readouterr().err


class TestSuppressions:
    def test_project_findings_honor_suppression_comments(
        self, leaky_tree, capsys
    ):
        leaky = leaky_tree / "src" / "repro" / "core" / "leaky.py"
        leaky.write_text(_LEAKY.replace(
            "    np.savetxt(path, rows)\n",
            "    np.savetxt(path, rows)  "
            "# repro-lint: disable=PRIV-003 -- canary\n",
        ))
        assert _lint(leaky_tree, "--project", "--format", "json") == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["suppressed"] == {"PRIV-003": 1}
        assert document["summary"]["total"] == 0


class TestReproLintWiring:
    def test_repro_lint_accepts_the_project_flags(self, leaky_tree, capsys):
        assert repro_main([
            "lint", str(leaky_tree / "src"),
            "--project", "--select", "PRIV-003",
            "--cache-file", str(leaky_tree / "cache.json"),
        ]) == 1
        assert "PRIV-003" in capsys.readouterr().out

"""Project index: module names, imports, resolution, call graph."""

from repro.analysis import ModuleContext
from repro.analysis.project import build_index, module_name_for_path


def _index(modules):
    contexts = [
        ModuleContext.from_source(source, path)
        for path, source in modules.items()
    ]
    return build_index(contexts)


class TestModuleNames:
    def test_src_prefix_is_stripped(self):
        assert (
            module_name_for_path("src/repro/core/generation.py")
            == "repro.core.generation"
        )

    def test_package_init_maps_to_the_package(self):
        assert module_name_for_path("src/repro/core/__init__.py") == "repro.core"

    def test_tests_keep_their_components(self):
        assert (
            module_name_for_path("tests/core/test_x.py") == "tests.core.test_x"
        )

    def test_absolute_tmp_path_recovers_the_package(self):
        assert (
            module_name_for_path("/tmp/pytest-1/copy/repro/parallel/engine.py")
            == "repro.parallel.engine"
        )


class TestResolution:
    def test_import_alias_resolves(self):
        index = _index({
            "src/repro/a.py": "def f():\n    return 1\n",
            "src/repro/b.py": "from repro import a\n\ndef g():\n    return a.f()\n",
        })
        info = index.module_for_path("src/repro/b.py")
        assert index.resolve(info, "a.f") == "repro.a.f"
        resolved = index.resolve_function(info, "a.f")
        assert resolved is not None and resolved.qualname == "repro.a.f"

    def test_package_reexport_chain_resolves(self):
        index = _index({
            "src/repro/pkg/__init__.py": "from repro.pkg.impl import f\n",
            "src/repro/pkg/impl.py": "def f():\n    return 1\n",
            "src/repro/use.py": (
                "from repro import pkg\n\ndef g():\n    return pkg.f()\n"
            ),
        })
        info = index.module_for_path("src/repro/use.py")
        assert index.resolve(info, "pkg.f") == "repro.pkg.impl.f"

    def test_relative_import_resolves_against_the_package(self):
        index = _index({
            "src/repro/core/__init__.py": "",
            "src/repro/core/x.py": "def f():\n    return 1\n",
            "src/repro/core/y.py": (
                "from . import x\n\ndef g():\n    return x.f()\n"
            ),
        })
        info = index.module_for_path("src/repro/core/y.py")
        assert index.resolve(info, "x.f") == "repro.core.x.f"

    def test_self_method_resolves_within_the_class(self):
        index = _index({
            "src/repro/c.py": (
                "class C:\n"
                "    def helper(self):\n"
                "        return 1\n"
                "    def run(self):\n"
                "        return self.helper()\n"
            ),
        })
        graph = index.call_graph()
        assert "repro.c.C.helper" in graph["repro.c.C.run"]


class TestCallGraph:
    def test_reachability_returns_shortest_paths(self):
        index = _index({
            "src/repro/chain.py": (
                "def a():\n    return b()\n"
                "def b():\n    return c()\n"
                "def c():\n    return 1\n"
            ),
        })
        paths = index.reachable_from(["repro.chain.a"])
        assert paths["repro.chain.c"] == [
            "repro.chain.a", "repro.chain.b", "repro.chain.c",
        ]

    def test_worker_roots_found_from_pool_map(self):
        index = _index({
            "src/repro/parallel/eng.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def _work(task):\n    return task\n"
                "def run(tasks):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.map(_work, tasks))\n"
            ),
        })
        assert index.worker_roots() == ["repro.parallel.eng._work"]

    def test_import_graph_tracks_project_edges_only(self):
        index = _index({
            "src/repro/a.py": "import os\n\n\ndef f():\n    return 1\n",
            "src/repro/b.py": "from repro import a\n\n\ndef g():\n    return 2\n",
        })
        graph = index.import_graph()
        assert graph["repro.b"] == {"repro.a"}
        assert graph["repro.a"] == set()

    def test_real_tree_indexes_and_finds_the_shard_worker(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[3] / "src" / "repro"
        contexts = [
            ModuleContext.from_source(
                path.read_text(encoding="utf-8"), str(path)
            )
            for path in sorted(root.rglob("*.py"))
        ]
        index = build_index(contexts)
        assert "repro.parallel.engine._condense_shard" in index.worker_roots()
        reachable = index.reachable_from(index.worker_roots())
        assert "repro.core.condensation.create_condensed_groups" in reachable

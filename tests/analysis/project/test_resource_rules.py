"""RES-001 canaries: must-close over file and durability handles."""

from pathlib import Path

import pytest

from repro.analysis import ModuleContext, get_rules
from repro.analysis.project import build_index

REPO_ROOT = Path(__file__).resolve().parents[3]


def _module(body, path="src/repro/io/leaky.py"):
    return ModuleContext.from_source(body, path)


def _findings(contexts, rule_id="RES-001"):
    index = build_index(contexts)
    [rule] = get_rules(select=[rule_id])
    return list(rule.check_project(index))


@pytest.fixture(scope="module")
def repro_index():
    contexts = [
        ModuleContext.from_source(path.read_text(encoding="utf-8"), str(path))
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py"))
    ]
    return build_index(contexts)


class TestCleanTree:
    def test_real_tree_has_no_res_findings(self, repro_index):
        [rule] = get_rules(select=["RES-001"])
        assert list(rule.check_project(repro_index)) == []


class TestLeaks:
    def test_dropped_handle_fires(self):
        contexts = [_module(
            "def touch(path):\n"
            "    open(path, 'w')\n"
        )]
        [finding] = _findings(contexts)
        assert "immediately dropped" in finding.message
        assert "a writable file handle" in finding.message

    def test_inline_acquisition_fires(self):
        contexts = [_module(
            "import json\n"
            "def load(path):\n"
            "    return json.load(open(path))\n"
        )]
        [finding] = _findings(contexts)
        assert "inside a larger expression" in finding.message

    def test_unreleased_local_fires(self):
        contexts = [_module(
            "def load(path):\n"
            "    handle = open(path)\n"
            "    return handle.read()\n"
        )]
        [finding] = _findings(contexts)
        assert "'handle'" in finding.message
        assert "no with-block" in finding.message

    def test_leaked_wal_writer_fires(self):
        contexts = [_module(
            "from repro.durability.wal import WriteAheadLog\n"
            "def journal(directory, entry):\n"
            "    wal = WriteAheadLog(directory)\n"
            "    wal.append(entry)\n"
        )]
        [finding] = _findings(contexts)
        assert "WriteAheadLog" in finding.message
        assert "owns an open WAL segment" in finding.message

    def test_self_store_without_lifecycle_fires(self):
        contexts = [_module(
            "class Keeper:\n"
            "    def __init__(self, path):\n"
            "        self._handle = open(path, 'a')\n"
        )]
        [finding] = _findings(contexts)
        assert "defines none of close()/__exit__/__del__" in (
            finding.message
        )

    def test_findings_carry_acquisition_traces(self):
        contexts = [_module(
            "def load(path):\n"
            "    handle = open(path)\n"
            "    return handle.read()\n"
        )]
        [finding] = _findings(contexts)
        assert finding.trace[0].startswith("acquire: open()")
        assert finding.trace[-1] == "→ no release on any path"


class TestDisciplines:
    def test_with_block_is_clean(self):
        contexts = [_module(
            "def load(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
        )]
        assert _findings(contexts) == []

    def test_contextlib_closing_is_clean(self):
        contexts = [_module(
            "from contextlib import closing\n"
            "from repro.durability.wal import WriteAheadLog\n"
            "def journal(directory, entry):\n"
            "    with closing(WriteAheadLog(directory)) as wal:\n"
            "        wal.append(entry)\n"
        )]
        assert _findings(contexts) == []

    def test_try_finally_close_is_clean(self):
        contexts = [_module(
            "def load(path):\n"
            "    handle = open(path)\n"
            "    try:\n"
            "        return handle.read()\n"
            "    finally:\n"
            "        handle.close()\n"
        )]
        assert _findings(contexts) == []

    def test_returning_the_handle_transfers_ownership(self):
        contexts = [_module(
            "def acquire(path):\n"
            "    return open(path)\n"
        )]
        assert _findings(contexts) == []

    def test_returning_a_bound_handle_transfers_ownership(self):
        contexts = [_module(
            "def acquire(path):\n"
            "    handle = open(path)\n"
            "    handle.seek(8)\n"
            "    return handle\n"
        )]
        assert _findings(contexts) == []

    def test_attribute_store_transfers_ownership(self):
        # The recover() classmethod pattern: the manager is handed to
        # an object whose lifecycle now covers it.
        contexts = [_module(
            "from repro.durability.manager import DurabilityManager\n"
            "def rebuild(condenser, directory):\n"
            "    manager = DurabilityManager(directory)\n"
            "    condenser._manager = manager\n"
            "    return condenser\n"
        )]
        assert _findings(contexts) == []

    def test_self_store_with_close_is_clean(self):
        contexts = [_module(
            "class Keeper:\n"
            "    def __init__(self, path):\n"
            "        self._handle = open(path, 'a')\n"
            "    def close(self):\n"
            "        self._handle.close()\n"
        )]
        assert _findings(contexts) == []

    def test_test_modules_are_out_of_scope(self):
        contexts = [_module(
            "def helper(path):\n"
            "    handle = open(path)\n"
            "    return handle.read()\n",
            path="tests/io/test_leaky.py",
        )]
        assert _findings(contexts) == []

"""Tier-1 gate for the whole-program pass: the real tree is clean.

Mirrors ``tests/analysis/test_self_clean.py`` one layer up: the project
rules (PRIV-003, DET-001/002/003, FS-001/002/003, CONC-001/002,
RES-001, THR-001..004) must report zero un-baselined findings on
``src/repro`` and ``tests`` with the shipped baseline, and an injected
cross-module leak must be caught with its full path.
"""

import json
import shutil
from pathlib import Path

from repro.analysis import get_rules, run_project
from repro.analysis.project import Baseline
from repro.analysis.reporters import render_text

REPO_ROOT = Path(__file__).resolve().parents[3]
BASELINE = REPO_ROOT / ".repro-lint-baseline.json"

_PROJECT_RULES = [
    "CONC-001", "CONC-002",
    "DET-001", "DET-002", "DET-003",
    "FS-001", "FS-002", "FS-003",
    "PRIV-003",
    "RES-001",
    "THR-001", "THR-002", "THR-003", "THR-004",
]


def _run(paths, tmp_path, baseline=None):
    return run_project(
        paths,
        rules=get_rules(select=_PROJECT_RULES),
        cache_path=tmp_path / "cache.json",
        baseline_path=baseline,
    )


class TestShippedBaseline:
    def test_baseline_file_exists_and_parses(self):
        assert BASELINE.exists()
        Baseline.load(BASELINE)

    def test_src_repro_has_zero_unbaselined_project_findings(self, tmp_path):
        report = _run([REPO_ROOT / "src" / "repro"], tmp_path, BASELINE)
        assert report.errors == []
        assert report.findings == [], "\n" + render_text(report.findings)

    def test_src_and_tests_have_zero_unbaselined_project_findings(
        self, tmp_path
    ):
        report = _run(
            [REPO_ROOT / "src", REPO_ROOT / "tests"], tmp_path, BASELINE
        )
        assert report.errors == []
        assert report.findings == [], "\n" + render_text(report.findings)

    def test_shipped_baseline_carries_no_debt(self):
        # The ratchet starts at zero: nothing in the current tree is
        # grandfathered.  Keep it that way.
        document = json.loads(BASELINE.read_text(encoding="utf-8"))
        assert document["fingerprints"] == {}


class TestInjectedCrossModuleLeak:
    def test_leak_threaded_through_the_real_tree_is_detected(self, tmp_path):
        # Source call injected into core/statistics.py, sink into
        # core/generation.py — the leak only exists across the module
        # boundary, exactly what the per-module pass cannot see.
        tree = tmp_path / "repro"
        shutil.copytree(REPO_ROOT / "src" / "repro", tree)
        statistics = tree / "core" / "statistics.py"
        statistics.write_text(
            statistics.read_text(encoding="utf-8")
            + "\n\ndef _grab_records():\n"
            "    from repro.datasets import load_ionosphere\n"
            "    return load_ionosphere()\n",
            encoding="utf-8",
        )
        generation = tree / "core" / "generation.py"
        generation.write_text(
            generation.read_text(encoding="utf-8")
            + "\n\ndef _debug_dump(out):\n"
            "    from repro.core.statistics import _grab_records\n"
            "    np.savetxt(out, _grab_records())\n",
            encoding="utf-8",
        )
        report = _run([tree], tmp_path)
        assert [f.rule_id for f in report.findings] == ["PRIV-003"]
        [finding] = report.findings
        assert finding.path.endswith("generation.py")
        trace = "\n".join(finding.trace)
        assert "load_ionosphere" in trace
        assert "_grab_records" in trace
        assert "statistics.py" in trace
        assert "savetxt" in trace

"""PRIV-003 taint canaries: leaks fire with full paths, sanctioned flows stay clean."""

from repro.analysis import ModuleContext, get_rules
from repro.analysis.project import build_index


def _priv003(modules):
    contexts = [
        ModuleContext.from_source(source, path)
        for path, source in modules.items()
    ]
    index = build_index(contexts)
    [rule] = get_rules(select=["PRIV-003"])
    return list(rule.check_project(index))


_LOADER = "def load_fake():\n    return [[1.0, 2.0]]\n"


class TestCrossModuleLeak:
    def test_leak_threaded_through_two_modules_fires_with_full_path(self):
        findings = _priv003({
            "src/repro/datasets/gen.py": _LOADER,
            "src/repro/core/a.py": (
                "from repro.datasets.gen import load_fake\n\n"
                "def produce():\n"
                "    return load_fake()\n"
            ),
            "src/repro/core/b.py": (
                "import numpy as np\n"
                "from repro.core.a import produce\n\n"
                "def emit():\n"
                "    data = produce()\n"
                "    np.savetxt('x.txt', data)\n"
            ),
        })
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule_id == "PRIV-003"
        assert finding.path == "src/repro/core/b.py"
        # The trace walks source → intermediate return → sink.
        trace = "\n".join(finding.trace)
        assert "load_fake" in trace
        assert "produce" in trace
        assert "savetxt" in trace
        assert "src/repro/core/a.py" in trace

    def test_entry_param_reaching_telemetry_fires(self):
        findings = _priv003({
            "src/repro/core/c.py": (
                "from repro import telemetry\n\n"
                "def condense(data, k):\n"
                "    with telemetry.span('s') as span:\n"
                "        span.set_attribute('first', data[0])\n"
            ),
        })
        assert [f.rule_id for f in findings] == ["PRIV-003"]
        assert "parameter 'data'" in findings[0].message

    def test_pickle_dump_of_records_fires(self):
        findings = _priv003({
            "src/repro/datasets/gen.py": _LOADER,
            "src/repro/core/d.py": (
                "import pickle\n"
                "from repro.datasets.gen import load_fake\n\n"
                "def stash(path):\n"
                "    rows = load_fake()\n"
                "    with open(path, 'wb') as fh:\n"
                "        pickle.dump(rows, fh)\n"
            ),
        })
        assert [f.rule_id for f in findings] == ["PRIV-003"]


class TestSanctionedFlows:
    def test_aggregation_before_sink_is_clean(self):
        findings = _priv003({
            "src/repro/datasets/gen.py": _LOADER,
            "src/repro/core/e.py": (
                "import numpy as np\n"
                "from repro.datasets.gen import load_fake\n\n"
                "def summarize(path):\n"
                "    data = np.asarray(load_fake())\n"
                "    stats = data.mean(axis=0)\n"
                "    np.savetxt(path, stats)\n"
            ),
        })
        assert findings == []

    def test_matrix_product_sanitizes(self):
        findings = _priv003({
            "src/repro/core/f.py": (
                "import numpy as np\n\n"
                "def second_moment(data, out):\n"
                "    sc = data.T @ data\n"
                "    np.savetxt(out, sc)\n"
            ),
        })
        assert findings == []

    def test_sinks_in_sanctioned_modules_are_clean(self):
        findings = _priv003({
            "src/repro/datasets/gen.py": _LOADER,
            "src/repro/io/writer.py": (
                "import numpy as np\n"
                "from repro.datasets.gen import load_fake\n\n"
                "def write_fake(path):\n"
                "    np.savetxt(path, load_fake())\n"
            ),
        })
        assert findings == []

    def test_metadata_attributes_drop_taint(self):
        findings = _priv003({
            "src/repro/core/g.py": (
                "from repro import telemetry\n\n"
                "def condense(data, k):\n"
                "    n = data.shape[0]\n"
                "    telemetry.counter_inc('records', n)\n"
            ),
        })
        assert findings == []

    def test_unpacking_narrows_taint_to_record_named_targets(self):
        # Shard task tuples carry scalars next to the records; only the
        # record-named element keeps taint through the unpack.
        findings = _priv003({
            "src/repro/core/h.py": (
                "import numpy as np\n\n"
                "def run(task, out):\n"
                "    records, k, strategy = task\n"
                "    np.savetxt(out, k)\n"
            ),
            "src/repro/core/i.py": (
                "from repro.core.h import run\n"
                "from repro.datasets.gen import load_fake\n\n"
                "def drive(out):\n"
                "    data = load_fake()\n"
                "    run((data, 3, 'seq'), out)\n"
            ),
            "src/repro/datasets/gen.py": _LOADER,
        })
        assert findings == []

    def test_record_named_unpack_target_keeps_taint(self):
        findings = _priv003({
            "src/repro/core/j.py": (
                "import numpy as np\n\n"
                "def run(task, out):\n"
                "    records, k = task\n"
                "    np.savetxt(out, records)\n"
            ),
            "src/repro/core/k.py": (
                "from repro.core.j import run\n"
                "from repro.datasets.gen import load_fake\n\n"
                "def drive(out):\n"
                "    run((load_fake(), 3), out)\n"
            ),
            "src/repro/datasets/gen.py": _LOADER,
        })
        assert [f.rule_id for f in findings] == ["PRIV-003"]


class TestRealTree:
    def test_generation_path_stays_clean_on_the_real_tree(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[3] / "src" / "repro"
        modules = {
            str(path): path.read_text(encoding="utf-8")
            for path in sorted(root.rglob("*.py"))
        }
        # check_project sees raw findings; the runner filters the one
        # justified PRIV-003 suppression — the mmap-fallback payload
        # spill in parallel/shm.py, an in-flight worker hand-off whose
        # files are unlinked when the run ends, not anonymized output.
        # Nothing else may surface.
        sites = sorted(
            Path(finding.path).name for finding in _priv003(modules)
        )
        assert sites == ["shm.py"]

"""FS-001/002/003 canaries: the durability write/read protocol."""

import shutil
from pathlib import Path

import pytest

from repro.analysis import ModuleContext, get_rules, run_project
from repro.analysis.project import Baseline, build_index

REPO_ROOT = Path(__file__).resolve().parents[3]

_PREAMBLE = "import json\nimport os\nimport zlib\n"


def _durability_module(body, name="vandal"):
    return ModuleContext.from_source(
        _PREAMBLE + body, f"src/repro/durability/{name}.py"
    )


def _findings(contexts, rule_id):
    index = build_index(contexts)
    [rule] = get_rules(select=[rule_id])
    return list(rule.check_project(index))


@pytest.fixture(scope="module")
def repro_index():
    contexts = [
        ModuleContext.from_source(path.read_text(encoding="utf-8"), str(path))
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py"))
    ]
    return build_index(contexts)


class TestCleanTree:
    @pytest.mark.parametrize("rule_id", ["FS-001", "FS-002", "FS-003"])
    def test_real_tree_has_no_fs_findings(self, repro_index, rule_id):
        [rule] = get_rules(select=[rule_id])
        assert list(rule.check_project(repro_index)) == []


class TestAtomicWrite:
    def test_final_path_write_fires(self):
        contexts = [_durability_module(
            "def publish(path, state):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(json.dumps(state))\n"
        )]
        [finding] = _findings(contexts, "FS-001")
        assert "final path" in finding.message
        assert "os.replace" in finding.message
        assert finding.path.endswith("vandal.py")

    def test_orphaned_temp_file_fires(self):
        contexts = [_durability_module(
            "def publish(path, state):\n"
            "    temporary = path.with_suffix('.tmp')\n"
            "    with open(temporary, 'w') as handle:\n"
            "        handle.write(json.dumps(state))\n"
            "        handle.flush()\n"
            "        os.fsync(handle.fileno())\n"
        )]
        [finding] = _findings(contexts, "FS-001")
        assert "never os.replace()d" in finding.message

    def test_full_protocol_is_clean(self):
        contexts = [_durability_module(
            "def publish(path, state):\n"
            "    temporary = path.with_suffix('.tmp')\n"
            "    with open(temporary, 'w') as handle:\n"
            "        handle.write(json.dumps(state))\n"
            "        handle.flush()\n"
            "        os.fsync(handle.fileno())\n"
            "    os.replace(temporary, path)\n"
        )]
        assert _findings(contexts, "FS-001") == []

    def test_append_mode_is_exempt(self):
        # The WAL's append protocol publishes incrementally; its
        # durability comes from fsync cadence, not a rename.
        contexts = [_durability_module(
            "def journal(path, line):\n"
            "    with open(path, 'a') as handle:\n"
            "        handle.write(line)\n"
        )]
        assert _findings(contexts, "FS-001") == []

    def test_read_mode_is_exempt(self):
        contexts = [_durability_module(
            "def load(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
        )]
        assert _findings(contexts, "FS-001") == []

    def test_findings_carry_a_durability_trace(self):
        contexts = [_durability_module(
            "def publish(path, state):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(json.dumps(state))\n"
        )]
        [finding] = _findings(contexts, "FS-001")
        assert finding.trace
        assert finding.trace[0].startswith("durability ")
        assert "publish" in finding.trace[0]


class TestFsyncBeforeRename:
    def test_replace_without_fsync_fires(self):
        contexts = [_durability_module(
            "def publish(path, state):\n"
            "    temporary = path.with_suffix('.tmp')\n"
            "    with open(temporary, 'w') as handle:\n"
            "        handle.write(json.dumps(state))\n"
            "    os.replace(temporary, path)\n"
        )]
        [finding] = _findings(contexts, "FS-002")
        assert "no preceding os.fsync()" in finding.message
        assert "hollow file" in finding.message

    def test_fsync_after_the_rename_fires(self):
        contexts = [_durability_module(
            "def publish(path, state):\n"
            "    temporary = path.with_suffix('.tmp')\n"
            "    with open(temporary, 'w') as handle:\n"
            "        handle.write(json.dumps(state))\n"
            "    os.replace(temporary, path)\n"
            "    with open(path) as handle:\n"
            "        os.fsync(handle.fileno())\n"
        )]
        [finding] = _findings(contexts, "FS-002")
        assert "before the os.fsync()" in finding.message

    def test_os_rename_is_flagged_in_favor_of_replace(self):
        contexts = [_durability_module(
            "def publish(path, state):\n"
            "    temporary = path.with_suffix('.tmp')\n"
            "    with open(temporary, 'w') as handle:\n"
            "        handle.write(json.dumps(state))\n"
            "        handle.flush()\n"
            "        os.fsync(handle.fileno())\n"
            "    os.rename(temporary, path)\n"
        )]
        [finding] = _findings(contexts, "FS-002")
        assert "use os.replace()" in finding.message

    def test_synced_replace_is_clean(self):
        contexts = [_durability_module(
            "def publish(path, state):\n"
            "    temporary = path.with_suffix('.tmp')\n"
            "    with open(temporary, 'w') as handle:\n"
            "        handle.write(json.dumps(state))\n"
            "        handle.flush()\n"
            "        os.fsync(handle.fileno())\n"
            "    os.replace(temporary, path)\n"
        )]
        assert _findings(contexts, "FS-002") == []


class TestCrcBeforeUse:
    def test_unvalidated_parse_fires(self):
        contexts = [_durability_module(
            "def load(path):\n"
            "    with open(path) as handle:\n"
            "        return json.loads(handle.read())\n"
        )]
        [finding] = _findings(contexts, "FS-003")
        assert "no preceding CRC validation" in finding.message

    def test_crc_checked_parse_is_clean(self):
        contexts = [_durability_module(
            "def load(line):\n"
            "    stated, body = line.split(' ', 1)\n"
            "    if int(stated, 16) != zlib.crc32(body.encode()):\n"
            "        return None\n"
            "    return json.loads(body)\n"
        )]
        assert _findings(contexts, "FS-003") == []

    def test_round_tripping_own_dumps_is_exempt(self):
        contexts = [_durability_module(
            "def deep_copy(state):\n"
            "    return json.loads(json.dumps(state))\n"
        )]
        assert _findings(contexts, "FS-003") == []

    def test_scope_stops_at_the_durability_package(self):
        # The closure reaches helpers outside repro.durability, but the
        # CRC-framing contract only binds formats the package owns.
        helper = ModuleContext.from_source(
            "import json\n"
            "def parse(text):\n"
            "    return json.loads(text)\n",
            "src/repro/io/parsehelp.py",
        )
        caller = _durability_module(
            "from repro.io.parsehelp import parse\n"
            "def load(line):\n"
            "    return parse(line)\n"
        )
        assert _findings([caller, helper], "FS-003") == []


class TestVandalizedSnapshotWriter:
    def test_stripping_the_protocol_from_the_real_writer_is_caught(
        self, tmp_path
    ):
        # The canonical canary: take the real atomic snapshot writer
        # and break its protocol; the FS pass must notice both the
        # missing fsync and the downgraded rename.
        tree = tmp_path / "repro"
        shutil.copytree(REPO_ROOT / "src" / "repro", tree)
        snapshot = tree / "durability" / "snapshot.py"
        source = snapshot.read_text(encoding="utf-8")
        assert "os.fsync(handle.fileno())" in source
        assert "os.replace(temporary, final)" in source
        source = source.replace(
            "            os.fsync(handle.fileno())\n", ""
        )
        source = source.replace(
            "os.replace(temporary, final)", "os.rename(temporary, final)"
        )
        snapshot.write_text(source, encoding="utf-8")
        contexts = [
            ModuleContext.from_source(
                path.read_text(encoding="utf-8"), str(path)
            )
            for path in sorted(tree.rglob("*.py"))
        ]
        messages = [f.message for f in _findings(contexts, "FS-002")]
        assert any("use os.replace()" in message for message in messages)
        assert any(
            "no preceding os.fsync()" in message for message in messages
        )


class TestSuppressionAndBaseline:
    def _vandal_tree(self, tmp_path, suppress=False):
        package = tmp_path / "repro" / "durability"
        package.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        comment = (
            "    # repro-lint: disable-next=FS-001 -- canary\n"
            if suppress else ""
        )
        (package / "vandal.py").write_text(
            "import json\n"
            "def publish(path, state):\n"
            + comment +
            "    with open(path, 'w') as handle:\n"
            "        handle.write(json.dumps(state))\n",
            encoding="utf-8",
        )
        return tmp_path / "repro"

    def test_suppression_comment_silences_the_finding(self, tmp_path):
        tree = self._vandal_tree(tmp_path, suppress=True)
        report = run_project(
            [tree], rules=get_rules(select=["FS-001"]),
            cache_path=tmp_path / "cache.json",
        )
        assert report.findings == []
        assert report.suppressed == {"FS-001": 1}

    def test_baseline_grandfathers_then_ratchets(self, tmp_path):
        tree = self._vandal_tree(tmp_path)
        report = run_project(
            [tree], rules=get_rules(select=["FS-001"]),
            cache_path=tmp_path / "cache.json",
        )
        assert [f.rule_id for f in report.findings] == ["FS-001"]
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(report.findings).save(baseline_path)
        again = run_project(
            [tree], rules=get_rules(select=["FS-001"]),
            cache_path=tmp_path / "cache2.json",
            baseline_path=baseline_path,
        )
        assert again.findings == []
        assert again.baselined == 1

"""CONC-001/002 canaries: share-safety of the parallel boundary."""

from pathlib import Path

import pytest

from repro.analysis import ModuleContext, get_rules
from repro.analysis.project import build_index

REPO_ROOT = Path(__file__).resolve().parents[3]

_POOL = "from concurrent.futures import ProcessPoolExecutor\n"


def _engine_module(body, name="eng"):
    return ModuleContext.from_source(
        body, f"src/repro/parallel/{name}.py"
    )


def _findings(contexts, rule_id):
    index = build_index(contexts)
    [rule] = get_rules(select=[rule_id])
    return list(rule.check_project(index))


@pytest.fixture(scope="module")
def repro_index():
    contexts = [
        ModuleContext.from_source(path.read_text(encoding="utf-8"), str(path))
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py"))
    ]
    return build_index(contexts)


class TestCleanTree:
    @pytest.mark.parametrize("rule_id", ["CONC-001", "CONC-002"])
    def test_real_tree_has_no_conc_findings(self, repro_index, rule_id):
        [rule] = get_rules(select=[rule_id])
        assert list(rule.check_project(repro_index)) == []


class TestWorkerPayloadMutation:
    def test_direct_mutation_of_unpacked_payload_fires(self):
        contexts = [_engine_module(
            _POOL +
            "def _work(task):\n"
            "    records, k = task\n"
            "    records[0] = 0\n"
            "    records.sort()\n"
            "    return records\n"
            "def run(tasks):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_work, tasks))\n"
        )]
        findings = _findings(contexts, "CONC-001")
        assert len(findings) == 2  # the store and the mutator call
        for finding in findings:
            assert "'records'" in finding.message
            assert "_work()" in finding.message
            assert finding.trace[0].startswith("worker ")

    def test_augmented_assignment_through_payload_fires(self):
        contexts = [_engine_module(
            _POOL +
            "def _work(task):\n"
            "    task['count'] += 1\n"
            "    return task\n"
            "def run(tasks):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_work, tasks))\n"
        )]
        assert len(_findings(contexts, "CONC-001")) == 1

    def test_callee_mutating_its_parameter_is_caught(self):
        helper = ModuleContext.from_source(
            "def scribble(payload):\n"
            "    payload.append(1)\n",
            "src/repro/parallel/helper.py",
        )
        engine = _engine_module(
            _POOL +
            "from repro.parallel.helper import scribble\n"
            "def _work(task):\n"
            "    scribble(task)\n"
            "    return task\n"
            "def run(tasks):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_work, tasks))\n"
        )
        [finding] = _findings([engine, helper], "CONC-001")
        assert "scribble" in finding.message
        trace = "\n".join(finding.trace)
        assert "worker repro.parallel.eng._work()" in trace
        assert "mutates parameter 'payload'" in trace

    def test_mutating_a_local_copy_is_clean(self):
        contexts = [_engine_module(
            _POOL +
            "def _work(task):\n"
            "    records, k = task\n"
            "    out = list(records)\n"
            "    out.append(k)\n"
            "    out.sort()\n"
            "    return out\n"
            "def run(tasks):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_work, tasks))\n"
        )]
        assert _findings(contexts, "CONC-001") == []

    def test_unsubmitted_functions_are_out_of_scope(self):
        # Mutating an argument is only a CONC violation for functions
        # that actually cross the pool boundary.
        contexts = [_engine_module(
            "def helper(records):\n"
            "    records.append(1)\n"
        )]
        assert _findings(contexts, "CONC-001") == []


class TestWorkerCapturedResource:
    def test_captured_rng_fires(self):
        contexts = [_engine_module(
            _POOL +
            "import numpy as np\n"
            "def _work(task, rng):\n"
            "    return rng.random()\n"
            "def run(tasks):\n"
            "    rng = np.random.default_rng(0)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(_work, task, rng)\n"
            "                for task in tasks]\n"
        )]
        [finding] = _findings(contexts, "CONC-002")
        assert "live RNG state" in finding.message
        assert finding.trace[0].startswith("submission in ")

    def test_captured_file_handle_fires(self):
        contexts = [_engine_module(
            _POOL +
            "def _work(task, handle):\n"
            "    return handle.read()\n"
            "def run(tasks, path):\n"
            "    handle = open(path)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(_work, task, handle)\n"
            "                for task in tasks]\n"
        )]
        [finding] = _findings(contexts, "CONC-002")
        assert "an open file handle" in finding.message
        assert "'handle'" in "\n".join(finding.trace)

    def test_captured_wal_writer_fires(self):
        contexts = [_engine_module(
            _POOL +
            "from repro.durability.wal import WriteAheadLog\n"
            "def run(tasks, directory):\n"
            "    wal = WriteAheadLog(directory)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(_work, task, wal)\n"
            "                for task in tasks]\n"
        )]
        [finding] = _findings(contexts, "CONC-002")
        assert "a live WriteAheadLog" in finding.message

    def test_inline_acquisition_in_payload_fires(self):
        contexts = [_engine_module(
            _POOL +
            "def run(tasks, path):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(_work, task, open(path))\n"
            "                for task in tasks]\n"
        )]
        [finding] = _findings(contexts, "CONC-002")
        assert "acquired inline" in "\n".join(finding.trace)

    def test_seed_sequences_are_the_sanctioned_boundary_object(self):
        contexts = [_engine_module(
            _POOL +
            "from repro.linalg.rng import spawn_seed_sequences\n"
            "def run(tasks):\n"
            "    sequences = spawn_seed_sequences(0, len(tasks))\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(_work, task, sequence)\n"
            "                for task, sequence in zip(tasks, sequences)]\n"
        )]
        assert _findings(contexts, "CONC-002") == []

    def test_rebinding_to_a_benign_value_clears_the_taint(self):
        contexts = [_engine_module(
            _POOL +
            "def run(tasks, path):\n"
            "    handle = open(path)\n"
            "    handle.close()\n"
            "    handle = str(path)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(_work, task, handle)\n"
            "                for task in tasks]\n"
        )]
        assert _findings(contexts, "CONC-002") == []

    def test_submissions_outside_the_parallel_package_are_out_of_scope(
        self,
    ):
        contexts = [ModuleContext.from_source(
            _POOL +
            "import numpy as np\n"
            "def run(tasks):\n"
            "    rng = np.random.default_rng(0)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(_work, task, rng)\n"
            "                for task in tasks]\n",
            "src/repro/quality/offside.py",
        )]
        assert _findings(contexts, "CONC-002") == []

"""DOC-002 canaries: parallel export surface vs the docs corpus."""

from pathlib import Path

import pytest

from repro.analysis import ModuleContext, get_rules
from repro.analysis.project import build_index

REPO_ROOT = Path(__file__).resolve().parents[3]


def findings_for(contexts):
    index = build_index(contexts)
    [rule] = get_rules(select=["DOC-002"])
    return list(rule.check_project(index))


def fake_repo(tmp_path, exports, parallel_md=None, api_md=None):
    """Lay out a minimal repo and return its parsed module contexts."""
    package = tmp_path / "src" / "repro" / "parallel"
    package.mkdir(parents=True)
    source = "__all__ = [\n" + "".join(
        f"    {name!r},\n" for name in exports
    ) + "]\n"
    init = package / "__init__.py"
    init.write_text(source, encoding="utf-8")
    docs = tmp_path / "docs"
    docs.mkdir()
    if parallel_md is not None:
        (docs / "parallel.md").write_text(parallel_md, encoding="utf-8")
    if api_md is not None:
        (docs / "api.md").write_text(api_md, encoding="utf-8")
    return [ModuleContext.from_source(source, str(init))]


@pytest.fixture(scope="module")
def repro_index():
    contexts = [
        ModuleContext.from_source(
            path.read_text(encoding="utf-8"), str(path)
        )
        for path in sorted(
            (REPO_ROOT / "src" / "repro").rglob("*.py")
        )
    ]
    return build_index(contexts)


class TestSeededClean:
    def test_real_tree_has_no_doc_coverage_findings(self, repro_index):
        [rule] = get_rules(select=["DOC-002"])
        assert list(rule.check_project(repro_index)) == []


class TestViolations:
    def test_undocumented_export_fires(self, tmp_path):
        contexts = fake_repo(
            tmp_path, ["condense_sharded", "WorkerPool"],
            parallel_md="`condense_sharded` is the engine.\n",
        )
        [finding] = findings_for(contexts)
        assert finding.rule_id == "DOC-002"
        assert "'WorkerPool'" in finding.message
        assert "docs/parallel.md" in finding.message

    def test_mention_in_api_md_satisfies(self, tmp_path):
        contexts = fake_repo(
            tmp_path, ["WorkerPool"],
            parallel_md="nothing here\n",
            api_md="### `WorkerPool`\n",
        )
        assert findings_for(contexts) == []

    def test_substring_mention_does_not_satisfy(self, tmp_path):
        contexts = fake_repo(
            tmp_path, ["WorkerPool"],
            parallel_md="the WorkerPools concept (plural) only\n",
        )
        [finding] = findings_for(contexts)
        assert "'WorkerPool'" in finding.message

    def test_finding_anchors_to_the_all_entry(self, tmp_path):
        contexts = fake_repo(
            tmp_path, ["documented", "missing"],
            parallel_md="documented\n",
        )
        [finding] = findings_for(contexts)
        # __all__ opens on line 1; 'missing' is its second element.
        assert finding.line == 3


class TestQuietPaths:
    def test_no_docs_directory_yields_nothing(self, tmp_path):
        package = tmp_path / "src" / "repro" / "parallel"
        package.mkdir(parents=True)
        source = "__all__ = ['WorkerPool']\n"
        init = package / "__init__.py"
        init.write_text(source, encoding="utf-8")
        contexts = [ModuleContext.from_source(source, str(init))]
        assert findings_for(contexts) == []

    def test_no_all_literal_yields_nothing(self, tmp_path):
        package = tmp_path / "src" / "repro" / "parallel"
        package.mkdir(parents=True)
        source = "WorkerPool = object()\n"
        init = package / "__init__.py"
        init.write_text(source, encoding="utf-8")
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "parallel.md").write_text(
            "docs\n", encoding="utf-8"
        )
        contexts = [ModuleContext.from_source(source, str(init))]
        assert findings_for(contexts) == []

    def test_other_packages_are_out_of_scope(self, tmp_path):
        package = tmp_path / "src" / "repro" / "core"
        package.mkdir(parents=True)
        source = "__all__ = ['undocumented_thing']\n"
        init = package / "__init__.py"
        init.write_text(source, encoding="utf-8")
        contexts = [ModuleContext.from_source(source, str(init))]
        assert findings_for(contexts) == []

"""DET canaries injected into a copy of the real ``parallel/engine.py``."""

import shutil
from pathlib import Path

import pytest

from repro.analysis import ModuleContext, get_rules
from repro.analysis.project import build_index

REPO_ROOT = Path(__file__).resolve().parents[3]
WORKER_LINE = "    records, k, strategy, sequence = task"


def _contexts_for_tree(root):
    return [
        ModuleContext.from_source(path.read_text(encoding="utf-8"), str(path))
        for path in sorted(Path(root).rglob("*.py"))
    ]


def _det_findings(contexts, rule_id):
    index = build_index(contexts)
    [rule] = get_rules(select=[rule_id])
    return list(rule.check_project(index))


@pytest.fixture(scope="module")
def repro_copy(tmp_path_factory):
    """A scratch copy of ``src/repro`` whose engine can be vandalized."""
    destination = tmp_path_factory.mktemp("tree") / "repro"
    shutil.copytree(REPO_ROOT / "src" / "repro", destination)
    return destination


def _inject_into_worker(tree, header_lines, body_lines):
    """Add lines to the copy's ``_condense_shard`` body (and imports)."""
    engine = tree / "parallel" / "engine.py"
    source = engine.read_text(encoding="utf-8")
    assert WORKER_LINE in source
    injected = source.replace(
        WORKER_LINE,
        WORKER_LINE + "\n" + "\n".join(f"    {line}" for line in body_lines),
    )
    injected = "\n".join(header_lines) + "\n" + injected
    engine.write_text(injected, encoding="utf-8")


class TestCleanEngine:
    @pytest.mark.parametrize("rule_id", ["DET-001", "DET-002"])
    def test_real_tree_has_no_det_findings(self, rule_id):
        contexts = _contexts_for_tree(REPO_ROOT / "src" / "repro")
        assert _det_findings(contexts, rule_id) == []

    def test_real_tree_raw_det003_findings_are_only_suppressed_sites(self):
        # check_project sees raw findings; the runner filters the six
        # justified DET-003 suppressions — the shared-pool registry in
        # pool.py (coordinator-only; the worker-reachability is a
        # call-graph over-approximation through create_condensed_groups),
        # the worker-local attachment cache in shm.py (pure memoization
        # of a read-only view), and the stale mmap-dir retry registry in
        # shm.py (coordinator-only: publish/close/atexit paths).
        # Nothing else may surface.
        contexts = _contexts_for_tree(REPO_ROOT / "src" / "repro")
        sites = sorted(
            Path(finding.path).name
            for finding in _det_findings(contexts, "DET-003")
        )
        assert sites == [
            "pool.py", "pool.py", "shm.py", "shm.py", "shm.py", "shm.py",
        ]


class TestInjectedCanaries:
    @pytest.fixture(scope="class")
    def vandalized(self, repro_copy):
        _inject_into_worker(
            repro_copy,
            header_lines=[
                "import time as _time_mod",
                "import random as _random_mod",
                "import os as _os_mod",
                "_SHARD_LOG = {}",
            ],
            body_lines=[
                "_stamp = _time_mod.time()",
                "_jitter = _random_mod.random()",
                "_pid = _os_mod.getpid()",
                "_SHARD_LOG['last'] = _stamp",
            ],
        )
        return _contexts_for_tree(repro_copy)

    def test_wall_clock_read_fires_det_001(self, vandalized):
        findings = _det_findings(vandalized, "DET-001")
        messages = [finding.message for finding in findings]
        assert any("time.time()" in message for message in messages)
        assert any("os.getpid()" in message for message in messages)

    def test_stdlib_random_fires_det_002(self, vandalized):
        findings = _det_findings(vandalized, "DET-002")
        assert any(
            "random.random()" in finding.message for finding in findings
        )

    def test_module_state_mutation_fires_det_003(self, vandalized):
        findings = _det_findings(vandalized, "DET-003")
        assert any("_SHARD_LOG" in finding.message for finding in findings)

    def test_findings_carry_the_worker_call_path(self, vandalized):
        for rule_id in ("DET-001", "DET-002", "DET-003"):
            for finding in _det_findings(vandalized, rule_id):
                assert finding.trace
                assert finding.trace[0].startswith("worker ")
                assert "_condense_shard" in finding.trace[0]


class TestExemptions:
    def test_monotonic_timers_stay_legal(self):
        contexts = [ModuleContext.from_source(
            "import time\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def _work(task):\n"
            "    t = time.perf_counter()\n"
            "    m = time.monotonic()\n"
            "    return task\n"
            "def run(tasks):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(_work, tasks))\n",
            "src/repro/parallel/eng.py",
        )]
        assert _det_findings(contexts, "DET-001") == []

    def test_violation_deep_in_the_call_chain_is_reached(self):
        contexts = [
            ModuleContext.from_source(
                "from concurrent.futures import ProcessPoolExecutor\n"
                "from repro.helper import deep\n"
                "def _work(task):\n"
                "    return deep(task)\n"
                "def run(tasks):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.map(_work, tasks))\n",
                "src/repro/parallel/eng.py",
            ),
            ModuleContext.from_source(
                "import time\n\ndef deep(task):\n    return time.time()\n",
                "src/repro/helper.py",
            ),
        ]
        findings = _det_findings(contexts, "DET-001")
        assert len(findings) == 1
        assert findings[0].path == "src/repro/helper.py"
        assert "→ repro.helper.deep()" in findings[0].trace

"""Text and JSON report rendering."""

import json

from repro.analysis import (
    JSON_SCHEMA_VERSION,
    Finding,
    render_json,
    render_text,
)


def _sample_findings():
    return [
        Finding(
            path="src/repro/core/x.py", line=3, column=0,
            rule_id="RNG-001", message="global state",
        ),
        Finding(
            path="src/repro/core/x.py", line=9, column=4,
            rule_id="PRIV-001", message="raw records",
        ),
        Finding(
            path="src/repro/stream/y.py", line=1, column=0,
            rule_id="RNG-001", message="global state",
        ),
    ]


class TestText:
    def test_clean_summary(self):
        assert render_text([]) == "0 findings — clean"

    def test_findings_render_one_line_each_plus_summary(self):
        text = render_text(_sample_findings())
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0] == "src/repro/core/x.py:3:0: RNG-001 global state"
        assert "3 finding(s), 0 error(s)" in lines[-1]
        assert "RNG-001: 2" in lines[-1]
        assert "PRIV-001: 1" in lines[-1]

    def test_errors_render_and_count(self):
        text = render_text([], errors=["bad.py: invalid syntax"])
        assert "error: bad.py: invalid syntax" in text
        assert "0 finding(s), 1 error(s)" in text


class TestJson:
    def test_schema(self):
        document = json.loads(
            render_json(_sample_findings(), errors=["bad.py: boom"])
        )
        assert document["schema_version"] == JSON_SCHEMA_VERSION
        assert set(document) == {
            "schema_version", "summary", "findings", "errors",
        }
        assert document["summary"] == {
            "files_with_findings": 2,
            "total": 3,
            "by_rule": {"PRIV-001": 1, "RNG-001": 2},
            "suppressed": {},
            "suppressed_total": 0,
            "baselined": 0,
        }
        assert document["errors"] == ["bad.py: boom"]
        first = document["findings"][0]
        assert set(first) == {"path", "line", "column", "rule_id", "message"}
        assert first["line"] == 3

    def test_zero_filled_by_rule_and_extras(self):
        document = json.loads(render_json(
            _sample_findings(),
            suppressed={"PRIV-001": 2},
            baselined=4,
            rules_run=["RNG-001", "PRIV-001", "PRIV-003"],
            stats={"cache_hit": True},
        ))
        assert document["summary"]["by_rule"] == {
            "PRIV-001": 1, "PRIV-003": 0, "RNG-001": 2,
        }
        assert document["summary"]["suppressed_total"] == 2
        assert document["summary"]["baselined"] == 4
        assert document["stats"] == {"cache_hit": True}

    def test_trace_round_trips(self):
        finding = Finding(
            path="src/repro/cli.py", line=5, column=0,
            rule_id="PRIV-003", message="leak",
            trace=("from a", "to b"),
        )
        document = json.loads(render_json([finding]))
        assert document["findings"][0]["trace"] == ["from a", "to b"]
        text = render_text([finding])
        assert "    from a\n    to b" in text

    def test_clean_document(self):
        document = json.loads(render_json([]))
        assert document["summary"]["total"] == 0
        assert document["findings"] == []
        assert document["errors"] == []

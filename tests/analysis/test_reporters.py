"""Text, JSON, and SARIF report rendering."""

import json

import repro
from repro.analysis import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    Finding,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.project.baseline import fingerprint


def _sample_findings():
    return [
        Finding(
            path="src/repro/core/x.py", line=3, column=0,
            rule_id="RNG-001", message="global state",
        ),
        Finding(
            path="src/repro/core/x.py", line=9, column=4,
            rule_id="PRIV-001", message="raw records",
        ),
        Finding(
            path="src/repro/stream/y.py", line=1, column=0,
            rule_id="RNG-001", message="global state",
        ),
    ]


class TestText:
    def test_clean_summary(self):
        assert render_text([]) == "0 findings — clean"

    def test_findings_render_one_line_each_plus_summary(self):
        text = render_text(_sample_findings())
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0] == "src/repro/core/x.py:3:0: RNG-001 global state"
        assert "3 finding(s), 0 error(s)" in lines[-1]
        assert "RNG-001: 2" in lines[-1]
        assert "PRIV-001: 1" in lines[-1]

    def test_errors_render_and_count(self):
        text = render_text([], errors=["bad.py: invalid syntax"])
        assert "error: bad.py: invalid syntax" in text
        assert "0 finding(s), 1 error(s)" in text


class TestJson:
    def test_schema(self):
        document = json.loads(
            render_json(_sample_findings(), errors=["bad.py: boom"])
        )
        assert document["schema_version"] == JSON_SCHEMA_VERSION
        assert set(document) == {
            "schema_version", "summary", "findings", "errors",
        }
        assert document["summary"] == {
            "files_with_findings": 2,
            "total": 3,
            "by_rule": {"PRIV-001": 1, "RNG-001": 2},
            "suppressed": {},
            "suppressed_total": 0,
            "baselined": 0,
        }
        assert document["errors"] == ["bad.py: boom"]
        first = document["findings"][0]
        assert set(first) == {"path", "line", "column", "rule_id", "message"}
        assert first["line"] == 3

    def test_zero_filled_by_rule_and_extras(self):
        document = json.loads(render_json(
            _sample_findings(),
            suppressed={"PRIV-001": 2},
            baselined=4,
            rules_run=["RNG-001", "PRIV-001", "PRIV-003"],
            stats={"cache_hit": True},
        ))
        assert document["summary"]["by_rule"] == {
            "PRIV-001": 1, "PRIV-003": 0, "RNG-001": 2,
        }
        assert document["summary"]["suppressed_total"] == 2
        assert document["summary"]["baselined"] == 4
        assert document["stats"] == {"cache_hit": True}

    def test_trace_round_trips(self):
        finding = Finding(
            path="src/repro/cli.py", line=5, column=0,
            rule_id="PRIV-003", message="leak",
            trace=("from a", "to b"),
        )
        document = json.loads(render_json([finding]))
        assert document["findings"][0]["trace"] == ["from a", "to b"]
        text = render_text([finding])
        assert "    from a\n    to b" in text

    def test_clean_document(self):
        document = json.loads(render_json([]))
        assert document["summary"]["total"] == 0
        assert document["findings"] == []
        assert document["errors"] == []


class TestSarif:
    def test_envelope_is_valid_sarif_2_1_0(self):
        document = json.loads(render_sarif(_sample_findings()))
        assert document["version"] == SARIF_VERSION == "2.1.0"
        assert document["$schema"].endswith("sarif-2.1.0.json")
        [run] = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert driver["version"] == repro.__version__

    def test_results_carry_locations_and_fingerprints(self):
        findings = _sample_findings()
        document = json.loads(render_sarif(findings))
        [run] = document["runs"]
        results = run["results"]
        assert len(results) == len(findings)
        first, finding = results[0], findings[0]
        assert first["ruleId"] == finding.rule_id
        assert first["level"] == "error"
        assert first["message"]["text"] == finding.message
        [location] = first["locations"]
        region = location["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        # SARIF columns are 1-based; Finding columns are 0-based.
        assert region["startColumn"] == finding.column + 1
        assert first["partialFingerprints"]["reproLint/v1"] \
            == fingerprint(finding)

    def test_rule_metadata_indexes_results(self):
        findings = _sample_findings()
        document = json.loads(render_sarif(
            findings, rules_run=["RNG-001", "PRIV-001"],
        ))
        [run] = document["runs"]
        rules = run["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        assert set(ids) == {"RNG-001", "PRIV-001"}
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]

    def test_trace_folds_into_the_message(self):
        finding = Finding(
            path="src/repro/cli.py", line=5, column=0,
            rule_id="PRIV-003", message="leak",
            trace=("from a", "to b"),
        )
        document = json.loads(render_sarif([finding]))
        text = document["runs"][0]["results"][0]["message"]["text"]
        assert "leak" in text
        assert "from a" in text and "to b" in text

    def test_errors_become_tool_notifications(self):
        document = json.loads(
            render_sarif([], errors=["bad.py: invalid syntax"])
        )
        [invocation] = document["runs"][0]["invocations"]
        assert invocation["executionSuccessful"] is False
        [note] = invocation["toolExecutionNotifications"]
        assert note["message"]["text"] == "bad.py: invalid syntax"

    def test_clean_run_is_successful_with_properties(self):
        document = json.loads(render_sarif(
            [], suppressed={"THR-003": 2}, baselined=1,
            stats={"cache_hit": True},
        ))
        [run] = document["runs"]
        assert run["results"] == []
        [invocation] = run["invocations"]
        assert invocation["executionSuccessful"] is True
        assert run["properties"]["suppressed"] == {"THR-003": 2}
        assert run["properties"]["baselined"] == 1
        assert run["properties"]["stats"] == {"cache_hit": True}

    def test_windows_paths_normalize_to_uri_slashes(self):
        finding = Finding(
            path="src\\repro\\core\\x.py", line=1, column=0,
            rule_id="RNG-001", message="global state",
        )
        document = json.loads(render_sarif([finding]))
        [result] = document["runs"][0]["results"]
        uri = result["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"]
        assert "\\" not in uri

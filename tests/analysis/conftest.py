"""Shared helpers for the analyzer tests.

Rule tests run :func:`repro.analysis.analyze_source` on in-memory
snippets.  The *virtual path* decides which repo-aware policies apply,
so each fixture returns a runner pinned to one scope:

* ``run_core`` — ``src/repro/core/...`` (privacy-critical, library code)
* ``run_lib`` — ``src/repro/metrics/...`` (library code, not privacy-
  critical)
* ``run_tests`` — ``tests/...`` (test-module relaxations)
"""

import pytest

from repro.analysis import analyze_source, get_rules


def _runner(path):
    def run(source, select=None):
        rules = get_rules(select=select) if select else None
        return analyze_source(source, path=path, rules=rules)

    return run


@pytest.fixture
def run_core():
    """Analyze a snippet as if it lived in ``repro/core``."""
    return _runner("src/repro/core/snippet.py")


@pytest.fixture
def run_stream():
    """Analyze a snippet as if it lived in ``repro/stream``."""
    return _runner("src/repro/stream/snippet.py")


@pytest.fixture
def run_parallel():
    """Analyze a snippet as if it lived in ``repro/parallel``."""
    return _runner("src/repro/parallel/snippet.py")


@pytest.fixture
def run_lib():
    """Analyze a snippet as if it lived in a non-critical package."""
    return _runner("src/repro/metrics/snippet.py")


@pytest.fixture
def run_tests():
    """Analyze a snippet as if it were a test module."""
    return _runner("tests/test_snippet.py")


def rule_ids(findings):
    """The rule ids of ``findings``, in report order."""
    return [finding.rule_id for finding in findings]

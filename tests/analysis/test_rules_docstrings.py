"""DOC-001: NumPy-style docstrings on the public API."""

from textwrap import dedent

from tests.analysis.conftest import rule_ids

_CLEAN_FUNCTION = dedent(
    '''
    def distance(a, b):
        """Euclidean distance between two vectors.

        Parameters
        ----------
        a, b:
            Vectors of equal length.

        Returns
        -------
        float
            The distance.
        """
        return sum((x - y) ** 2 for x, y in zip(a, b)) ** 0.5
    '''
)


class TestModuleFunctions:
    def test_missing_docstring_flagged(self, run_lib):
        source = "def distance(a, b):\n    return abs(a - b)\n"
        findings = run_lib(source, select=["DOC-001"])
        assert rule_ids(findings) == ["DOC-001"]
        assert "no docstring" in findings[0].message

    def test_missing_sections_flagged(self, run_lib):
        source = dedent(
            '''
            def distance(a, b):
                """Euclidean distance between two vectors."""
                return abs(a - b)
            '''
        )
        findings = run_lib(source, select=["DOC-001"])
        assert rule_ids(findings) == ["DOC-001"]
        assert "Parameters/Returns" in findings[0].message

    def test_full_numpy_docstring_is_clean(self, run_lib):
        assert run_lib(_CLEAN_FUNCTION, select=["DOC-001"]) == []

    def test_yields_section_satisfies_returns(self, run_lib):
        source = dedent(
            '''
            def pairs(items):
                """Consecutive pairs of ``items``.

                Parameters
                ----------
                items:
                    Sequence to pair up.

                Yields
                ------
                tuple
                    Consecutive ``(a, b)`` pairs.
                """
                for a, b in zip(items, items[1:]):
                    yield a, b
            '''
        )
        assert run_lib(source, select=["DOC-001"]) == []

    def test_procedure_without_return_needs_no_returns_section(
        self, run_lib
    ):
        source = dedent(
            '''
            def log(message):
                """Print ``message``.

                Parameters
                ----------
                message:
                    Text to print.
                """
                print(message)
            '''
        )
        assert run_lib(source, select=["DOC-001"]) == []


class TestMethodsAndScope:
    def test_undocumented_public_method_flagged(self, run_lib):
        source = dedent(
            '''
            class Model:
                """A model."""

                def fit(self, data):
                    return self
            '''
        )
        findings = run_lib(source, select=["DOC-001"])
        assert rule_ids(findings) == ["DOC-001"]

    def test_method_docstring_without_sections_is_enough(self, run_lib):
        source = dedent(
            '''
            class Model:
                """A model."""

                def fit(self, data):
                    """Fit the model to ``data``."""
                    return self
            '''
        )
        assert run_lib(source, select=["DOC-001"]) == []

    def test_private_names_and_properties_skipped(self, run_lib):
        source = dedent(
            '''
            class Model:
                """A model."""

                @property
                def n_groups(self):
                    return 0

                def _helper(self):
                    return 1


            def _private(a, b):
                return a + b
            '''
        )
        assert run_lib(source, select=["DOC-001"]) == []

    def test_private_class_methods_skipped(self, run_lib):
        source = dedent(
            """
            class _Internal:
                def helper(self):
                    return 1
            """
        )
        assert run_lib(source, select=["DOC-001"]) == []

    def test_rule_skips_test_modules(self, run_tests):
        source = "def test_distance():\n    assert True\n"
        assert run_tests(source, select=["DOC-001"]) == []

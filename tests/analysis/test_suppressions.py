"""Suppression comments: same-line, next-line, multi-rule, and `all`."""

from textwrap import dedent

from repro.analysis.suppressions import is_suppressed, parse_suppressions
from tests.analysis.conftest import rule_ids


class TestParsing:
    def test_same_line_directive(self):
        suppressions = parse_suppressions(
            "x = risky()  # repro-lint: disable=RNG-001\n"
        )
        assert suppressions == {1: frozenset({"RNG-001"})}

    def test_disable_next_targets_following_line(self):
        source = dedent(
            """
            # repro-lint: disable-next=PRIV-001 -- transient buffer
            self._buffer.append(record)
            """
        )
        suppressions = parse_suppressions(source)
        assert suppressions == {3: frozenset({"PRIV-001"})}

    def test_multiple_rules_comma_separated(self):
        suppressions = parse_suppressions(
            "x = 1  # repro-lint: disable=PY-001, PY-003\n"
        )
        assert suppressions[1] == frozenset({"PY-001", "PY-003"})

    def test_justification_after_dashes_is_ignored(self):
        suppressions = parse_suppressions(
            "x = 1  # repro-lint: disable=PY-001 -- because reasons\n"
        )
        assert suppressions[1] == frozenset({"PY-001"})

    def test_unrelated_comments_produce_nothing(self):
        assert parse_suppressions("x = 1  # a plain comment\n") == {}


class TestIsSuppressed:
    def test_exact_rule_match(self):
        suppressions = {3: frozenset({"RNG-001"})}
        assert is_suppressed(suppressions, 3, "RNG-001")
        assert not is_suppressed(suppressions, 3, "PRIV-001")
        assert not is_suppressed(suppressions, 4, "RNG-001")

    def test_all_sentinel_matches_everything(self):
        suppressions = {2: frozenset({"all"})}
        assert is_suppressed(suppressions, 2, "PY-002")


class TestEndToEnd:
    def test_suppressed_finding_is_dropped(self, run_lib):
        source = (
            "import numpy as np\n"
            "np.random.seed(0)  # repro-lint: disable=RNG-001 -- demo\n"
        )
        assert run_lib(source, select=["RNG-001"]) == []

    def test_disable_next_drops_the_following_line_only(self, run_core):
        source = dedent(
            """
            class Group:
                def __init__(self, records):
                    # repro-lint: disable-next=PRIV-001 -- transient
                    self._records = records
                    self._members = records
            """
        )
        findings = run_core(source, select=["PRIV-001"])
        assert rule_ids(findings) == ["PRIV-001"]
        assert findings[0].line == 6

    def test_wrong_rule_id_does_not_suppress(self, run_lib):
        source = (
            "import numpy as np\n"
            "np.random.seed(0)  # repro-lint: disable=PY-001\n"
        )
        assert rule_ids(run_lib(source, select=["RNG-001"])) == ["RNG-001"]

"""RNG-001: global-state numpy RNG use and generator construction."""

from textwrap import dedent

from tests.analysis.conftest import rule_ids


class TestGlobalStateCalls:
    def test_np_random_seed_flagged(self, run_lib):
        findings = run_lib(
            "import numpy as np\nnp.random.seed(0)\n", select=["RNG-001"]
        )
        assert rule_ids(findings) == ["RNG-001"]
        assert "global RNG state" in findings[0].message

    def test_full_numpy_name_flagged(self, run_lib):
        findings = run_lib(
            "import numpy\nx = numpy.random.normal(size=3)\n",
            select=["RNG-001"],
        )
        assert rule_ids(findings) == ["RNG-001"]

    def test_random_module_alias_flagged(self, run_lib):
        source = dedent(
            """
            from numpy import random
            x = random.rand(4)
            """
        )
        findings = run_lib(source, select=["RNG-001"])
        assert rule_ids(findings) == ["RNG-001"]

    def test_from_import_of_global_function_flagged(self, run_lib):
        source = "from numpy.random import seed\nseed(3)\n"
        findings = run_lib(source, select=["RNG-001"])
        # Both the import and the call are reported.
        assert rule_ids(findings) == ["RNG-001", "RNG-001"]

    def test_global_state_flagged_even_in_tests(self, run_tests):
        findings = run_tests(
            "import numpy as np\nnp.random.seed(0)\n", select=["RNG-001"]
        )
        assert rule_ids(findings) == ["RNG-001"]

    def test_legacy_randomstate_flagged(self, run_lib):
        findings = run_lib(
            "import numpy as np\nr = np.random.RandomState(0)\n",
            select=["RNG-001"],
        )
        assert rule_ids(findings) == ["RNG-001"]
        assert "legacy" in findings[0].message


class TestGeneratorConstruction:
    def test_default_rng_flagged_in_library_code(self, run_lib):
        findings = run_lib(
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            select=["RNG-001"],
        )
        assert rule_ids(findings) == ["RNG-001"]
        assert "repro/linalg/rng.py" in findings[0].message

    def test_default_rng_allowed_in_rng_module(self):
        from repro.analysis import analyze_source, get_rules

        findings = analyze_source(
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            path="src/repro/linalg/rng.py",
            rules=get_rules(select=["RNG-001"]),
        )
        assert findings == []

    def test_seeded_default_rng_allowed_in_tests(self, run_tests):
        findings = run_tests(
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            select=["RNG-001"],
        )
        assert findings == []

    def test_unseeded_default_rng_flagged_in_tests(self, run_tests):
        findings = run_tests(
            "import numpy as np\nrng = np.random.default_rng()\n",
            select=["RNG-001"],
        )
        assert rule_ids(findings) == ["RNG-001"]
        assert "non-deterministic" in findings[0].message


class TestCleanTwins:
    def test_threaded_random_state_is_clean(self, run_core):
        source = dedent(
            """
            from repro.linalg.rng import check_random_state


            def sample(count, random_state=None):
                rng = check_random_state(random_state)
                return rng.integers(0, 10, size=count)
            """
        )
        assert run_core(source, select=["RNG-001"]) == []

    def test_unrelated_random_attribute_is_clean(self, run_lib):
        # ``model.random`` is not numpy's global state.
        source = "value = model.random.choice([1, 2])\n"
        assert run_lib(source, select=["RNG-001"]) == []

    def test_non_numpy_seed_call_is_clean(self, run_lib):
        source = "import numpy as np\nother.seed(0)\n"
        assert run_lib(source, select=["RNG-001"]) == []

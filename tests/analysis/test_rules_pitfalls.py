"""PY-001/002/003: mutable defaults, bare except, float equality."""

from textwrap import dedent

from tests.analysis.conftest import rule_ids


class TestMutableDefaults:
    def test_list_literal_default_flagged(self, run_lib):
        source = "def f(x, cache=[]):\n    return cache\n"
        findings = run_lib(source, select=["PY-001"])
        assert rule_ids(findings) == ["PY-001"]

    def test_dict_constructor_default_flagged(self, run_lib):
        source = "def f(x, cache=dict()):\n    return cache\n"
        findings = run_lib(source, select=["PY-001"])
        assert rule_ids(findings) == ["PY-001"]

    def test_keyword_only_default_flagged(self, run_lib):
        source = "def f(x, *, cache={}):\n    return cache\n"
        findings = run_lib(source, select=["PY-001"])
        assert rule_ids(findings) == ["PY-001"]

    def test_none_default_is_clean(self, run_lib):
        source = dedent(
            """
            def f(x, cache=None):
                if cache is None:
                    cache = {}
                return cache
            """
        )
        assert run_lib(source, select=["PY-001"]) == []

    def test_immutable_defaults_are_clean(self, run_lib):
        source = "def f(a=1, b='x', c=(), d=frozenset()):\n    return a\n"
        assert run_lib(source, select=["PY-001"]) == []


class TestBareExcept:
    def test_bare_except_flagged(self, run_lib):
        source = dedent(
            """
            try:
                risky()
            except:
                pass
            """
        )
        findings = run_lib(source, select=["PY-002"])
        assert rule_ids(findings) == ["PY-002"]

    def test_typed_except_is_clean(self, run_lib):
        source = dedent(
            """
            try:
                risky()
            except (ValueError, KeyError):
                pass
            """
        )
        assert run_lib(source, select=["PY-002"]) == []


class TestFloatEquality:
    def test_equality_against_float_literal_flagged(self, run_lib):
        findings = run_lib("ok = x == 0.1\n", select=["PY-003"])
        assert rule_ids(findings) == ["PY-003"]
        assert "isclose" in findings[0].message

    def test_inequality_and_negative_literal_flagged(self, run_lib):
        findings = run_lib("ok = -2.5 != y\n", select=["PY-003"])
        assert rule_ids(findings) == ["PY-003"]

    def test_chained_comparison_flagged(self, run_lib):
        findings = run_lib("ok = 0 < x == 1.5\n", select=["PY-003"])
        assert rule_ids(findings) == ["PY-003"]

    def test_exact_zero_guard_is_exempt(self, run_lib):
        assert run_lib("ok = spread == 0.0\n", select=["PY-003"]) == []

    def test_integer_equality_is_clean(self, run_lib):
        assert run_lib("ok = x == 3\n", select=["PY-003"]) == []

    def test_ordering_against_float_is_clean(self, run_lib):
        assert run_lib("ok = x < 0.5\n", select=["PY-003"]) == []

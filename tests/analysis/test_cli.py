"""Analyzer CLI: exit codes, formats, selection, and `repro lint`."""

import json

import pytest

from repro.analysis.cli import main as analysis_main
from repro.analysis.registry import get_rules
from repro.cli import main as repro_main

_VIOLATION = "import numpy as np\nnp.random.seed(0)\n"
_CLEAN = "VERSION = 1\n"


@pytest.fixture
def violating_file(tmp_path):
    path = tmp_path / "src" / "repro" / "core" / "bad.py"
    path.parent.mkdir(parents=True)
    path.write_text(_VIOLATION)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(_CLEAN)
        assert analysis_main([str(tmp_path)]) == 0
        assert "0 findings — clean" in capsys.readouterr().out

    def test_findings_exit_one(self, violating_file, capsys):
        assert analysis_main([str(violating_file)]) == 1
        assert "RNG-001" in capsys.readouterr().out

    def test_unparsable_file_exits_one_and_is_reported(
        self, tmp_path, capsys
    ):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert analysis_main([str(tmp_path)]) == 1
        assert "error:" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert analysis_main([str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(_CLEAN)
        assert analysis_main([str(tmp_path), "--select", "NOPE-9"]) == 2
        assert "unknown rule id" in capsys.readouterr().err


class TestOptions:
    def test_json_format(self, violating_file, capsys):
        assert analysis_main([str(violating_file), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == 2
        # by_rule is zero-filled over every module rule that ran so CI
        # artifacts diff cleanly run-to-run.
        assert document["summary"]["by_rule"]["RNG-001"] == 1
        assert document["summary"]["by_rule"]["PRIV-001"] == 0
        assert document["summary"]["suppressed"] == {}
        assert document["summary"]["baselined"] == 0
        assert all(
            "column" in finding for finding in document["findings"]
        )

    def test_select_isolates_rules(self, violating_file):
        assert analysis_main([str(violating_file), "--select", "PY-002"]) == 0

    def test_ignore_drops_rules(self, violating_file):
        assert (
            analysis_main([str(violating_file), "--ignore", "RNG-001"]) == 0
        )

    def test_list_rules_covers_every_registered_rule(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in get_rules():
            assert rule.rule_id in out, rule.rule_id
            assert f"[{rule.scope}]" in out

    def test_unknown_rule_in_ignore_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(_CLEAN)
        assert analysis_main([str(tmp_path), "--ignore", "NOPE-9"]) == 2
        assert "unknown rule id" in capsys.readouterr().err


class TestSarifFormat:
    def test_sarif_output_parses_and_carries_the_finding(
        self, violating_file, capsys
    ):
        assert analysis_main(
            [str(violating_file), "--format", "sarif"]
        ) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        [run] = document["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {result["ruleId"] for result in run["results"]} \
            == {"RNG-001"}

    def test_project_sarif_clean_run(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(_CLEAN)
        assert analysis_main([
            str(tmp_path), "--project", "--format", "sarif",
            "--cache-file", str(tmp_path / "cache.json"),
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        [run] = document["runs"]
        assert run["results"] == []
        assert run["invocations"][0]["executionSuccessful"] is True


class TestStats:
    def test_project_stats_prints_per_rule_timings(
        self, tmp_path, capsys
    ):
        (tmp_path / "ok.py").write_text(_CLEAN)
        assert analysis_main([
            str(tmp_path), "--project", "--stats",
            "--cache-file", str(tmp_path / "cache.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "per-rule timings:" in out

    def test_timings_stay_out_of_json_without_stats(
        self, tmp_path, capsys
    ):
        (tmp_path / "ok.py").write_text(_CLEAN)
        assert analysis_main([
            str(tmp_path), "--project", "--format", "json",
            "--cache-file", str(tmp_path / "cache.json"),
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "rule_timings" not in document.get("stats", {})


class TestReproLintSubcommand:
    def test_lint_is_wired_into_the_main_cli(self, violating_file, capsys):
        assert repro_main(["lint", str(violating_file)]) == 1
        assert "RNG-001" in capsys.readouterr().out

    def test_lint_clean_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(_CLEAN)
        assert repro_main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

"""Tier-1 gate: the library's own tree passes its own analyzer.

Plus the two canary injections from the acceptance criteria: seeding
numpy's global state or stashing raw records in ``repro/core`` must trip
the analyzer with the right rule id.
"""

from pathlib import Path

from repro.analysis import analyze_paths, analyze_source, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSelfClean:
    def test_src_repro_has_zero_findings(self):
        findings, errors = analyze_paths([REPO_ROOT / "src" / "repro"])
        assert errors == []
        assert findings == [], "\n" + render_text(findings)

    def test_test_suite_has_zero_findings(self):
        findings, errors = analyze_paths([REPO_ROOT / "tests"])
        assert errors == []
        assert findings == [], "\n" + render_text(findings)


class TestCanaryInjections:
    def _core_module(self, name):
        path = REPO_ROOT / "src" / "repro" / "core" / name
        return path.read_text(encoding="utf-8"), f"src/repro/core/{name}"

    def test_injected_global_seed_trips_rng_001(self):
        source, path = self._core_module("condensation.py")
        injected = source + "\nimport numpy\nnumpy.random.seed(0)\n"
        findings = analyze_source(injected, path=path)
        assert "RNG-001" in {finding.rule_id for finding in findings}

    def test_injected_record_retention_trips_priv_001(self):
        source, path = self._core_module("statistics.py")
        injected = source + (
            "\n\ndef _leak(group, records):\n"
            "    group._records = records\n"
        )
        findings = analyze_source(injected, path=path)
        assert "PRIV-001" in {finding.rule_id for finding in findings}

    def test_unmodified_core_modules_are_clean(self):
        for name in ("condensation.py", "statistics.py"):
            source, path = self._core_module(name)
            assert analyze_source(source, path=path) == []

"""Fault injection: randomized kill/corrupt points with exact recovery.

The durability contract under test: after a crash at *any* point —
torn WAL tail, flipped bytes anywhere in the log, a torn newest
snapshot, a crash in the middle of writing a split entry — ``recover()``
rebuilds group statistics bit-identical to the uninterrupted run at the
recovered position, and re-feeding the stream from that position
reproduces the uninterrupted final state record for record.

This module exercises **120 randomized corruption points** (40 WAL
truncations + 35 byte flips + 15 torn-snapshot combinations for the
dynamic condenser, 30 truncations for the sliding-window condenser),
plus deterministic crashes at the nastiest spots (mid-split entry,
entry boundary).  Every trial asserts byte-exact equality of group
statistics, not tolerances.
"""

import shutil

import numpy as np
import pytest

from repro.core.condenser import DynamicCondenser
from repro.durability import RecoveryError
from repro.stream.windowed import SlidingWindowCondenser

K = 3
DIMS = 3
N_OPS = 120


def fingerprint(model):
    """Byte-exact signature of a model's group statistics, in order."""
    return [
        (group.count, group.first_order.tobytes(),
         group.second_order.tobytes())
        for group in model.groups
    ]


def build_ops(seed, n_ops=N_OPS):
    """A deterministic interleaving of adds and removals."""
    rng = np.random.default_rng(seed)
    records = rng.normal(size=(n_ops, DIMS))
    ops = []
    added = []
    for index in range(n_ops):
        if len(added) > 6 * K and rng.random() < 0.25:
            ops.append(("remove", added.pop(0)))
        else:
            added.append(records[index])
            ops.append(("add", records[index]))
    return ops


def apply_ops(condenser, ops):
    for kind, record in ops:
        if kind == "add":
            condenser.partial_fit(record)
        else:
            condenser.partial_remove(record)


@pytest.fixture(scope="module")
def dynamic_reference(tmp_path_factory):
    """One durable run, crashed without close(), plus its state history.

    ``states[p]`` is the model fingerprint after ``p`` completed
    operations — the oracle every recovered state is checked against.
    """
    directory = tmp_path_factory.mktemp("dyn-ref")
    initial = np.random.default_rng(99).normal(size=(4 * K, DIMS))
    ops = build_ops(0)
    condenser = DynamicCondenser(
        K, random_state=7, wal_dir=directory, checkpoint_every=15,
    )
    condenser.fit(initial)
    states = {0: fingerprint(condenser.model_)}
    for position, (kind, record) in enumerate(ops, start=1):
        if kind == "add":
            condenser.partial_fit(record)
        else:
            condenser.partial_remove(record)
        states[position] = fingerprint(condenser.model_)
    # Crash: the WAL is never closed.  fsync_every=1 means every entry
    # already hit disk.
    return {
        "directory": directory,
        "ops": ops,
        "states": states,
        "final": states[len(ops)],
    }


@pytest.fixture(scope="module")
def windowed_reference(tmp_path_factory):
    directory = tmp_path_factory.mktemp("win-ref")
    stream = np.random.default_rng(5).normal(size=(200, DIMS))
    condenser = SlidingWindowCondenser(
        K, 10 * K, random_state=11, wal_dir=directory,
        checkpoint_every=12,
    )
    states = {}
    for record in stream:
        condenser.push(record)
        if condenser.is_warm:
            states[condenser.position] = fingerprint(condenser.to_model())
    return {"directory": directory, "stream": stream, "states": states}


def truncate_wal(directory, rng):
    """Cut a random WAL segment at a random byte offset."""
    segments = sorted(directory.glob("wal-*.log"))
    target = segments[int(rng.integers(len(segments)))]
    raw = target.read_bytes()
    target.write_bytes(raw[: int(rng.integers(0, len(raw) + 1))])


def flip_wal_byte(directory, rng):
    """Invert one random byte somewhere in the log."""
    segments = sorted(directory.glob("wal-*.log"))
    target = segments[int(rng.integers(len(segments)))]
    raw = bytearray(target.read_bytes())
    if not raw:
        return
    raw[int(rng.integers(len(raw)))] ^= 0xFF
    target.write_bytes(bytes(raw))


def tear_newest_snapshot(directory, rng):
    """Truncate the newest snapshot to a random prefix, then cut the WAL."""
    snapshots = sorted(directory.glob("snapshot-*.json"))
    newest = snapshots[-1]
    document = newest.read_text()
    newest.write_text(document[: int(rng.integers(0, len(document)))])
    truncate_wal(directory, rng)


def recover_and_verify_dynamic(reference, work):
    """Recover from a corrupted copy; check the oracle; re-feed; check."""
    recovered = DynamicCondenser.recover(work)
    position = recovered.position
    assert position in reference["states"], (
        f"recovered position {position} was never a completed state"
    )
    assert fingerprint(recovered.model_) == reference["states"][position]
    apply_ops(recovered, reference["ops"][position:])
    assert fingerprint(recovered.model_) == reference["final"]
    recovered.close()


class TestDynamicKillPoints:
    @pytest.mark.parametrize("trial", range(40))
    def test_truncated_wal(self, dynamic_reference, tmp_path, trial):
        work = tmp_path / "copy"
        shutil.copytree(dynamic_reference["directory"], work)
        truncate_wal(work, np.random.default_rng(1000 + trial))
        recover_and_verify_dynamic(dynamic_reference, work)

    @pytest.mark.parametrize("trial", range(35))
    def test_flipped_byte(self, dynamic_reference, tmp_path, trial):
        work = tmp_path / "copy"
        shutil.copytree(dynamic_reference["directory"], work)
        flip_wal_byte(work, np.random.default_rng(2000 + trial))
        recover_and_verify_dynamic(dynamic_reference, work)

    @pytest.mark.parametrize("trial", range(15))
    def test_torn_snapshot(self, dynamic_reference, tmp_path, trial):
        work = tmp_path / "copy"
        shutil.copytree(dynamic_reference["directory"], work)
        tear_newest_snapshot(work, np.random.default_rng(3000 + trial))
        recover_and_verify_dynamic(dynamic_reference, work)


class TestDeterministicCrashes:
    def test_mid_split_crash(self, dynamic_reference, tmp_path):
        """Crash halfway through writing an entry that contains a split."""
        work = tmp_path / "copy"
        shutil.copytree(dynamic_reference["directory"], work)
        segments = sorted(work.glob("wal-*.log"))
        torn = False
        for segment in reversed(segments):
            raw = segment.read_bytes()
            marker = raw.rfind(b'"op":"split"')
            if marker == -1:
                continue
            # Cut inside the split sub-op of that entry's line.
            segment.write_bytes(raw[: marker + 6])
            # Later segments are beyond the tear; recovery discards
            # them, which the repair pass on open performs.
            torn = True
            break
        assert torn, "reference run produced no split entry"
        recover_and_verify_dynamic(dynamic_reference, work)

    def test_lost_last_entry(self, dynamic_reference, tmp_path):
        """Crash between the memory mutation and the WAL append.

        Equivalent on disk to losing exactly the final complete entry:
        the recovered position is one op earlier and re-feeding that op
        reproduces the lost state (the ingest path consumes no RNG).
        """
        work = tmp_path / "copy"
        shutil.copytree(dynamic_reference["directory"], work)
        segment = sorted(work.glob("wal-*.log"))[-1]
        lines = segment.read_text().splitlines(keepends=True)
        segment.write_text("".join(lines[:-1]))
        recovered = DynamicCondenser.recover(work)
        assert recovered.position == len(dynamic_reference["ops"]) - 1
        recover_and_verify_dynamic(dynamic_reference, work)

    def test_empty_directory_is_not_recoverable(self, tmp_path):
        with pytest.raises(RecoveryError, match="nothing to recover"):
            DynamicCondenser.recover(tmp_path / "void")


class TestWindowedKillPoints:
    @pytest.mark.parametrize("trial", range(30))
    def test_truncated_wal(self, windowed_reference, tmp_path, trial):
        work = tmp_path / "copy"
        shutil.copytree(windowed_reference["directory"], work)
        truncate_wal(work, np.random.default_rng(4000 + trial))

        recovered = SlidingWindowCondenser.recover(work)
        position = recovered.position
        states = windowed_reference["states"]
        stream = windowed_reference["stream"]
        assert position in states
        assert fingerprint(recovered.to_model()) == states[position]

        # The window buffer is never durable: the caller re-feeds the
        # last min(position, window) records, then the rest.
        with pytest.raises(RuntimeError, match="restore_window"):
            recovered.push(stream[0])
        tail = stream[max(0, position - recovered.window): position]
        recovered.restore_window(tail)
        for record in stream[position:]:
            recovered.push(record)
        assert fingerprint(recovered.to_model()) == states[len(stream)]
        recovered.close()

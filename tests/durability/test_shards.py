"""Shard checkpoints and the retrying parallel execution engine."""

import numpy as np
import pytest

import repro.parallel.engine as engine
from repro.core.strategies import resolve_strategy
from repro.durability import ShardCheckpointStore, shard_fingerprint
from repro.linalg.rng import spawn_seed_sequences
from repro.parallel import condense_sharded


def fingerprint(model):
    return [
        (group.count, group.first_order.tobytes(),
         group.second_order.tobytes())
        for group in model.groups
    ]


@pytest.fixture
def data(rng):
    return rng.normal(size=(240, 4))


def make_tasks(data, k=8, n_shards=4, seed=5):
    strategy = resolve_strategy("random")
    sequences = spawn_seed_sequences(seed, n_shards)
    size = data.shape[0] // n_shards
    return [
        (data[index * size:(index + 1) * size], k, strategy, sequence)
        for index, sequence in enumerate(sequences)
    ]


def make_run(data, k=8, n_shards=4, seed=5):
    """Shard index arrays plus per-shard task descriptors.

    This is the ``(shards, tasks)`` shape ``_run_shard_tasks`` takes:
    tasks carry only ``(k, strategy, sequence)``; the records travel
    separately (zero-copy payloads on the process path, direct slices
    on the thread path).
    """
    strategy = resolve_strategy("random")
    sequences = spawn_seed_sequences(seed, n_shards)
    size = data.shape[0] // n_shards
    shards = [
        np.arange(index * size, (index + 1) * size)
        for index in range(n_shards)
    ]
    tasks = [(k, strategy, sequence) for sequence in sequences]
    return shards, tasks


def run_tasks(data, shards, tasks, **kwargs):
    """Drive ``_run_shard_tasks`` on the thread backend, collecting
    delivered shard results keyed by index."""
    results = {}

    def record(index, result, checkpointed=False):
        results[index] = result

    outcome = engine._run_shard_tasks(
        data, shards, tasks, 4, "thread", record, **kwargs
    )
    return results, outcome


class TestFingerprint:
    def test_sensitive_to_every_input(self, data):
        base = shard_fingerprint(data, 8, "random", 4, 5)
        assert shard_fingerprint(data, 8, "random", 4, 5) == base
        assert shard_fingerprint(data, 9, "random", 4, 5) != base
        assert shard_fingerprint(data, 8, "mdav", 4, 5) != base
        assert shard_fingerprint(data, 8, "random", 3, 5) != base
        assert shard_fingerprint(data, 8, "random", 4, 6) != base
        perturbed = data.copy()
        perturbed[0, 0] += 1e-9
        assert shard_fingerprint(perturbed, 8, "random", 4, 5) != base


class TestShardStore:
    def test_store_load_roundtrip(self, tmp_path, data):
        store = ShardCheckpointStore(
            tmp_path, shard_fingerprint(data, 8, "random", 4, 5)
        )
        groups, lineage = engine._condense_shard(make_tasks(data)[0])
        store.store(0, (groups, lineage))
        loaded = store.load(0)
        assert loaded is not None
        loaded_groups, loaded_lineage = loaded
        assert len(loaded_groups) == len(groups)
        for ours, theirs in zip(groups, loaded_groups):
            assert ours.count == theirs.count
            np.testing.assert_array_equal(ours.first_order,
                                          theirs.first_order)
            np.testing.assert_array_equal(ours.second_order,
                                          theirs.second_order)
        for ours, theirs in zip(lineage, loaded_lineage):
            np.testing.assert_array_equal(
                np.asarray(ours, dtype=np.int64), theirs
            )

    def test_missing_shard_loads_none(self, tmp_path):
        store = ShardCheckpointStore(tmp_path, "f" * 64)
        assert store.load(3) is None

    def test_torn_checkpoint_ignored(self, tmp_path, data):
        store = ShardCheckpointStore(
            tmp_path, shard_fingerprint(data, 8, "random", 4, 5)
        )
        store.store(0, engine._condense_shard(make_tasks(data)[0]))
        path = store.directory / "shard-00000.json"
        path.write_text(path.read_text()[:30])
        assert store.load(0) is None

    def test_foreign_fingerprint_ignored(self, tmp_path, data):
        result = engine._condense_shard(make_tasks(data)[0])
        first = ShardCheckpointStore(tmp_path, "a" * 64)
        first.store(0, result)
        # A store keyed differently but colliding on the directory
        # prefix must reject the foreign file.
        second = ShardCheckpointStore(tmp_path, "a" * 16 + "b" * 48)
        assert second.load(0) is None

    def test_clear_removes_files(self, tmp_path, data):
        store = ShardCheckpointStore(tmp_path, "c" * 64)
        tasks = make_tasks(data)
        store.store(0, engine._condense_shard(tasks[0]))
        store.store(1, engine._condense_shard(tasks[1]))
        assert store.clear() == 2
        assert store.load(0) is None


class TestCheckpointedRuns:
    def test_resume_is_bit_identical(self, tmp_path, data):
        kwargs = dict(k=8, random_state=17, n_shards=4, backend="thread")
        first = condense_sharded(data, checkpoint_dir=tmp_path, **kwargs)
        resumed = condense_sharded(data, checkpoint_dir=tmp_path, **kwargs)
        plain = condense_sharded(data, **kwargs)
        assert fingerprint(first) == fingerprint(resumed)
        assert fingerprint(first) == fingerprint(plain)
        assert resumed.metadata["parallel"]["checkpointed"] is True

    def test_partial_checkpoints_complete_the_run(self, tmp_path, data):
        """A crash after some shards: the rerun computes only the rest."""
        kwargs = dict(k=8, random_state=17, n_shards=4, backend="thread")
        reference = condense_sharded(data, checkpoint_dir=tmp_path,
                                     **kwargs)
        # Simulate a crash that persisted only half the shards.
        store_dir = next(tmp_path.iterdir())
        for path in sorted(store_dir.glob("shard-*.json"))[2:]:
            path.unlink()
        resumed = condense_sharded(data, checkpoint_dir=tmp_path, **kwargs)
        assert fingerprint(resumed) == fingerprint(reference)

    def test_generator_seed_rejected(self, tmp_path, data):
        with pytest.raises(ValueError, match="integer random_state"):
            condense_sharded(
                data, 8, random_state=np.random.default_rng(0),
                n_shards=2, checkpoint_dir=tmp_path,
            )

    def test_checkpoint_dir_requires_sharded_run(self, tmp_path, data):
        from repro.core.condensation import create_condensed_groups

        with pytest.raises(ValueError, match="sharded"):
            create_condensed_groups(
                data, 8, random_state=1, checkpoint_dir=tmp_path
            )


class TestRetries:
    def test_transient_failures_are_retried(self, data, monkeypatch):
        shards, tasks = make_run(data)
        original = engine._condense_shard
        calls = {"n": 0}

        def flaky(task):
            calls["n"] += 1
            if calls["n"] in (2, 3):
                raise OSError("transient worker death")
            return original(task)

        monkeypatch.setattr(engine, "_condense_shard", flaky)
        monkeypatch.setattr(engine, "RETRY_BASE_DELAY", 0.001)
        results, (effective, degraded) = run_tasks(
            data, shards, tasks, max_retries=2
        )
        assert sorted(results) == list(range(len(shards)))
        assert all(result is not None for result in results.values())
        assert (effective, degraded) == ("thread", False)

    def test_persistent_failure_falls_back_to_serial(self, data,
                                                     monkeypatch):
        shards, tasks = make_run(data)
        original = engine._condense_shard
        from threading import current_thread, main_thread

        def fails_in_workers(task):
            if current_thread() is not main_thread():
                raise OSError("worker always dies")
            return original(task)

        monkeypatch.setattr(engine, "_condense_shard", fails_in_workers)
        monkeypatch.setattr(engine, "RETRY_BASE_DELAY", 0.001)
        with pytest.warns(engine.ParallelDegradationWarning):
            results, (effective, degraded) = run_tasks(
                data, shards, tasks, max_retries=1
            )
        assert sorted(results) == list(range(len(shards)))
        assert all(result is not None for result in results.values())
        assert (effective, degraded) == ("serial", True)

    def test_value_error_is_fatal_not_retried(self, data, monkeypatch):
        shards, tasks = make_run(data)
        calls = {"n": 0}

        def broken_input(task):
            calls["n"] += 1
            raise ValueError("k larger than shard")

        monkeypatch.setattr(engine, "_condense_shard", broken_input)
        with pytest.raises(ValueError, match="k larger"):
            run_tasks(data, shards, tasks, max_retries=5)
        assert calls["n"] <= len(shards)

    def test_negative_max_retries_rejected(self, data):
        with pytest.raises(ValueError, match="max_retries"):
            condense_sharded(data, 8, random_state=1, n_shards=2,
                             max_retries=-1)

    def test_retry_result_matches_clean_run(self, data, monkeypatch):
        """A retried run produces the same model as an untroubled one.

        ``n_workers`` is pinned above 1: the single-worker path runs
        shards in-process without the retry loop (it *is* the degraded
        fallback), so only pool execution exercises retries.
        """
        clean = condense_sharded(data, 8, random_state=17, n_shards=4,
                                 n_workers=4, backend="thread")
        original = engine._condense_shard
        calls = {"n": 0}

        def flaky(task):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return original(task)

        monkeypatch.setattr(engine, "_condense_shard", flaky)
        monkeypatch.setattr(engine, "RETRY_BASE_DELAY", 0.001)
        retried = condense_sharded(data, 8, random_state=17, n_shards=4,
                                   n_workers=4, backend="thread")
        assert fingerprint(retried) == fingerprint(clean)

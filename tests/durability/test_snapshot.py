"""Unit tests for atomic CRC-checked snapshots."""

from repro.durability import (
    latest_snapshot,
    list_snapshots,
    prune_snapshots,
    read_snapshot,
    write_snapshot,
)


STATE = {"maintainer": {"k": 3, "groups": []}, "position": 12}


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        path = write_snapshot(tmp_path, STATE, seq=7)
        info = read_snapshot(path)
        assert info is not None
        assert info.seq == 7
        assert info.state == STATE

    def test_no_tmp_residue(self, tmp_path):
        write_snapshot(tmp_path, STATE, seq=1)
        assert not list(tmp_path.glob("*.tmp"))

    def test_list_is_seq_ordered(self, tmp_path):
        for seq in (5, 1, 9):
            write_snapshot(tmp_path, STATE, seq=seq)
        listed = [read_snapshot(path) for path in list_snapshots(tmp_path)]
        assert [info.seq for info in listed] == [1, 5, 9]


class TestCorruption:
    def test_torn_snapshot_rejected(self, tmp_path):
        path = write_snapshot(tmp_path, STATE, seq=3)
        document = path.read_text()
        path.write_text(document[: len(document) // 2])
        assert read_snapshot(path) is None

    def test_flipped_byte_rejected(self, tmp_path):
        path = write_snapshot(tmp_path, STATE, seq=3)
        document = path.read_text()
        position = len(document) // 2
        flipped = (
            document[:position]
            + ("0" if document[position] != "0" else "1")
            + document[position + 1:]
        )
        path.write_text(flipped)
        assert read_snapshot(path) is None

    def test_latest_falls_back_past_corrupt(self, tmp_path):
        write_snapshot(tmp_path, {"position": 1}, seq=10)
        newest = write_snapshot(tmp_path, {"position": 2}, seq=20)
        newest.write_text("garbage")
        info = latest_snapshot(tmp_path)
        assert info is not None
        assert info.seq == 10
        assert info.state == {"position": 1}

    def test_latest_none_when_all_corrupt(self, tmp_path):
        path = write_snapshot(tmp_path, STATE, seq=4)
        path.write_text("")
        assert latest_snapshot(tmp_path) is None

    def test_latest_none_on_empty_directory(self, tmp_path):
        assert latest_snapshot(tmp_path) is None


class TestPrune:
    def test_keeps_newest(self, tmp_path):
        for seq in range(1, 7):
            write_snapshot(tmp_path, {"position": seq}, seq=seq)
        removed = prune_snapshots(tmp_path, keep=2)
        assert removed == 4
        kept = [read_snapshot(path) for path in list_snapshots(tmp_path)]
        assert [info.seq for info in kept] == [5, 6]

    def test_keep_at_least_one(self, tmp_path):
        write_snapshot(tmp_path, STATE, seq=1)
        prune_snapshots(tmp_path, keep=1)
        assert len(list_snapshots(tmp_path)) == 1

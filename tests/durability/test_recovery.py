"""Recovery semantics: entry vocabulary, positions, RNG continuity."""

import numpy as np
import pytest

from repro.core.condenser import DynamicCondenser
from repro.durability import (
    DurabilityManager,
    RecoveredState,
    RecoveryError,
    rebuild_maintainer,
    recovered_position,
    recovered_window,
)
from repro.stream.windowed import SlidingWindowCondenser


def fingerprint(model):
    return [
        (group.count, group.first_order.tobytes(),
         group.second_order.tobytes())
        for group in model.groups
    ]


class TestRebuildErrors:
    def test_empty_recovery_raises(self):
        empty = RecoveredState(snapshot_state=None, entries=[], last_seq=0)
        with pytest.raises(RecoveryError, match="nothing to recover"):
            rebuild_maintainer(empty)

    def test_op_before_state_raises(self):
        orphan = RecoveredState(
            snapshot_state=None,
            entries=[(1, {"kind": "op", "pos": 1, "ops": []})],
            last_seq=1,
        )
        with pytest.raises(RecoveryError, match="before any"):
            rebuild_maintainer(orphan)

    def test_unknown_kind_raises(self):
        unknown = RecoveredState(
            snapshot_state=None,
            entries=[(1, {"kind": "telepathy", "pos": 1})],
            last_seq=1,
        )
        with pytest.raises(RecoveryError, match="unknown kind"):
            rebuild_maintainer(unknown)


class TestPositions:
    def test_position_from_snapshot_then_entries(self):
        recovered = RecoveredState(
            snapshot_state={"position": 40},
            entries=[(9, {"kind": "op", "pos": 41, "ops": []}),
                     (10, {"kind": "op", "pos": 42, "ops": []})],
            last_seq=10,
        )
        assert recovered_position(recovered) == 42

    def test_position_empty(self):
        empty = RecoveredState(snapshot_state=None, entries=[], last_seq=0)
        assert recovered_position(empty) == 0

    def test_window_from_snapshot(self):
        recovered = RecoveredState(
            snapshot_state={"position": 3, "window": 50},
            entries=[], last_seq=1,
        )
        assert recovered_window(recovered) == 50

    def test_window_from_bootstrap_entry(self):
        recovered = RecoveredState(
            snapshot_state=None,
            entries=[(1, {"kind": "bootstrap", "pos": 6, "state": {},
                          "window": 25})],
            last_seq=1,
        )
        assert recovered_window(recovered) == 25

    def test_window_absent_for_dynamic(self):
        recovered = RecoveredState(
            snapshot_state={"position": 3},
            entries=[(1, {"kind": "bootstrap", "pos": 0, "state": {}})],
            last_seq=1,
        )
        assert recovered_window(recovered) is None


class TestDynamicRoundtrip:
    def test_wal_only_recovery(self, tmp_path, rng):
        """No checkpoint ever taken: the WAL alone rebuilds the state."""
        data = rng.normal(size=(60, 4))
        condenser = DynamicCondenser(
            4, random_state=3, wal_dir=tmp_path, checkpoint_every=0,
        )
        condenser.fit(data)
        condenser.partial_fit(rng.normal(size=(50, 4)))
        recovered = DynamicCondenser.recover(tmp_path)
        assert recovered.position == condenser.position
        assert fingerprint(recovered.model_) == fingerprint(condenser.model_)

    def test_rng_position_survives_generate(self, tmp_path, rng):
        """Draws after recovery continue the original RNG sequence."""
        data = rng.normal(size=(80, 3))
        condenser = DynamicCondenser(
            5, random_state=21, wal_dir=tmp_path, checkpoint_every=10,
        )
        condenser.fit(data)
        first = condenser.generate()
        recovered = DynamicCondenser.recover(tmp_path)
        np.testing.assert_array_equal(condenser.generate(),
                                      recovered.generate())
        assert first.shape == (80, 3)

    def test_counters_survive_recovery(self, tmp_path, rng):
        condenser = DynamicCondenser(
            3, random_state=1, wal_dir=tmp_path, checkpoint_every=7,
        )
        condenser.fit(rng.normal(size=(30, 3)))
        condenser.partial_fit(rng.normal(size=(60, 3)))
        condenser.partial_remove(rng.normal(size=(10, 3)))
        recovered = DynamicCondenser.recover(tmp_path)
        ours, theirs = condenser._maintainer, recovered._maintainer
        assert (ours.n_splits, ours.n_merges, ours.n_absorbed) == (
            theirs.n_splits, theirs.n_merges, theirs.n_absorbed
        )

    def test_checkpoint_requires_durability(self, rng):
        condenser = DynamicCondenser(3, random_state=0)
        condenser.fit(rng.normal(size=(20, 3)))
        with pytest.raises(RuntimeError, match="wal_dir"):
            condenser.checkpoint()

    def test_explicit_checkpoint_prunes_wal(self, tmp_path, rng):
        condenser = DynamicCondenser(
            3, random_state=0, wal_dir=tmp_path, checkpoint_every=0,
        )
        condenser.fit(rng.normal(size=(30, 3)))
        condenser.partial_fit(rng.normal(size=(40, 3)))
        path = condenser.checkpoint()
        assert path.exists()
        recovered = DynamicCondenser.recover(tmp_path)
        assert fingerprint(recovered.model_) == fingerprint(condenser.model_)


class TestWindowedRoundtrip:
    def test_recover_requires_window_restore(self, tmp_path, rng):
        condenser = SlidingWindowCondenser(
            3, 20, random_state=2, wal_dir=tmp_path, checkpoint_every=9,
        )
        stream = rng.normal(size=(70, 3))
        for record in stream:
            condenser.push(record)
        recovered = SlidingWindowCondenser.recover(tmp_path)
        with pytest.raises(RuntimeError, match="restore_window"):
            recovered.push(stream[0])
        with pytest.raises(ValueError, match="expected the last"):
            recovered.restore_window(stream[:3])
        recovered.restore_window(stream[50:70])
        assert fingerprint(recovered.to_model()) == fingerprint(
            condenser.to_model()
        )

    def test_restore_window_only_after_recover(self, tmp_path, rng):
        condenser = SlidingWindowCondenser(3, 20, random_state=2)
        with pytest.raises(RuntimeError, match="already populated"):
            condenser.restore_window(rng.normal(size=(20, 3)))

    def test_dynamic_directory_rejected(self, tmp_path, rng):
        durable = DynamicCondenser(
            3, random_state=0, wal_dir=tmp_path, checkpoint_every=0,
        )
        durable.fit(rng.normal(size=(30, 3)))
        with pytest.raises(RecoveryError, match="window"):
            SlidingWindowCondenser.recover(tmp_path)

    def test_warmup_pushes_never_durable(self, tmp_path, rng):
        """Raw warm-up records leave nothing on disk to recover."""
        condenser = SlidingWindowCondenser(
            5, 20, random_state=2, wal_dir=tmp_path, checkpoint_every=3,
        )
        for record in rng.normal(size=(9, 3)):  # below 2k = 10: no boot
            condenser.push(record)
        assert condenser.position == 9
        assert not list(tmp_path.glob("snapshot-*"))
        recovered = DurabilityManager(tmp_path).recover()
        assert recovered.is_empty

"""Unit tests for the size-rotated, CRC-framed write-ahead log."""

import os

import pytest

from repro.durability import (
    WriteAheadLog,
    decode_line,
    encode_entry,
)


def entries_of(wal, after_seq=0):
    return list(wal.replay(after_seq=after_seq))


class TestFraming:
    def test_encode_decode_roundtrip(self):
        entry = {"kind": "op", "seq": 3, "pos": 7, "ops": [{"op": "x"}]}
        assert decode_line(encode_entry(entry) + "\n") == entry

    def test_decode_rejects_bad_crc(self):
        line = encode_entry({"seq": 1}) + "\n"
        broken = ("0" if line[0] != "0" else "1") + line[1:]
        assert decode_line(broken) is None

    def test_decode_rejects_missing_newline_as_torn(self):
        # A line without its newline is a write torn mid-line.
        assert decode_line(encode_entry({"seq": 1})) is None

    def test_decode_rejects_torn_line(self):
        line = encode_entry({"seq": 1, "payload": "abcdef"}) + "\n"
        assert decode_line(line[: len(line) // 2]) is None

    def test_decode_rejects_garbage(self):
        assert decode_line("not a log line\n") is None
        assert decode_line("\n") is None
        assert decode_line("") is None


class TestAppendReplay:
    def test_roundtrip_in_order(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for position in range(10):
                wal.append({"kind": "op", "pos": position})
        with WriteAheadLog(tmp_path) as wal:
            replayed = entries_of(wal)
        assert [seq for seq, __ in replayed] == list(range(1, 11))
        assert [entry["pos"] for __, entry in replayed] == list(range(10))

    def test_replay_after_seq(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for position in range(8):
                wal.append({"pos": position})
            tail = entries_of(wal, after_seq=5)
        assert [seq for seq, __ in tail] == [6, 7, 8]

    def test_rotation_splits_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, max_segment_bytes=200) as wal:
            for position in range(30):
                wal.append({"pos": position, "pad": "x" * 40})
            assert len(wal.segments()) > 1
            assert len(entries_of(wal)) == 30

    def test_last_seq_survives_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for __ in range(5):
                wal.append({})
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_seq == 5
            assert wal.append({}) == 6


class TestCrashSemantics:
    def test_torn_tail_marks_frontier(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for position in range(6):
                wal.append({"pos": position})
            segment = wal.segments()[-1]
        # Tear the final line mid-write.
        raw = segment.read_bytes()
        segment.write_bytes(raw[:-7])
        with WriteAheadLog(tmp_path) as wal:
            replayed = entries_of(wal)
            assert [entry["pos"] for __, entry in replayed] == [0, 1, 2, 3, 4]
            # The torn bytes were physically truncated on open, so the
            # next append produces a valid, contiguous line.
            assert wal.append({"pos": 99}) == 6
        with WriteAheadLog(tmp_path) as wal:
            assert entries_of(wal)[-1][1]["pos"] == 99

    def test_corrupt_middle_line_discards_rest(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for position in range(6):
                wal.append({"pos": position})
            segment = wal.segments()[-1]
        lines = segment.read_text().splitlines()
        lines[2] = "deadbeef {broken"
        segment.write_text("\n".join(lines) + "\n")
        with WriteAheadLog(tmp_path) as wal:
            assert [entry["pos"] for __, entry in entries_of(wal)] == [0, 1]

    def test_seq_discontinuity_stops_replay(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for position in range(4):
                wal.append({"pos": position})
            segment = wal.segments()[-1]
        lines = segment.read_text().splitlines()
        # Rewrite entry 3 with a skipped sequence number (valid CRC).
        lines[2] = encode_entry({"pos": 2, "seq": 9})
        segment.write_text("\n".join(lines) + "\n")
        with WriteAheadLog(tmp_path) as wal:
            assert [entry["pos"] for __, entry in entries_of(wal)] == [0, 1]

    def test_later_segments_after_tear_are_dropped(self, tmp_path):
        with WriteAheadLog(tmp_path, max_segment_bytes=120) as wal:
            for position in range(20):
                wal.append({"pos": position, "pad": "y" * 30})
            segments = wal.segments()
        assert len(segments) >= 3
        # Corrupt an early segment: everything after it is unreachable
        # (the frontier is a prefix property) and must be discarded.
        segments[0].write_text(segments[0].read_text()[:25])
        with WriteAheadLog(tmp_path) as wal:
            for path in segments[1:]:
                assert not path.exists()
            assert wal.last_seq == len(entries_of(wal))


class TestPrune:
    def test_prune_unlinks_covered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, max_segment_bytes=150) as wal:
            for position in range(24):
                wal.append({"pos": position, "pad": "z" * 30})
            before = len(wal.segments())
            assert before > 2
            wal.prune(upto_seq=wal.last_seq - 2)
            after = len(wal.segments())
            assert after < before
            # Entries past the prune point are untouched.
            tail = entries_of(wal, after_seq=wal.last_seq - 2)
            assert [seq for seq, __ in tail] == [23, 24]

    def test_prune_never_removes_active_segment(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for position in range(5):
                wal.append({"pos": position})
            wal.prune(upto_seq=wal.last_seq)
            assert len(wal.segments()) == 1
            assert wal.append({}) == 6


class TestFsyncPolicy:
    @pytest.mark.parametrize("fsync_every", [1, 4])
    def test_all_entries_durable_after_sync(self, tmp_path, fsync_every):
        wal = WriteAheadLog(tmp_path, fsync_every=fsync_every)
        for position in range(9):
            wal.append({"pos": position})
        wal.sync()
        wal.close()
        with WriteAheadLog(tmp_path) as reopened:
            assert len(entries_of(reopened)) == 9

    def test_empty_directory_replays_nothing(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            assert entries_of(wal) == []
            assert wal.last_seq == 0

"""Read-only WAL inspection, dry-run replay, and disk-usage gauges."""

import pytest

from repro import telemetry
from repro.core.condenser import DynamicCondenser
from repro.durability import (
    DurabilityManager,
    WriteAheadLog,
    inspect_frames,
    list_segments,
    replay_directory,
)
from repro.stream.windowed import SlidingWindowCondenser


def write_log(directory, n=6, **kwargs):
    with WriteAheadLog(directory, **kwargs) as wal:
        for position in range(n):
            wal.append({"kind": "op", "pos": position})


def segment_bytes(directory):
    return {
        path.name: path.read_bytes() for path in list_segments(directory)
    }


class TestListSegments:
    def test_missing_directory_is_empty(self, tmp_path):
        assert list_segments(tmp_path / "absent") == []

    def test_segments_in_log_order(self, tmp_path):
        write_log(tmp_path, n=20, max_segment_bytes=100)
        names = [path.name for path in list_segments(tmp_path)]
        assert len(names) > 1
        assert names == sorted(names)

    def test_ignores_foreign_files(self, tmp_path):
        write_log(tmp_path)
        (tmp_path / "notes.txt").write_text("x", encoding="utf-8")
        assert all(
            path.name.startswith("wal-")
            for path in list_segments(tmp_path)
        )


class TestInspectFrames:
    def test_clean_log_is_all_ok(self, tmp_path):
        write_log(tmp_path, n=6)
        frames = list(inspect_frames(tmp_path))
        assert [frame["status"] for frame in frames] == ["ok"] * 6
        assert [frame["seq"] for frame in frames] == list(range(1, 7))
        assert frames[0]["kind"] == "op"
        assert all(frame["crc_ok"] for frame in frames)

    def test_offsets_tile_the_segment(self, tmp_path):
        write_log(tmp_path, n=5)
        frames = list(inspect_frames(tmp_path))
        position = 0
        for frame in frames:
            assert frame["offset"] == position
            position += frame["length"]
        [segment] = list_segments(tmp_path)
        assert position == segment.stat().st_size

    def test_torn_tail_and_orphans_are_labelled(self, tmp_path):
        write_log(tmp_path, n=5)
        [segment] = list_segments(tmp_path)
        lines = segment.read_bytes().splitlines(keepends=True)
        # Corrupt frame 3; frames 4-5 become orphaned.
        lines[2] = b"garbage " + lines[2][8:]
        segment.write_bytes(b"".join(lines))
        statuses = [f["status"] for f in inspect_frames(tmp_path)]
        assert statuses == ["ok", "ok", "torn", "orphaned", "orphaned"]

    def test_sequence_gap_is_labelled(self, tmp_path):
        write_log(tmp_path, n=5)
        [segment] = list_segments(tmp_path)
        lines = segment.read_bytes().splitlines(keepends=True)
        del lines[2]
        segment.write_bytes(b"".join(lines))
        statuses = [f["status"] for f in inspect_frames(tmp_path)]
        assert statuses == ["ok", "ok", "gap", "orphaned"]

    def test_inspection_is_read_only(self, tmp_path):
        write_log(tmp_path, n=5)
        [segment] = list_segments(tmp_path)
        torn = segment.read_bytes()[:-10]
        segment.write_bytes(torn)
        list(inspect_frames(tmp_path))
        assert segment.read_bytes() == torn


class TestReplayDirectory:
    def test_matches_wal_replay(self, tmp_path):
        write_log(tmp_path, n=8, max_segment_bytes=120)
        with WriteAheadLog(tmp_path) as wal:
            expected = list(wal.replay(after_seq=3))
        assert list(replay_directory(tmp_path, after_seq=3)) == expected

    def test_stops_at_torn_tail_without_repair(self, tmp_path):
        write_log(tmp_path, n=6)
        [segment] = list_segments(tmp_path)
        torn = segment.read_bytes()[:-7]
        segment.write_bytes(torn)
        before = segment_bytes(tmp_path)
        replayed = list(replay_directory(tmp_path))
        assert [seq for seq, __ in replayed] == [1, 2, 3, 4, 5]
        # Unlike WriteAheadLog (which truncates the torn line on
        # open), the read-only replay leaves every byte in place.
        assert segment_bytes(tmp_path) == before

    def test_empty_directory_yields_nothing(self, tmp_path):
        assert list(replay_directory(tmp_path)) == []


class TestDiskUsageGauges:
    def test_disk_usage_sums_wal_and_snapshots(self, tmp_path):
        with DurabilityManager(tmp_path) as manager:
            manager.bind(lambda: {"position": manager.wal.last_seq})
            for position in range(4):
                manager.append({"pos": position})
            manager.checkpoint()
            usage = manager.disk_usage()
        wal_total = sum(
            path.stat().st_size for path in list_segments(tmp_path)
        )
        snapshot_total = sum(
            path.stat().st_size
            for path in tmp_path.glob("snapshot-*.json")
        )
        assert usage["wal_bytes"] == wal_total > 0
        assert usage["snapshot_bytes"] == snapshot_total > 0

    def test_checkpoint_publishes_gauges(self, tmp_path):
        pipeline = telemetry.configure()
        try:
            with DurabilityManager(tmp_path) as manager:
                manager.bind(lambda: {"seq": manager.wal.last_seq})
                manager.append({"pos": 0})
                manager.checkpoint()
                usage = manager.disk_usage()
            registry = pipeline.registry
            assert registry.gauge("durability.wal_bytes").value() == (
                usage["wal_bytes"]
            )
            assert registry.gauge(
                "durability.snapshot_bytes"
            ).value() == usage["snapshot_bytes"]
        finally:
            telemetry.disable()

    def test_recover_publishes_gauges(self, tmp_path):
        with DurabilityManager(tmp_path) as manager:
            for position in range(3):
                manager.append({"pos": position})
        pipeline = telemetry.configure()
        try:
            with DurabilityManager(tmp_path) as manager:
                manager.recover()
            assert pipeline.registry.gauge(
                "durability.wal_bytes"
            ).value() > 0
        finally:
            telemetry.disable()


class TestFsyncEveryPlumbing:
    def test_dynamic_condenser_forwards_fsync_every(self, tmp_path):
        condenser = DynamicCondenser(
            3, wal_dir=tmp_path, fsync_every=16
        )
        assert condenser.fsync_every == 16
        assert condenser._manager.wal.fsync_every == 16
        condenser.close()

    def test_dynamic_recover_forwards_fsync_every(
        self, tmp_path, gaussian_data
    ):
        condenser = DynamicCondenser(
            5, random_state=0, wal_dir=tmp_path, fsync_every=4
        )
        condenser.fit()
        condenser.partial_fit(gaussian_data[:40])
        condenser.close()
        recovered = DynamicCondenser.recover(tmp_path, fsync_every=4)
        assert recovered.fsync_every == 4
        assert recovered._manager.wal.fsync_every == 4
        recovered.close()

    def test_windowed_condenser_forwards_fsync_every(self, tmp_path):
        condenser = SlidingWindowCondenser(
            2, window=6, wal_dir=tmp_path, fsync_every=8
        )
        assert condenser.fsync_every == 8
        assert condenser._manager.wal.fsync_every == 8
        condenser.close()

    def test_batched_fsync_preserves_recovery_equivalence(
        self, tmp_path, gaussian_data
    ):
        # Group commit must not change *what* is recovered after a
        # clean close — only how often the page cache is flushed.
        serial_dir = tmp_path / "serial"
        batched_dir = tmp_path / "batched"
        for directory, fsync_every in (
            (serial_dir, 1), (batched_dir, 32),
        ):
            condenser = DynamicCondenser(
                5, random_state=7, wal_dir=directory,
                fsync_every=fsync_every,
            )
            condenser.fit()
            condenser.partial_fit(gaussian_data)
            condenser.close()
        serial = DynamicCondenser.recover(serial_dir)
        batched = DynamicCondenser.recover(batched_dir)
        try:
            assert (serial.model_.to_dict()["groups"]
                    == batched.model_.to_dict()["groups"])
            assert serial.position == batched.position
        finally:
            serial.close()
            batched.close()

    def test_rejects_fsync_every_below_one(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_every"):
            DynamicCondenser(3, wal_dir=tmp_path, fsync_every=0)

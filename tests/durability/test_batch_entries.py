"""Fault injection for the ``batch`` WAL entry kind.

Batched ingest journals one entry per absorbed block, so the durable
frontier only ever advances a whole block at a time.  The contract
under test: after a crash at any byte — including mid-way through a
``batch`` entry — recovery rebuilds group statistics bit-identical to
a completed block boundary, and re-feeding the stream from that
position with the same block size reproduces the uninterrupted final
state exactly.  ``repro wal-inspect`` must render the new kind.
"""

import shutil

import numpy as np
import pytest

from repro.cli import main
from repro.core.condenser import DynamicCondenser
from repro.durability import inspect_frames

K = 4
DIMS = 3
BATCH = 16
N_BLOCKS = 25


def fingerprint(model):
    """Byte-exact signature of a model's group statistics, in order."""
    return [
        (group.count, group.first_order.tobytes(),
         group.second_order.tobytes())
        for group in model.groups
    ]


@pytest.fixture(scope="module")
def batch_reference(tmp_path_factory):
    """One durable batched run, crashed without close().

    ``states[p]`` is the fingerprint after ``p`` streamed records;
    every key is a block boundary (positions advance ``BATCH`` at a
    time), which is exactly where recovery is allowed to land.
    """
    directory = tmp_path_factory.mktemp("batch-ref")
    rng = np.random.default_rng(17)
    initial = rng.normal(size=(6 * K, DIMS))
    stream = rng.normal(size=(N_BLOCKS * BATCH, DIMS))
    condenser = DynamicCondenser(
        K, random_state=7, wal_dir=directory, checkpoint_every=10,
        batch_size=BATCH,
    )
    condenser.fit(initial)
    states = {0: fingerprint(condenser.model_)}
    for start in range(0, stream.shape[0], BATCH):
        condenser.partial_fit(stream[start:start + BATCH])
        states[condenser.position] = fingerprint(condenser.model_)
    return {
        "directory": directory,
        "stream": stream,
        "states": states,
        "final": states[stream.shape[0]],
    }


def recover_and_verify(reference, work):
    """Recover a corrupted copy, check the block-edge oracle, re-feed."""
    recovered = DynamicCondenser.recover(work, batch_size=BATCH)
    position = recovered.position
    assert position % BATCH == 0, (
        f"recovered position {position} is not a block boundary"
    )
    assert position in reference["states"]
    assert fingerprint(recovered.model_) == reference["states"][position]
    stream = reference["stream"]
    for start in range(position, stream.shape[0], BATCH):
        recovered.partial_fit(stream[start:start + BATCH])
    assert fingerprint(recovered.model_) == reference["final"]
    recovered.close()


class TestBatchEntryKillPoints:
    @pytest.mark.parametrize("trial", range(25))
    def test_truncated_wal(self, batch_reference, tmp_path, trial):
        work = tmp_path / "copy"
        shutil.copytree(batch_reference["directory"], work)
        rng = np.random.default_rng(5000 + trial)
        segments = sorted(work.glob("wal-*.log"))
        target = segments[int(rng.integers(len(segments)))]
        raw = target.read_bytes()
        target.write_bytes(raw[: int(rng.integers(0, len(raw) + 1))])
        recover_and_verify(batch_reference, work)

    @pytest.mark.parametrize("trial", range(15))
    def test_flipped_byte(self, batch_reference, tmp_path, trial):
        work = tmp_path / "copy"
        shutil.copytree(batch_reference["directory"], work)
        rng = np.random.default_rng(6000 + trial)
        segments = sorted(work.glob("wal-*.log"))
        target = segments[int(rng.integers(len(segments)))]
        raw = bytearray(target.read_bytes())
        raw[int(rng.integers(len(raw)))] ^= 0xFF
        target.write_bytes(bytes(raw))
        recover_and_verify(batch_reference, work)

    def test_torn_mid_block_entry(self, batch_reference, tmp_path):
        """Cut inside a ``batch`` entry's absorb sub-operations.

        The half-written block must be discarded wholesale: recovery
        lands on the previous block boundary, never on a partially
        absorbed block.
        """
        work = tmp_path / "copy"
        shutil.copytree(batch_reference["directory"], work)
        torn = False
        for segment in reversed(sorted(work.glob("wal-*.log"))):
            raw = segment.read_bytes()
            marker = raw.rfind(b'"op":"absorb"')
            if marker == -1:
                continue
            segment.write_bytes(raw[: marker + 8])
            torn = True
            break
        assert torn, "reference run produced no absorb sub-operation"
        recover_and_verify(batch_reference, work)

    def test_lost_last_block_entry(self, batch_reference, tmp_path):
        """Losing the newest complete entry rewinds exactly one block."""
        work = tmp_path / "copy"
        shutil.copytree(batch_reference["directory"], work)
        segment = sorted(work.glob("wal-*.log"))[-1]
        lines = segment.read_text().splitlines(keepends=True)
        segment.write_text("".join(lines[:-1]))
        recovered = DynamicCondenser.recover(work, batch_size=BATCH)
        stream_length = batch_reference["stream"].shape[0]
        assert recovered.position == stream_length - BATCH
        recovered.close()
        recover_and_verify(batch_reference, work)


class TestBatchEntryInspection:
    def test_frames_carry_the_batch_kind(self, batch_reference):
        frames = list(inspect_frames(batch_reference["directory"]))
        kinds = {frame["kind"] for frame in frames}
        assert "batch" in kinds
        batch_frames = [
            frame for frame in frames if frame["kind"] == "batch"
        ]
        assert all(frame["status"] == "ok" for frame in batch_frames)

    def test_wal_inspect_cli_renders_batch(self, batch_reference, capsys):
        exit_code = main(
            ["wal-inspect", str(batch_reference["directory"])]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "batch" in output

    def test_recover_cli_handles_batch_entries(
        self, batch_reference, tmp_path, capsys
    ):
        work = tmp_path / "copy"
        shutil.copytree(batch_reference["directory"], work)
        exit_code = main(["recover", str(work), "--dry-run"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "resume the upstream feed from position" in output

"""Unit tests for the WAL + checkpoint coordination protocol."""

import pytest

from repro.durability import (
    DurabilityManager,
    latest_snapshot,
    list_snapshots,
)


class TestValidation:
    def test_rejects_negative_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            DurabilityManager(tmp_path, checkpoint_every=-1)

    def test_rejects_zero_keep(self, tmp_path):
        with pytest.raises(ValueError, match="keep_snapshots"):
            DurabilityManager(tmp_path, keep_snapshots=0)

    def test_bind_requires_callable(self, tmp_path):
        with DurabilityManager(tmp_path) as manager:
            with pytest.raises(TypeError):
                manager.bind("not callable")

    def test_checkpoint_requires_provider(self, tmp_path):
        with DurabilityManager(tmp_path) as manager:
            with pytest.raises(RuntimeError, match="state provider"):
                manager.checkpoint()


class TestCheckpointing:
    def test_auto_checkpoint_on_cadence(self, tmp_path):
        with DurabilityManager(tmp_path, checkpoint_every=5) as manager:
            manager.bind(lambda: {"position": manager.wal.last_seq})
            for position in range(12):
                manager.append({"pos": position})
        snapshots = list_snapshots(tmp_path)
        assert len(snapshots) == 2  # seq 5 and 10, default keep=2
        info = latest_snapshot(tmp_path)
        assert info.seq == 10
        assert info.state == {"position": 10}

    def test_no_auto_checkpoint_without_provider(self, tmp_path):
        with DurabilityManager(tmp_path, checkpoint_every=2) as manager:
            for position in range(6):
                manager.append({"pos": position})
        assert list_snapshots(tmp_path) == []

    def test_snapshot_retention(self, tmp_path):
        with DurabilityManager(
            tmp_path, checkpoint_every=2, keep_snapshots=3
        ) as manager:
            manager.bind(lambda: {"position": 0})
            for position in range(20):
                manager.append({"pos": position})
        assert len(list_snapshots(tmp_path)) == 3

    def test_wal_pruned_only_to_oldest_snapshot(self, tmp_path):
        with DurabilityManager(
            tmp_path, checkpoint_every=4, keep_snapshots=2,
            max_segment_bytes=80,
        ) as manager:
            manager.bind(lambda: {"position": 0})
            for position in range(16):
                manager.append({"pos": position, "pad": "p" * 20})
            # The oldest retained snapshot covers seq 12; its tail
            # (entries 13..16) must still be replayable so recovery can
            # fall back past a torn newest snapshot.
            replayed = list(manager.wal.replay(after_seq=12))
            assert [seq for seq, __ in replayed] == [13, 14, 15, 16]


class TestRecover:
    def test_empty_directory(self, tmp_path):
        with DurabilityManager(tmp_path) as manager:
            recovered = manager.recover()
        assert recovered.is_empty
        assert recovered.snapshot_state is None
        assert recovered.entries == []
        assert recovered.last_seq == 0

    def test_snapshot_plus_tail(self, tmp_path):
        with DurabilityManager(tmp_path, checkpoint_every=3) as manager:
            manager.bind(lambda: {"position": manager.wal.last_seq})
            for position in range(8):
                manager.append({"pos": position})
        with DurabilityManager(tmp_path) as manager:
            recovered = manager.recover()
        assert recovered.snapshot_state == {"position": 6}
        assert [seq for seq, __ in recovered.entries] == [7, 8]
        assert recovered.last_seq == 8

    def test_wal_only(self, tmp_path):
        with DurabilityManager(tmp_path) as manager:
            for position in range(4):
                manager.append({"pos": position})
        with DurabilityManager(tmp_path) as manager:
            recovered = manager.recover()
        assert recovered.snapshot_state is None
        assert len(recovered.entries) == 4

    def test_falls_back_past_torn_snapshot(self, tmp_path):
        with DurabilityManager(tmp_path, checkpoint_every=3) as manager:
            manager.bind(lambda: {"position": manager.wal.last_seq})
            for position in range(8):
                manager.append({"pos": position})
        newest = list_snapshots(tmp_path)[-1]
        newest.write_text(newest.read_text()[:11])
        with DurabilityManager(tmp_path) as manager:
            recovered = manager.recover()
        # Fallback anchor is the seq-3 snapshot; entries 4..8 replay.
        assert recovered.snapshot_state == {"position": 3}
        assert [seq for seq, __ in recovered.entries] == [4, 5, 6, 7, 8]

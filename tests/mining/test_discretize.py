"""Tests for repro.mining.discretize."""

import numpy as np
import pytest

from repro.mining.discretize import (
    EqualFrequencyDiscretizer,
    EqualWidthDiscretizer,
    transactions_from_bins,
)


class TestEqualWidthDiscretizer:
    def test_bins_in_range(self, gaussian_data):
        bins = EqualWidthDiscretizer(n_bins=4).fit_transform(gaussian_data)
        assert bins.min() >= 0
        assert bins.max() <= 3

    def test_uniform_data_evenly_split(self):
        data = np.linspace(0, 1, 1000).reshape(-1, 1)
        bins = EqualWidthDiscretizer(n_bins=4).fit_transform(data)
        counts = np.bincount(bins[:, 0], minlength=4)
        assert (np.abs(counts - 250) <= 1).all()

    def test_monotone_in_value(self, rng):
        data = rng.normal(size=(100, 1))
        discretizer = EqualWidthDiscretizer(n_bins=5).fit(data)
        bins = discretizer.transform(data)[:, 0]
        order = np.argsort(data[:, 0])
        assert (np.diff(bins[order]) >= 0).all()

    def test_unseen_extremes_clamp_to_outer_bins(self, gaussian_data):
        discretizer = EqualWidthDiscretizer(n_bins=4).fit(gaussian_data)
        extremes = np.array([[-1e6] * 4, [1e6] * 4])
        bins = discretizer.transform(extremes)
        assert (bins[0] == 0).all()
        assert (bins[1] == 3).all()

    def test_constant_column(self):
        data = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        bins = EqualWidthDiscretizer(n_bins=3).fit_transform(data)
        assert len(set(bins[:, 0].tolist())) == 1

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            EqualWidthDiscretizer().transform(np.zeros((2, 2)))

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            EqualWidthDiscretizer(n_bins=1)

    def test_dimension_mismatch(self, gaussian_data):
        discretizer = EqualWidthDiscretizer().fit(gaussian_data)
        with pytest.raises(ValueError):
            discretizer.transform(gaussian_data[:, :2])


class TestEqualFrequencyDiscretizer:
    def test_balanced_counts_on_continuous_data(self, rng):
        data = rng.normal(size=(1000, 1))
        bins = EqualFrequencyDiscretizer(n_bins=4).fit_transform(data)
        counts = np.bincount(bins[:, 0], minlength=4)
        assert counts.min() >= 200

    def test_skewed_data_still_balanced(self, rng):
        data = rng.exponential(size=(1000, 1))
        bins = EqualFrequencyDiscretizer(n_bins=4).fit_transform(data)
        counts = np.bincount(bins[:, 0], minlength=4)
        assert counts.min() >= 200

    def test_bins_in_range(self, gaussian_data):
        bins = EqualFrequencyDiscretizer(n_bins=3).fit_transform(
            gaussian_data
        )
        assert bins.min() >= 0
        assert bins.max() <= 2

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            EqualFrequencyDiscretizer().transform(np.zeros((2, 2)))


class TestTransactionsFromBins:
    def test_item_format(self):
        bins = np.array([[0, 2], [1, 0]])
        transactions = transactions_from_bins(bins, ["age", "income"])
        assert transactions[0] == frozenset({"age=0", "income=2"})
        assert transactions[1] == frozenset({"age=1", "income=0"})

    def test_default_names(self):
        transactions = transactions_from_bins(np.array([[1]]))
        assert transactions[0] == frozenset({"attr_0=1"})

    def test_one_item_per_attribute(self, gaussian_data):
        bins = EqualWidthDiscretizer().fit_transform(gaussian_data)
        transactions = transactions_from_bins(bins)
        assert all(len(t) == 4 for t in transactions)

    def test_name_count_checked(self):
        with pytest.raises(ValueError, match="feature names"):
            transactions_from_bins(np.zeros((2, 3), dtype=int), ["a"])

"""Tests for repro.mining.gmm."""

import numpy as np
import pytest

from repro.mining.gmm import GaussianMixture


def two_component_data(rng, n=400):
    a = rng.multivariate_normal(
        [0.0, 0.0], [[1.0, 0.5], [0.5, 1.0]], size=n // 2,
        method="cholesky",
    )
    b = rng.multivariate_normal(
        [8.0, 8.0], [[0.5, -0.2], [-0.2, 0.5]], size=n // 2,
        method="cholesky",
    )
    return np.vstack([a, b])


class TestGaussianMixtureFit:
    def test_recovers_component_means(self, rng):
        data = two_component_data(rng)
        model = GaussianMixture(n_components=2, random_state=0).fit(data)
        means = model.means_[np.argsort(model.means_[:, 0])]
        np.testing.assert_allclose(means[0], [0.0, 0.0], atol=0.3)
        np.testing.assert_allclose(means[1], [8.0, 8.0], atol=0.3)

    def test_recovers_weights(self, rng):
        data = two_component_data(rng)
        model = GaussianMixture(n_components=2, random_state=0).fit(data)
        np.testing.assert_allclose(np.sort(model.weights_), [0.5, 0.5],
                                   atol=0.05)

    def test_recovers_covariance_structure(self, rng):
        data = two_component_data(rng, n=2000)
        model = GaussianMixture(n_components=2, random_state=0).fit(data)
        low = int(np.argmin(model.means_[:, 0]))
        np.testing.assert_allclose(
            model.covariances_[low],
            [[1.0, 0.5], [0.5, 1.0]],
            atol=0.2,
        )

    def test_converges(self, rng):
        data = two_component_data(rng)
        model = GaussianMixture(n_components=2, random_state=0).fit(data)
        assert model.converged_
        assert model.n_iter_ < model.max_iter

    def test_likelihood_improves_with_right_component_count(self, rng):
        data = two_component_data(rng)
        one = GaussianMixture(n_components=1, random_state=0).fit(data)
        two = GaussianMixture(n_components=2, random_state=0).fit(data)
        assert two.score(data) > one.score(data) + 0.5

    def test_single_component_matches_moments(self, rng):
        data = rng.normal(size=(300, 3))
        model = GaussianMixture(n_components=1, random_state=0).fit(data)
        np.testing.assert_allclose(
            model.means_[0], data.mean(axis=0), atol=1e-6
        )
        np.testing.assert_allclose(
            model.covariances_[0], np.cov(data.T, bias=True), atol=1e-4
        )


class TestGaussianMixtureInference:
    def test_predict_separates_components(self, rng):
        data = two_component_data(rng)
        model = GaussianMixture(n_components=2, random_state=0).fit(data)
        labels = model.predict(data)
        first_half = set(labels[:200].tolist())
        second_half = set(labels[200:].tolist())
        assert len(first_half) == 1
        assert len(second_half) == 1
        assert first_half != second_half

    def test_proba_rows_sum_to_one(self, rng):
        data = two_component_data(rng)
        model = GaussianMixture(n_components=2, random_state=0).fit(data)
        probabilities = model.predict_proba(data[:20])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_score_samples_higher_near_modes(self, rng):
        data = two_component_data(rng)
        model = GaussianMixture(n_components=2, random_state=0).fit(data)
        near = model.score_samples(np.array([[0.0, 0.0]]))
        far = model.score_samples(np.array([[4.0, 4.0]]))
        assert near[0] > far[0]

    def test_sampling_matches_fit(self, rng):
        data = two_component_data(rng, n=1000)
        model = GaussianMixture(n_components=2, random_state=0).fit(data)
        samples = model.sample(5000, random_state=1)
        np.testing.assert_allclose(
            samples.mean(axis=0), data.mean(axis=0), atol=0.3
        )

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            GaussianMixture().predict(np.zeros((1, 2)))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            GaussianMixture(n_components=0)
        with pytest.raises(ValueError):
            GaussianMixture(max_iter=0)
        with pytest.raises(ValueError):
            GaussianMixture(n_components=10).fit(rng.normal(size=(5, 2)))
        model = GaussianMixture(n_components=1, random_state=0).fit(
            rng.normal(size=(20, 2))
        )
        with pytest.raises(ValueError, match="n_samples"):
            model.sample(0)


class TestGenerativeUtility:
    def test_mixture_on_condensed_data_generalizes(self, rng):
        # Fit on the anonymized release, evaluate log-likelihood of
        # held-out *original* records: must be close to the model fit
        # on the original training records.
        from repro.core.condenser import StaticCondenser

        data = two_component_data(rng, n=1200)
        train, held_out = data[:800], data[800:]
        anonymized = StaticCondenser(k=20, random_state=0).fit_generate(
            train
        )
        on_original = GaussianMixture(
            n_components=2, random_state=0
        ).fit(train)
        on_release = GaussianMixture(
            n_components=2, random_state=0
        ).fit(anonymized)
        gap = on_original.score(held_out) - on_release.score(held_out)
        assert gap < 0.3

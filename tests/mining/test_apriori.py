"""Tests for repro.mining.apriori."""

import pytest

from repro.mining.apriori import (
    association_rules,
    frequent_itemsets,
    rule_overlap,
)

MARKET_BASKET = [
    {"bread", "milk"},
    {"bread", "diapers", "beer", "eggs"},
    {"milk", "diapers", "beer", "cola"},
    {"bread", "milk", "diapers", "beer"},
    {"bread", "milk", "diapers", "cola"},
]


class TestFrequentItemsets:
    def test_single_item_supports(self):
        frequent = frequent_itemsets(MARKET_BASKET, min_support=0.2)
        assert frequent[frozenset(["bread"])] == pytest.approx(0.8)
        assert frequent[frozenset(["milk"])] == pytest.approx(0.8)
        assert frequent[frozenset(["beer"])] == pytest.approx(0.6)

    def test_pair_support(self):
        frequent = frequent_itemsets(MARKET_BASKET, min_support=0.2)
        assert frequent[frozenset(["diapers", "beer"])] == pytest.approx(
            0.6
        )

    def test_min_support_filters(self):
        frequent = frequent_itemsets(MARKET_BASKET, min_support=0.7)
        assert frozenset(["beer"]) not in frequent
        assert frozenset(["bread"]) in frequent

    def test_downward_closure(self):
        # Every subset of a frequent itemset is itself frequent.
        frequent = frequent_itemsets(MARKET_BASKET, min_support=0.2)
        for itemset in frequent:
            for item in itemset:
                assert itemset - {item} in frequent or len(itemset) == 1

    def test_support_monotone_in_size(self):
        frequent = frequent_itemsets(MARKET_BASKET, min_support=0.2)
        for itemset, support in frequent.items():
            for item in itemset:
                if len(itemset) > 1:
                    assert frequent[itemset - {item}] >= support - 1e-12

    def test_max_length(self):
        frequent = frequent_itemsets(
            MARKET_BASKET, min_support=0.2, max_length=1
        )
        assert all(len(itemset) == 1 for itemset in frequent)

    def test_brute_force_agreement(self):
        # Exhaustive enumeration on a small random transaction set.
        import itertools
        import random

        rng = random.Random(0)
        items = list("abcde")
        transactions = [
            frozenset(item for item in items if rng.random() < 0.5)
            for __ in range(40)
        ]
        frequent = frequent_itemsets(transactions, min_support=0.25)
        for size in (1, 2, 3):
            for combination in itertools.combinations(items, size):
                itemset = frozenset(combination)
                support = sum(
                    1 for t in transactions if itemset <= t
                ) / len(transactions)
                if support >= 0.25:
                    assert itemset in frequent
                    assert frequent[itemset] == pytest.approx(support)
                else:
                    assert itemset not in frequent

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            frequent_itemsets(MARKET_BASKET, min_support=0.0)

    def test_empty_transactions(self):
        with pytest.raises(ValueError):
            frequent_itemsets([], min_support=0.5)


class TestAssociationRules:
    def test_classic_diapers_beer_rule(self):
        rules = association_rules(
            MARKET_BASKET, min_support=0.4, min_confidence=0.7
        )
        keys = {(rule.antecedent, rule.consequent) for rule in rules}
        assert (frozenset(["beer"]), frozenset(["diapers"])) in keys

    def test_confidence_computation(self):
        rules = association_rules(
            MARKET_BASKET, min_support=0.2, min_confidence=0.1
        )
        by_key = {
            (rule.antecedent, rule.consequent): rule for rule in rules
        }
        rule = by_key[(frozenset(["beer"]), frozenset(["diapers"]))]
        assert rule.confidence == pytest.approx(1.0)
        assert rule.support == pytest.approx(0.6)
        assert rule.lift == pytest.approx(1.0 / 0.8)

    def test_rules_meet_thresholds(self):
        rules = association_rules(
            MARKET_BASKET, min_support=0.3, min_confidence=0.6
        )
        for rule in rules:
            assert rule.support >= 0.3 - 1e-12
            assert rule.confidence >= 0.6 - 1e-12

    def test_sorted_by_lift(self):
        rules = association_rules(
            MARKET_BASKET, min_support=0.2, min_confidence=0.2
        )
        lifts = [rule.lift for rule in rules]
        assert lifts == sorted(lifts, reverse=True)

    def test_str_rendering(self):
        rules = association_rules(
            MARKET_BASKET, min_support=0.4, min_confidence=0.7
        )
        rendered = str(rules[0])
        assert "->" in rendered
        assert "confidence=" in rendered

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            association_rules(MARKET_BASKET, min_confidence=0.0)


class TestRuleOverlap:
    def test_identical_sets(self):
        rules = association_rules(
            MARKET_BASKET, min_support=0.2, min_confidence=0.5
        )
        assert rule_overlap(rules, list(rules)) == pytest.approx(1.0)

    def test_disjoint_sets(self):
        rules = association_rules(
            MARKET_BASKET, min_support=0.2, min_confidence=0.5
        )
        assert rule_overlap(rules, []) == 0.0

    def test_empty_sets(self):
        assert rule_overlap([], []) == pytest.approx(1.0)


class TestMaximalItemsets:
    def test_subsets_removed(self):
        from repro.mining.apriori import maximal_itemsets

        frequent = frequent_itemsets(MARKET_BASKET, min_support=0.4)
        maximal = maximal_itemsets(frequent)
        for itemset in maximal:
            assert not any(
                itemset < other for other in maximal
            )

    def test_every_frequent_itemset_covered(self):
        from repro.mining.apriori import maximal_itemsets

        frequent = frequent_itemsets(MARKET_BASKET, min_support=0.4)
        maximal = maximal_itemsets(frequent)
        for itemset in frequent:
            assert any(itemset <= kept for kept in maximal)

    def test_supports_preserved(self):
        from repro.mining.apriori import maximal_itemsets

        frequent = frequent_itemsets(MARKET_BASKET, min_support=0.4)
        maximal = maximal_itemsets(frequent)
        for itemset, support in maximal.items():
            assert support == frequent[itemset]

    def test_empty_input(self):
        from repro.mining.apriori import maximal_itemsets

        assert maximal_itemsets({}) == {}

"""Tests for repro.mining.dbscan."""

import numpy as np
import pytest

from repro.mining.dbscan import DBSCAN, NOISE


def two_moons_like(rng):
    """Two dense blobs plus scattered outliers."""
    blob_a = rng.normal(loc=0.0, scale=0.3, size=(60, 2))
    blob_b = rng.normal(loc=5.0, scale=0.3, size=(60, 2))
    outliers = rng.uniform(-10, 15, size=(8, 2))
    # Keep outliers away from the blobs.
    outliers = outliers[
        (np.abs(outliers - 0.0).max(axis=1) > 2.0)
        & (np.abs(outliers - 5.0).max(axis=1) > 2.0)
    ]
    return np.vstack([blob_a, blob_b, outliers]), outliers.shape[0]


class TestDBSCAN:
    def test_finds_two_clusters(self, rng):
        data, __ = two_moons_like(rng)
        model = DBSCAN(eps=0.8, min_samples=5).fit(data)
        assert model.n_clusters_ == 2

    def test_blob_members_share_labels(self, rng):
        data, __ = two_moons_like(rng)
        labels = DBSCAN(eps=0.8, min_samples=5).fit_predict(data)
        assert len(set(labels[:60].tolist()) - {NOISE}) == 1
        assert len(set(labels[60:120].tolist()) - {NOISE}) == 1

    def test_outliers_marked_noise(self, rng):
        data, n_outliers = two_moons_like(rng)
        labels = DBSCAN(eps=0.8, min_samples=5).fit_predict(data)
        assert (labels[120:] == NOISE).all()
        assert np.sum(labels == NOISE) >= n_outliers

    def test_single_dense_cluster(self, rng):
        data = rng.normal(scale=0.1, size=(50, 3))
        model = DBSCAN(eps=1.0, min_samples=3).fit(data)
        assert model.n_clusters_ == 1
        assert (model.labels_ == 0).all()

    def test_everything_noise_with_tiny_eps(self, rng):
        data = rng.uniform(size=(30, 2)) * 100
        model = DBSCAN(eps=1e-6, min_samples=2).fit(data)
        assert model.n_clusters_ == 0
        assert (model.labels_ == NOISE).all()

    def test_core_points_identified(self, rng):
        data, __ = two_moons_like(rng)
        model = DBSCAN(eps=0.8, min_samples=5).fit(data)
        assert model.core_sample_indices_.shape[0] > 100
        # No outlier is a core point.
        assert (model.core_sample_indices_ < 120).all()

    def test_min_samples_one_makes_everything_core(self, rng):
        data = rng.uniform(size=(20, 2)) * 100
        model = DBSCAN(eps=0.1, min_samples=1).fit(data)
        # Every point is its own core point -> 20 singleton clusters.
        assert model.n_clusters_ == 20

    def test_border_points_join_clusters(self):
        # A dense line with one point just inside eps of the edge.
        line = np.column_stack([np.linspace(0, 1, 20), np.zeros(20)])
        border = np.array([[1.4, 0.0]])
        data = np.vstack([line, border])
        labels = DBSCAN(eps=0.5, min_samples=4).fit_predict(data)
        assert labels[-1] == labels[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0.0)
        with pytest.raises(ValueError):
            DBSCAN(min_samples=0)
        with pytest.raises(ValueError):
            DBSCAN().fit(np.empty((0, 2)))

    def test_cluster_structure_survives_condensation(self, rng):
        # Density structure on the anonymized release: the two dominant
        # clusters must still be found.  (Outlier-contaminated groups
        # get inflated covariances, so the release can have *more*
        # low-density points than the original — the locality
        # sensitivity the paper's §2.2 warns about for sparse regions.)
        data, __ = two_moons_like(rng)
        from repro.core.condenser import StaticCondenser

        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            data
        )
        model = DBSCAN(eps=0.8, min_samples=5).fit(anonymized)
        assert model.n_clusters_ >= 2
        labels = model.labels_
        clusters, counts = np.unique(
            labels[labels != NOISE], return_counts=True
        )
        # The two biggest clusters hold the bulk of the release.
        assert np.sort(counts)[-2:].sum() >= 90

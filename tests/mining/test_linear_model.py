"""Tests for repro.mining.linear_model."""

import numpy as np
import pytest

from repro.mining.linear_model import LinearRegression, RidgeRegression


def linear_data(rng, n=200, d=3, noise=0.01):
    data = rng.normal(size=(n, d))
    coef = np.array([2.0, -1.0, 0.5][:d])
    targets = data @ coef + 3.0 + noise * rng.normal(size=n)
    return data, targets, coef


class TestLinearRegression:
    def test_recovers_coefficients(self, rng):
        data, targets, coef = linear_data(rng)
        model = LinearRegression().fit(data, targets)
        np.testing.assert_allclose(model.coef_, coef, atol=0.01)
        assert model.intercept_ == pytest.approx(3.0, abs=0.01)

    def test_r2_near_one_on_clean_data(self, rng):
        data, targets, __ = linear_data(rng)
        model = LinearRegression().fit(data, targets)
        assert model.score(data, targets) > 0.999

    def test_without_intercept(self, rng):
        data = rng.normal(size=(100, 2))
        targets = data @ np.array([1.0, 2.0])
        model = LinearRegression(fit_intercept=False).fit(data, targets)
        assert model.intercept_ == 0.0
        np.testing.assert_allclose(
            model.coef_, [1.0, 2.0], atol=1e-10
        )

    def test_underdetermined_still_fits(self, rng):
        data = rng.normal(size=(3, 10))
        targets = rng.normal(size=3)
        model = LinearRegression().fit(data, targets)
        np.testing.assert_allclose(
            model.predict(data), targets, atol=1e-8
        )

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((1, 2)))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            LinearRegression().fit(rng.normal(size=(5, 2)), np.zeros(4))


class TestRidgeRegression:
    def test_zero_alpha_matches_ols(self, rng):
        data, targets, __ = linear_data(rng)
        ols = LinearRegression().fit(data, targets)
        ridge = RidgeRegression(alpha=0.0).fit(data, targets)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-6)
        assert ridge.intercept_ == pytest.approx(ols.intercept_, abs=1e-6)

    def test_shrinkage_with_large_alpha(self, rng):
        data, targets, __ = linear_data(rng)
        small = RidgeRegression(alpha=0.01).fit(data, targets)
        large = RidgeRegression(alpha=1e6).fit(data, targets)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_intercept_not_regularized(self, rng):
        data = rng.normal(size=(200, 2))
        targets = 100.0 + 0.0 * data[:, 0] + 0.01 * rng.normal(size=200)
        model = RidgeRegression(alpha=1e6).fit(data, targets)
        assert model.intercept_ == pytest.approx(100.0, abs=0.1)

    def test_stabilizes_collinear_features(self, rng):
        x = rng.normal(size=500)
        data = np.column_stack([x, x + 1e-9 * rng.normal(size=500)])
        targets = x + 0.1 * rng.normal(size=500)
        model = RidgeRegression(alpha=1.0).fit(data, targets)
        assert np.abs(model.coef_).max() < 10.0
        assert model.score(data, targets) > 0.9

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-0.5)

    def test_without_intercept(self, rng):
        data = rng.normal(size=(100, 2))
        targets = data @ np.array([1.0, -1.0])
        model = RidgeRegression(alpha=1e-8, fit_intercept=False).fit(
            data, targets
        )
        assert model.intercept_ == 0.0
        np.testing.assert_allclose(model.coef_, [1.0, -1.0], atol=1e-4)

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((1, 2)))

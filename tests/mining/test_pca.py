"""Tests for repro.mining.pca."""

import numpy as np
import pytest

from repro.mining.pca import PCA, subspace_alignment


def elongated_data(rng, n=500):
    # Variance 25 along a known direction, 1 along the orthogonal one.
    direction = np.array([0.6, 0.8])
    orthogonal = np.array([-0.8, 0.6])
    coefficients = rng.normal(size=(n, 2)) * np.array([5.0, 1.0])
    return coefficients @ np.vstack([direction, orthogonal]) + np.array(
        [10.0, -3.0]
    )


class TestPCA:
    def test_finds_elongated_direction(self, rng):
        data = elongated_data(rng)
        model = PCA(n_components=1).fit(data)
        axis = model.components_[0]
        alignment = abs(axis @ np.array([0.6, 0.8]))
        assert alignment > 0.99

    def test_explained_variance(self, rng):
        data = elongated_data(rng)
        model = PCA().fit(data)
        assert model.explained_variance_[0] == pytest.approx(25.0,
                                                             rel=0.15)
        assert model.explained_variance_[1] == pytest.approx(1.0,
                                                             rel=0.2)

    def test_ratio_sums_to_one_with_all_components(self, gaussian_data):
        model = PCA().fit(gaussian_data)
        assert model.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_transform_decorrelates(self, gaussian_data):
        projected = PCA().fit_transform(gaussian_data)
        covariance = np.cov(projected.T, bias=True)
        off_diagonal = covariance - np.diag(np.diag(covariance))
        assert np.abs(off_diagonal).max() < 1e-8

    def test_inverse_round_trip_full_rank(self, gaussian_data):
        model = PCA().fit(gaussian_data)
        round_trip = model.inverse_transform(
            model.transform(gaussian_data)
        )
        np.testing.assert_allclose(round_trip, gaussian_data, atol=1e-8)

    def test_truncation_reduces_reconstruction(self, rng):
        data = elongated_data(rng)
        truncated = PCA(n_components=1).fit(data)
        reconstruction = truncated.inverse_transform(
            truncated.transform(data)
        )
        residual = np.abs(reconstruction - data).max()
        assert residual > 0.01  # information was genuinely dropped
        # But the retained axis captures most variance.
        assert truncated.explained_variance_ratio_[0] > 0.9

    def test_validation(self, gaussian_data):
        with pytest.raises(ValueError):
            PCA(n_components=0)
        with pytest.raises(ValueError):
            PCA(n_components=10).fit(gaussian_data)
        with pytest.raises(ValueError):
            PCA().fit(gaussian_data[:1])
        with pytest.raises(RuntimeError):
            PCA().transform(gaussian_data)


class TestSubspaceAlignment:
    def test_self_alignment(self, gaussian_data):
        model = PCA().fit(gaussian_data)
        assert subspace_alignment(model, model, 2) == pytest.approx(1.0)

    def test_condensed_data_preserves_principal_subspace(
        self, gaussian_data
    ):
        from repro.core.condenser import StaticCondenser

        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            gaussian_data
        )
        original_pca = PCA().fit(gaussian_data)
        anonymized_pca = PCA().fit(anonymized)
        assert subspace_alignment(original_pca, anonymized_pca, 2) > 0.9

    def test_rotated_data_misaligns(self, rng):
        data = elongated_data(rng)
        rotation = np.array([[0.0, -1.0], [1.0, 0.0]])
        rotated = data @ rotation.T
        a = PCA().fit(data)
        b = PCA().fit(rotated)
        assert subspace_alignment(a, b, 1) < 0.1

    def test_unfitted_rejected(self, gaussian_data):
        with pytest.raises(RuntimeError):
            subspace_alignment(PCA(), PCA().fit(gaussian_data), 1)

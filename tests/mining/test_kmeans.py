"""Tests for repro.mining.kmeans."""

import numpy as np
import pytest

from repro.mining.kmeans import KMeans, kmeans_plus_plus


def three_blobs(rng, separation=20.0):
    return np.vstack([
        rng.normal(loc=0.0, scale=0.5, size=(40, 2)),
        rng.normal(loc=separation, scale=0.5, size=(40, 2)),
        rng.normal(loc=-separation, scale=0.5, size=(40, 2)),
    ])


class TestKMeansPlusPlus:
    def test_returns_requested_count(self, rng):
        data = three_blobs(rng)
        centres = kmeans_plus_plus(data, 3, rng)
        assert centres.shape == (3, 2)

    def test_spreads_across_blobs(self, rng):
        data = three_blobs(rng)
        centres = kmeans_plus_plus(data, 3, rng)
        # With widely separated blobs, D^2 seeding picks one per blob,
        # so every pair of seeds is far apart.
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.linalg.norm(centres[i] - centres[j]) > 10.0

    def test_duplicate_points_fall_back(self, rng):
        data = np.zeros((10, 2))
        centres = kmeans_plus_plus(data, 3, rng)
        assert centres.shape == (3, 2)


class TestKMeans:
    def test_recovers_blob_structure(self, rng):
        data = three_blobs(rng)
        model = KMeans(n_clusters=3, random_state=0).fit(data)
        # Each blob maps to exactly one cluster label.
        labels = model.labels_
        for start in (0, 40, 80):
            blob_labels = set(labels[start:start + 40].tolist())
            assert len(blob_labels) == 1

    def test_inertia_decreases_with_more_clusters(self, rng):
        data = three_blobs(rng)
        inertia_1 = KMeans(n_clusters=1, random_state=0).fit(data).inertia_
        inertia_3 = KMeans(n_clusters=3, random_state=0).fit(data).inertia_
        assert inertia_3 < inertia_1

    def test_predict_matches_fit_labels(self, rng):
        data = three_blobs(rng)
        model = KMeans(n_clusters=3, random_state=0).fit(data)
        np.testing.assert_array_equal(model.predict(data), model.labels_)

    def test_fit_predict(self, rng):
        data = three_blobs(rng)
        labels = KMeans(n_clusters=3, random_state=0).fit_predict(data)
        assert labels.shape == (120,)

    def test_centres_are_cluster_means(self, rng):
        data = three_blobs(rng)
        model = KMeans(n_clusters=3, random_state=0).fit(data)
        for cluster in range(3):
            members = data[model.labels_ == cluster]
            np.testing.assert_allclose(
                model.cluster_centers_[cluster],
                members.mean(axis=0),
                atol=1e-8,
            )

    def test_deterministic_given_seed(self, rng):
        data = three_blobs(rng)
        a = KMeans(n_clusters=3, random_state=7).fit(data)
        b = KMeans(n_clusters=3, random_state=7).fit(data)
        np.testing.assert_allclose(a.cluster_centers_, b.cluster_centers_)

    def test_single_cluster(self, rng):
        data = rng.normal(size=(30, 3))
        model = KMeans(n_clusters=1, random_state=0).fit(data)
        np.testing.assert_allclose(
            model.cluster_centers_[0], data.mean(axis=0), atol=1e-8
        )

    def test_too_few_records(self):
        with pytest.raises(ValueError, match="n_clusters"):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            KMeans().predict(np.zeros((2, 2)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(max_iter=0)
        with pytest.raises(ValueError):
            KMeans(tol=-1.0)

"""Tests for repro.mining.hierarchical."""

import numpy as np
import pytest

from repro.mining.hierarchical import AgglomerativeClustering


def blobs(rng, centres=(0.0, 10.0, 20.0), size=20, scale=0.4):
    data = np.vstack([
        rng.normal(loc=centre, scale=scale, size=(size, 2))
        for centre in centres
    ])
    truth = np.repeat(np.arange(len(centres)), size)
    return data, truth


def clusters_match(labels, truth):
    """Whether two labelings induce the same partition."""
    mapping = {}
    for label, true_label in zip(labels, truth):
        if label in mapping and mapping[label] != true_label:
            return False
        mapping[label] = true_label
    return len(set(mapping.values())) == len(set(truth.tolist()))


class TestAgglomerativeClustering:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_recovers_separated_blobs(self, rng, linkage):
        data, truth = blobs(rng)
        labels = AgglomerativeClustering(
            n_clusters=3, linkage=linkage
        ).fit_predict(data)
        assert clusters_match(labels, truth)

    def test_labels_contiguous(self, rng):
        data, __ = blobs(rng)
        labels = AgglomerativeClustering(n_clusters=3).fit_predict(data)
        assert set(labels.tolist()) == {0, 1, 2}

    def test_one_cluster_merges_everything(self, rng):
        data, __ = blobs(rng)
        labels = AgglomerativeClustering(n_clusters=1).fit_predict(data)
        assert (labels == 0).all()

    def test_n_equals_records_no_merge(self, rng):
        data = rng.normal(size=(5, 2))
        model = AgglomerativeClustering(n_clusters=5).fit(data)
        assert model.merge_history_ == []
        assert sorted(set(model.labels_.tolist())) == [0, 1, 2, 3, 4]

    def test_merge_history_length(self, rng):
        data, __ = blobs(rng)
        model = AgglomerativeClustering(n_clusters=3).fit(data)
        assert len(model.merge_history_) == 60 - 3

    def test_merge_distances_mostly_increase(self, rng):
        # Average-linkage merges on clean blob data are near-monotone;
        # early merges (within blobs) are far cheaper than the final
        # cross-blob ones.
        data, __ = blobs(rng)
        model = AgglomerativeClustering(
            n_clusters=1, linkage="average"
        ).fit(data)
        distances = [entry[2] for entry in model.merge_history_]
        assert max(distances[:40]) < min(distances[-2:])

    def test_single_vs_complete_on_chain(self):
        # A chain of points: single linkage follows the chain into one
        # cluster before complete linkage does.
        chain = np.column_stack(
            [np.arange(12, dtype=float), np.zeros(12)]
        )
        chain[6:, 0] += 0.5  # slight gap in the middle
        single = AgglomerativeClustering(
            n_clusters=2, linkage="single"
        ).fit(chain)
        # Single linkage splits at the widest gap.
        assert len(set(single.labels_[:6].tolist())) == 1
        assert len(set(single.labels_[6:].tolist())) == 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=0)
        with pytest.raises(ValueError):
            AgglomerativeClustering(linkage="ward")
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=10).fit(
                rng.normal(size=(3, 2))
            )

    def test_runs_on_condensed_data(self, rng):
        from repro.core.condenser import StaticCondenser

        data, __ = blobs(rng)
        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            data
        )
        labels = AgglomerativeClustering(n_clusters=3).fit_predict(
            anonymized
        )
        # The three blob regions must map to three distinct clusters.
        regions = (anonymized[:, 0] + 5) // 10
        for region in (0, 1, 2):
            members = labels[regions == region]
            assert len(set(members.tolist())) == 1

"""Tests for repro.mining.condensed_direct — generation-free mining."""

import numpy as np
import pytest

from repro.core.condenser import ClasswiseCondenser
from repro.mining.condensed_direct import (
    CentroidClassifier,
    GroupMixtureClassifier,
)


@pytest.fixture
def fitted_condenser(labelled_blobs):
    data, labels = labelled_blobs
    return ClasswiseCondenser(k=10, random_state=0).fit(data, labels), \
        data, labels


class TestCentroidClassifier:
    def test_separable_classes(self, fitted_condenser):
        condenser, data, labels = fitted_condenser
        classifier = CentroidClassifier(condenser.models_)
        assert classifier.score(data, labels) >= 0.95

    def test_single_query(self, fitted_condenser):
        condenser, data, __ = fitted_condenser
        classifier = CentroidClassifier(condenser.models_)
        assert classifier.predict(data[0]).shape == (1,)

    def test_classes_sorted(self, fitted_condenser):
        condenser, __, __ = fitted_condenser
        classifier = CentroidClassifier(condenser.models_)
        np.testing.assert_array_equal(classifier.classes_, [0, 1])

    def test_empty_models_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            CentroidClassifier({})

    def test_dimension_mismatch_rejected(self, rng):
        from repro.core.condensation import create_condensed_groups

        models = {
            0: create_condensed_groups(rng.normal(size=(20, 2)), k=5,
                                       random_state=0),
            1: create_condensed_groups(rng.normal(size=(20, 3)), k=5,
                                       random_state=0),
        }
        with pytest.raises(ValueError, match="dimensionality"):
            CentroidClassifier(models)


class TestGroupMixtureClassifier:
    def test_separable_classes(self, fitted_condenser):
        condenser, data, labels = fitted_condenser
        classifier = GroupMixtureClassifier(condenser.models_)
        assert classifier.score(data, labels) >= 0.95

    def test_probabilities_sum_to_one(self, fitted_condenser):
        condenser, data, __ = fitted_condenser
        classifier = GroupMixtureClassifier(condenser.models_)
        probabilities = classifier.predict_proba(data[:10])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_confident_far_from_boundary(self, fitted_condenser):
        condenser, data, labels = fitted_condenser
        classifier = GroupMixtureClassifier(condenser.models_)
        # Points deep inside one class's blob get near-certain posterior.
        deep_point = data[labels == 1].mean(axis=0)
        probabilities = classifier.predict_proba(deep_point[None, :])
        assert probabilities[0].max() > 0.95

    def test_prior_reflected(self, rng):
        # Identical class distributions, 9:1 priors -> the majority
        # class dominates ambiguous predictions.
        data = rng.normal(size=(200, 2))
        labels = np.array([0] * 180 + [1] * 20)
        condenser = ClasswiseCondenser(k=10, random_state=0).fit(
            data, labels
        )
        classifier = GroupMixtureClassifier(condenser.models_)
        predictions = classifier.predict(rng.normal(size=(100, 2)))
        assert np.mean(predictions == 0) > 0.7

    def test_handles_rank_deficient_groups(self, rng):
        # Groups smaller than the dimensionality have singular
        # covariances; regularization must keep densities proper.
        data = rng.normal(size=(24, 10))
        labels = np.array([0] * 12 + [1] * 12)
        condenser = ClasswiseCondenser(k=4, random_state=0).fit(
            data, labels
        )
        classifier = GroupMixtureClassifier(condenser.models_)
        probabilities = classifier.predict_proba(data)
        assert np.isfinite(probabilities).all()

    def test_matches_generation_pipeline_accuracy(self, labelled_blobs):
        # The zero-generation path should be at least as accurate as
        # 1-NN on generated data for well-separated classes.
        from repro.neighbors.knn import KNeighborsClassifier

        data, labels = labelled_blobs
        condenser = ClasswiseCondenser(k=10, random_state=0).fit(
            data, labels
        )
        direct = GroupMixtureClassifier(condenser.models_)
        anonymized, anonymized_labels = condenser.generate()
        generated_knn = KNeighborsClassifier(n_neighbors=1).fit(
            anonymized, anonymized_labels
        )
        assert direct.score(data, labels) >= (
            generated_knn.score(data, labels) - 0.05
        )

    def test_invalid_regularization(self, fitted_condenser):
        condenser, __, __ = fitted_condenser
        with pytest.raises(ValueError, match="regularization"):
            GroupMixtureClassifier(condenser.models_, regularization=0.0)


class TestGroupMixtureRegressor:
    def make_joint_model(self, rng, n=400, k=20, noise=0.1):
        from repro.core.condensation import create_condensed_groups
        from repro.mining.condensed_direct import GroupMixtureRegressor

        x = rng.uniform(-3, 3, size=(n, 2))
        y = 2.0 * x[:, 0] - x[:, 1] + noise * rng.normal(size=n)
        joint = np.column_stack([x, y])
        model = create_condensed_groups(joint, k, random_state=0)
        return GroupMixtureRegressor(model), x, y

    def test_recovers_linear_relationship(self, rng):
        regressor, x, y = self.make_joint_model(rng)
        predictions = regressor.predict(x)
        errors = np.abs(predictions - y)
        assert errors.mean() < 0.5

    def test_beats_constant_predictor(self, rng):
        regressor, x, y = self.make_joint_model(rng)
        predictions = regressor.predict(x)
        model_mse = np.mean((predictions - y) ** 2)
        constant_mse = np.mean((y.mean() - y) ** 2)
        assert model_mse < 0.2 * constant_mse

    def test_nonlinear_function_locally_approximated(self, rng):
        from repro.core.condensation import create_condensed_groups
        from repro.mining.condensed_direct import GroupMixtureRegressor

        x = rng.uniform(-3, 3, size=(600, 1))
        y = np.sin(x[:, 0]) + 0.05 * rng.normal(size=600)
        joint = np.column_stack([x, y])
        model = create_condensed_groups(joint, 25, random_state=0)
        regressor = GroupMixtureRegressor(model)
        predictions = regressor.predict(x)
        assert np.abs(predictions - np.sin(x[:, 0])).mean() < 0.2

    def test_score_is_tolerance_accuracy(self, rng):
        regressor, x, y = self.make_joint_model(rng)
        assert regressor.score(x, y, tol=1.0) > 0.9

    def test_attribute_count_checked(self, rng):
        regressor, x, __ = self.make_joint_model(rng)
        with pytest.raises(ValueError, match="attributes"):
            regressor.predict(np.zeros((2, 5)))

    def test_validation(self, rng):
        from repro.core.condensation import create_condensed_groups
        from repro.mining.condensed_direct import GroupMixtureRegressor

        joint = rng.normal(size=(50, 3))
        model = create_condensed_groups(joint, 10, random_state=0)
        with pytest.raises(ValueError, match="regularization"):
            GroupMixtureRegressor(model, regularization=0.0)
        thin = create_condensed_groups(
            rng.normal(size=(30, 1)), 10, random_state=0
        )
        with pytest.raises(ValueError, match="at least one attribute"):
            GroupMixtureRegressor(thin)

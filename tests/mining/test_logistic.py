"""Tests for repro.mining.logistic."""

import numpy as np
import pytest

from repro.mining.logistic import LogisticRegression


class TestLogisticRegression:
    def test_separable_classes(self, labelled_blobs):
        data, labels = labelled_blobs
        model = LogisticRegression().fit(data[:100], labels[:100])
        assert model.score(data[100:], labels[100:]) >= 0.95

    def test_boundary_orientation(self, rng):
        # 1-D problem: class 1 above 0, class 0 below.
        data = np.sort(rng.normal(size=(200, 1)), axis=0)
        labels = (data[:, 0] > 0).astype(int)
        model = LogisticRegression(max_iter=5000).fit(data, labels)
        assert model.coef_[0] > 0
        assert model.predict(np.array([[3.0]]))[0] == 1
        assert model.predict(np.array([[-3.0]]))[0] == 0

    def test_probabilities_sum_to_one(self, labelled_blobs):
        data, labels = labelled_blobs
        model = LogisticRegression().fit(data, labels)
        probabilities = model.predict_proba(data[:10])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_probability_monotone_in_score(self, labelled_blobs):
        data, labels = labelled_blobs
        model = LogisticRegression().fit(data, labels)
        scores = model.decision_function(data)
        probabilities = model.predict_proba(data)[:, 1]
        order = np.argsort(scores)
        assert (np.diff(probabilities[order]) >= -1e-12).all()

    def test_string_labels(self, labelled_blobs):
        data, labels = labelled_blobs
        names = np.where(labels == 0, "neg", "pos")
        model = LogisticRegression().fit(data, names)
        assert set(model.predict(data[:10]).tolist()) <= {"neg", "pos"}

    def test_penalty_shrinks_weights(self, labelled_blobs):
        data, labels = labelled_blobs
        weak = LogisticRegression(penalty=1e-6, max_iter=500).fit(
            data, labels
        )
        strong = LogisticRegression(penalty=10.0, max_iter=500).fit(
            data, labels
        )
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_multiclass_rejected(self, rng):
        data = rng.normal(size=(30, 2))
        labels = rng.integers(0, 3, size=30)
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(data, labels)

    def test_extreme_inputs_numerically_stable(self):
        data = np.array([[1e4], [-1e4], [1e4], [-1e4]])
        labels = np.array([1, 0, 1, 0])
        model = LogisticRegression(max_iter=100).fit(data, labels)
        probabilities = model.predict_proba(data)
        assert np.isfinite(probabilities).all()

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(penalty=-1.0)
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0.0)
        with pytest.raises(ValueError):
            LogisticRegression(max_iter=0)

    def test_trains_on_condensed_data(self, labelled_blobs):
        from repro.core.condenser import ClasswiseCondenser

        data, labels = labelled_blobs
        anonymized, anonymized_labels = ClasswiseCondenser(
            k=10, random_state=0
        ).fit_generate(data, labels)
        model = LogisticRegression().fit(anonymized, anonymized_labels)
        assert model.score(data, labels) >= 0.9

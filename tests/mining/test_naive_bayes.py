"""Tests for repro.mining.naive_bayes."""

import numpy as np
import pytest

from repro.mining.naive_bayes import GaussianNaiveBayes


class TestGaussianNaiveBayes:
    def test_separable_classes(self, labelled_blobs):
        data, labels = labelled_blobs
        model = GaussianNaiveBayes().fit(data[:100], labels[:100])
        assert model.score(data[100:], labels[100:]) >= 0.9

    def test_priors_sum_to_one(self, labelled_blobs):
        data, labels = labelled_blobs
        model = GaussianNaiveBayes().fit(data, labels)
        assert model.class_prior_.sum() == pytest.approx(1.0)

    def test_per_class_means(self, labelled_blobs):
        data, labels = labelled_blobs
        model = GaussianNaiveBayes().fit(data, labels)
        for position, label in enumerate(model.classes_):
            np.testing.assert_allclose(
                model.theta_[position],
                data[labels == label].mean(axis=0),
                atol=1e-10,
            )

    def test_predict_proba_rows_sum_to_one(self, labelled_blobs):
        data, labels = labelled_blobs
        model = GaussianNaiveBayes().fit(data, labels)
        probabilities = model.predict_proba(data[:15])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_proba_argmax_matches_predict(self, labelled_blobs):
        data, labels = labelled_blobs
        model = GaussianNaiveBayes().fit(data, labels)
        probabilities = model.predict_proba(data[:15])
        np.testing.assert_array_equal(
            model.classes_[np.argmax(probabilities, axis=1)],
            model.predict(data[:15]),
        )

    def test_prior_dominates_ambiguous_point(self, rng):
        # Identical class distributions: prediction follows the prior.
        data = rng.normal(size=(100, 2))
        labels = np.array([0] * 90 + [1] * 10)
        model = GaussianNaiveBayes().fit(data, labels)
        predictions = model.predict(rng.normal(size=(50, 2)))
        assert np.mean(predictions == 0) > 0.7

    def test_string_labels(self, labelled_blobs):
        data, labels = labelled_blobs
        names = np.where(labels == 0, "neg", "pos")
        model = GaussianNaiveBayes().fit(data, names)
        assert set(model.predict(data[:10]).tolist()) <= {"neg", "pos"}

    def test_constant_feature_smoothed(self):
        data = np.column_stack([np.ones(20), np.arange(20, dtype=float)])
        labels = np.array([0] * 10 + [1] * 10)
        model = GaussianNaiveBayes().fit(data, labels)
        predictions = model.predict(data)
        assert np.isfinite(model.var_).all()
        assert (model.var_ > 0).all()
        assert predictions.shape == (20,)

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            GaussianNaiveBayes().predict(np.zeros((1, 2)))

    def test_feature_count_mismatch(self, labelled_blobs):
        data, labels = labelled_blobs
        model = GaussianNaiveBayes().fit(data, labels)
        with pytest.raises(ValueError, match="attributes"):
            model.predict(np.zeros((1, 5)))

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes(var_smoothing=-1.0)

    def test_label_shape_mismatch(self, gaussian_data):
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(gaussian_data, np.zeros(5))

"""Tests for repro.mining.decision_tree."""

import numpy as np
import pytest

from repro.mining.decision_tree import DecisionTreeClassifier, _gini


class TestGini:
    def test_pure_node(self):
        assert _gini(np.array([10.0, 0.0])) == 0.0

    def test_even_split(self):
        assert _gini(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_empty_node(self):
        assert _gini(np.array([0.0, 0.0])) == 0.0


class TestDecisionTree:
    def test_axis_aligned_boundary(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(-1, 1, size=(200, 2))
        labels = (data[:, 0] > 0.2).astype(int)
        tree = DecisionTreeClassifier(max_depth=3).fit(data, labels)
        assert tree.score(data, labels) >= 0.98

    def test_xor_needs_depth_two(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(-1, 1, size=(400, 2))
        labels = ((data[:, 0] > 0) ^ (data[:, 1] > 0)).astype(int)
        shallow = DecisionTreeClassifier(max_depth=1).fit(data, labels)
        deep = DecisionTreeClassifier(max_depth=4).fit(data, labels)
        assert deep.score(data, labels) > shallow.score(data, labels)
        assert deep.score(data, labels) >= 0.9

    def test_max_depth_zero_predicts_majority(self, labelled_blobs):
        data, labels = labelled_blobs
        skewed = labels.copy()
        skewed[:90] = 0
        tree = DecisionTreeClassifier(max_depth=0).fit(data, skewed)
        assert (tree.predict(data) == 0).all()
        assert tree.depth == 0

    def test_separable_blobs(self, labelled_blobs):
        data, labels = labelled_blobs
        tree = DecisionTreeClassifier().fit(data[:100], labels[:100])
        assert tree.score(data[100:], labels[100:]) >= 0.9

    def test_min_samples_leaf_respected(self, labelled_blobs):
        data, labels = labelled_blobs
        tree = DecisionTreeClassifier(min_samples_leaf=30).fit(data, labels)
        # 120 records with 30-record leaves bounds the tree to few nodes.
        assert tree.n_nodes_ <= 7

    def test_string_labels(self):
        data = np.array([[0.0], [0.1], [5.0], [5.1]])
        labels = np.array(["a", "a", "b", "b"])
        tree = DecisionTreeClassifier().fit(data, labels)
        assert tree.predict(np.array([[0.05]]))[0] == "a"

    def test_multiclass(self, rng):
        data = np.vstack([
            rng.normal(loc=offset, scale=0.3, size=(30, 2))
            for offset in (0.0, 5.0, 10.0)
        ])
        labels = np.repeat([0, 1, 2], 30)
        tree = DecisionTreeClassifier().fit(data, labels)
        assert tree.score(data, labels) >= 0.95

    def test_constant_features_gives_leaf(self):
        data = np.ones((10, 3))
        labels = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier().fit(data, labels)
        assert tree.depth == 0

    def test_max_thresholds_caps_split_candidates(self, rng):
        data = rng.normal(size=(300, 2))
        labels = (data[:, 0] + data[:, 1] > 0).astype(int)
        coarse = DecisionTreeClassifier(
            max_depth=4, max_thresholds=2
        ).fit(data, labels)
        fine = DecisionTreeClassifier(
            max_depth=4, max_thresholds=64
        ).fit(data, labels)
        assert fine.score(data, labels) >= coarse.score(data, labels) - 0.05

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            __ = DecisionTreeClassifier().depth

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=-1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_thresholds=0)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.empty((0, 2)), np.empty(0))

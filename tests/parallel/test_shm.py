"""Zero-copy payload lifecycle: round-trips, fallback, and no leaks.

The RES-001 promise for shared memory is absolute: a published payload
is unlinked on success, on failure, and at interpreter exit — nothing
this test file runs may leave a segment behind in ``/dev/shm``.  The
interpreter-exit case necessarily runs in a subprocess (the ``atexit``
hook only fires when the publisher dies), and the mmap fallback is
forced by monkeypatching shared memory away.
"""

import glob
import logging
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import telemetry
from repro.parallel import shm
from repro.parallel.shm import (
    PayloadDescriptor,
    attach_payload,
    detach_worker_payloads,
    publish_payload,
)


def shm_segments():
    """Names of repro-visible POSIX shared-memory segments."""
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture()
def payload_fixture():
    """A published 3-shard payload, unconditionally closed afterwards."""
    rng = np.random.default_rng(0)
    data = rng.normal(size=(30, 4))
    shards = [
        np.arange(0, 10), np.arange(10, 25), np.arange(25, 30),
    ]
    payload = publish_payload(data, shards)
    yield data, shards, payload
    payload.close()
    detach_worker_payloads()


class TestRoundTrip:
    def test_shard_records_match_fancy_indexing(self, payload_fixture):
        data, shards, payload = payload_fixture
        attachment = attach_payload(payload.descriptor)
        for index, shard in enumerate(shards):
            np.testing.assert_array_equal(
                attachment.shard_records(index), data[shard]
            )

    def test_descriptor_is_picklable_scalars(self, payload_fixture):
        _data, _shards, payload = payload_fixture
        descriptor = payload.descriptor
        assert isinstance(descriptor, PayloadDescriptor)
        import pickle

        clone = pickle.loads(pickle.dumps(descriptor))
        assert clone == descriptor

    def test_attachment_is_cached_per_token(self, payload_fixture):
        _data, _shards, payload = payload_fixture
        first = attach_payload(payload.descriptor)
        second = attach_payload(payload.descriptor)
        assert second is first

    def test_view_is_read_only(self, payload_fixture):
        _data, _shards, payload = payload_fixture
        attachment = attach_payload(payload.descriptor)
        with pytest.raises(ValueError):
            attachment._view[0, 0] = 99.0

    def test_empty_shard_list_round_trips(self):
        payload = publish_payload(np.zeros((4, 2)), [])
        try:
            assert payload.descriptor.shard_offsets == (0,)
        finally:
            payload.close()


class TestUnlinkDiscipline:
    def test_close_unlinks_and_is_idempotent(self):
        before = shm_segments()
        payload = publish_payload(np.zeros((8, 2)), [np.arange(8)])
        payload.close()
        payload.close()
        assert payload.closed
        assert shm_segments() == before

    def test_context_manager_unlinks_on_failure(self):
        before = shm_segments()
        with pytest.raises(RuntimeError, match="boom"):
            with publish_payload(np.zeros((8, 2)), [np.arange(8)]):
                raise RuntimeError("boom")
        assert shm_segments() == before

    def test_interpreter_exit_unlinks_live_payloads(self, tmp_path):
        """Publish and *don't* close; the atexit hook must unlink."""
        script = tmp_path / "leaker.py"
        script.write_text(
            "import numpy as np\n"
            "from repro.parallel.shm import publish_payload\n"
            "payload = publish_payload(\n"
            "    np.zeros((64, 8)), [np.arange(64)]\n"
            ")\n"
            "print(payload.descriptor.backend)\n"
        )
        before = shm_segments()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"),
             env.get("PYTHONPATH", "")]
        )
        completed = subprocess.run(
            [sys.executable, str(script)], env=env,
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        assert shm_segments() == before

    def test_engine_run_leaves_no_segments(self):
        from repro.parallel import condense_sharded

        rng = np.random.default_rng(1)
        data = rng.normal(size=(400, 3))
        before = shm_segments()
        condense_sharded(
            data, k=8, n_shards=2, n_workers=2,
            strategy="mdav", random_state=0, backend="process",
        )
        assert shm_segments() == before


class TestBytesGauge:
    def test_gauge_tracks_total_of_live_payloads(self):
        pipeline = telemetry.configure()
        try:
            base = sum(
                payload.nbytes
                for payload in shm._LIVE_PAYLOADS.values()
            )
            gauge = pipeline.registry.gauge("parallel.shm.bytes")
            first = publish_payload(np.zeros((8, 2)), [np.arange(8)])
            second = publish_payload(np.zeros((16, 2)), [np.arange(16)])
            assert gauge.value() == base + first.nbytes + second.nbytes
            first.close()
            assert gauge.value() == base + second.nbytes
            second.close()
            assert gauge.value() == base
        finally:
            telemetry.disable()


class TestStaleMmapDirRetry:
    def test_failed_removal_warns_and_retries_on_next_publish(
        self, monkeypatch, caplog
    ):
        monkeypatch.setattr(shm, "_shared_memory", None)
        payload = publish_payload(np.zeros((8, 2)), [np.arange(8)])
        directory = payload.descriptor.token
        real_rmtree = shm.shutil.rmtree
        # Simulate a worker still holding the mapping: removal no-ops.
        monkeypatch.setattr(shm.shutil, "rmtree",
                            lambda *_args, **_kwargs: None)
        with caplog.at_level(logging.WARNING, logger="repro"):
            payload.close()
        assert directory in shm._STALE_MMAP_DIRS
        assert os.path.isdir(directory)
        assert any(
            "could not be removed" in record.getMessage()
            for record in caplog.records
        )
        monkeypatch.setattr(shm.shutil, "rmtree", real_rmtree)
        follow_up = publish_payload(np.zeros((4, 2)), [np.arange(4)])
        try:
            assert not os.path.exists(directory)
            assert directory not in shm._STALE_MMAP_DIRS
        finally:
            follow_up.close()


class TestMmapFallback:
    def test_forced_mmap_round_trips(self, monkeypatch, payload_fixture):
        data, shards, _payload = payload_fixture
        monkeypatch.setattr(shm, "_shared_memory", None)
        fallback = publish_payload(data, shards)
        try:
            assert fallback.descriptor.backend == "mmap"
            assert os.path.isdir(fallback.descriptor.token)
            attachment = attach_payload(fallback.descriptor)
            for index, shard in enumerate(shards):
                np.testing.assert_array_equal(
                    attachment.shard_records(index), data[shard]
                )
        finally:
            attachment.detach()
            token = fallback.descriptor.token
            fallback.close()
            assert not os.path.exists(token)

    def test_oserror_publish_falls_back_to_mmap(self, monkeypatch):
        def refuse(*_args, **_kwargs):
            raise OSError("no /dev/shm")

        monkeypatch.setattr(shm, "_publish_shm", refuse)
        payload = publish_payload(np.zeros((8, 2)), [np.arange(8)])
        try:
            assert payload.descriptor.backend == "mmap"
        finally:
            payload.close()

    def test_engine_runs_on_mmap_backend(self, monkeypatch):
        """The whole sharded run works with shared memory gone —
        subprocess so the forked workers inherit the monkeypatch."""
        script = (
            "import numpy as np\n"
            "from repro.parallel import shm\n"
            "shm._shared_memory = None\n"
            "from repro.parallel import condense_sharded\n"
            "rng = np.random.default_rng(2)\n"
            "data = rng.normal(size=(300, 3))\n"
            "model = condense_sharded(\n"
            "    data, k=8, n_shards=2, n_workers=2,\n"
            "    strategy='mdav', random_state=0, backend='process',\n"
            ")\n"
            "assert model.metadata['parallel']['effective_backend'] \\\n"
            "    == 'process'\n"
            "print('OK')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"),
             env.get("PYTHONPATH", "")]
        )
        completed = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "OK" in completed.stdout

"""The persistent warm worker pool: reuse, respawn, reaping, teardown.

The pool's contract has two halves.  The *performance* half: workers
spawn lazily, survive across runs (same PIDs on warm reuse), and idle
ones are reaped after ``idle_timeout``.  The *reliability* half: a
worker killed mid-task is respawned and the task transparently
retried (up to ``restart_limit``), task exceptions are delivered to
the caller rather than poisoning the pool, and ``close()`` is
idempotent.  The engine-facing determinism consequence — a SIGKILL'd
worker mid-shard still yields the bit-identical final model — is
exercised at the ``condense_sharded`` level here too.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro import telemetry
from repro.parallel import (
    SubmitError,
    WorkerCrashError,
    WorkerPool,
    condense_sharded,
    get_shared_pool,
    shutdown_shared_pool,
)
from repro.parallel.pool import _worker_main  # noqa: F401 - import check


def _echo(value):
    """Trivial worker task."""
    return value


def _boom(message):
    """Worker task that raises."""
    raise ValueError(message)


def _pid_of(_index):
    """Report the worker's own PID."""
    # repro-lint: disable-next=DET-001 -- the PID is the observable under test (warm reuse keeps workers alive)
    return os.getpid()


def _sleep_then_echo(seconds, value):
    """Slow worker task (lets the coordinator act mid-flight)."""
    time.sleep(seconds)
    return value


def _return_unpicklable(_index):
    """Worker task whose return value cannot cross the pipe."""
    return lambda: None


def drain(pool, n):
    """Collect ``n`` results as a key -> (value, error) dict."""
    results = {}
    for _ in range(n):
        result = pool.next_result(timeout=30.0)
        results[result.key] = (result.value, result.error)
    return results


class TestLifecycle:
    def test_construction_spawns_nothing(self):
        with WorkerPool(4) as pool:
            assert pool.alive_count() == 0

    def test_first_submit_spawns_lazily(self):
        with WorkerPool(4) as pool:
            pool.submit(_echo, 1, key="a")
            assert pool.alive_count() >= 1
            assert drain(pool, 1) == {"a": (1, None)}
            # One task never needs four workers.
            assert pool.alive_count() == 1

    def test_warm_reuse_keeps_worker_pids(self):
        with WorkerPool(2) as pool:
            for index in range(2):
                pool.submit(_pid_of, index, key=index)
            first = set(drain(pool, 2).values())
            for index in range(2):
                pool.submit(_pid_of, index, key=index)
            second = set(drain(pool, 2).values())
            assert first == second
            assert pool.worker_pids() == sorted(
                pid for pid, _err in first
            )

    def test_close_is_idempotent_and_rejects_submit(self):
        pool = WorkerPool(2)
        pool.submit(_echo, 1, key="a")
        drain(pool, 1)
        pool.close()
        pool.close()
        assert pool.closed
        assert pool.alive_count() == 0
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(_echo, 2)

    def test_idle_reap_retires_then_respawns(self):
        with WorkerPool(1, idle_timeout=0.05) as pool:
            pool.submit(_echo, 1, key="a")
            drain(pool, 1)
            time.sleep(0.1)
            assert pool.reap_idle() == 1
            assert pool.alive_count() == 0
            # The next burst respawns transparently.
            pool.submit(_echo, 2, key="b")
            assert drain(pool, 1) == {"b": (2, None)}

    def test_ensure_workers_never_shrinks(self):
        with WorkerPool(2) as pool:
            pool.ensure_workers(4)
            assert pool.n_workers == 4
            pool.ensure_workers(1)
            assert pool.n_workers == 4

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            WorkerPool(0)


class TestFailureDelivery:
    def test_task_exception_is_delivered_not_raised(self):
        with WorkerPool(1) as pool:
            pool.submit(_boom, "bad input", key="x")
            pool.submit(_echo, 7, key="y")
            results = drain(pool, 2)
            value, error = results["x"]
            assert value is None
            assert isinstance(error, ValueError)
            assert "bad input" in str(error)
            # The worker survived the exception.
            assert results["y"] == (7, None)

    def test_unpicklable_task_becomes_submit_error(self):
        with WorkerPool(1) as pool:
            pool.submit(lambda: 1, key="lam")
            _value, error = drain(pool, 1)["lam"]
            assert isinstance(error, SubmitError)

    def test_unpicklable_result_fails_task_not_worker(self):
        with WorkerPool(1) as pool:
            pool.submit(_return_unpicklable, 0, key="bad")
            _value, error = drain(pool, 1)["bad"]
            assert isinstance(error, SubmitError)
            assert "result" in str(error)
            pids = pool.worker_pids()
            # The worker survived the serialization fault and keeps
            # serving from the same process.
            pool.submit(_echo, 7, key="ok")
            assert drain(pool, 1) == {"ok": (7, None)}
            assert pool.worker_pids() == pids

    def test_next_result_with_nothing_outstanding_raises(self):
        with WorkerPool(1) as pool:
            with pytest.raises(RuntimeError, match="outstanding"):
                pool.next_result(timeout=1.0)

    def test_next_result_timeout(self):
        with WorkerPool(1) as pool:
            pool.submit(_sleep_then_echo, 5.0, 1, key="slow")
            with pytest.raises(TimeoutError):
                pool.next_result(timeout=0.3)


class TestRespawn:
    def _kill_one_worker(self, pool, deadline=5.0):
        """SIGKILL the first live worker once it exists."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            pids = pool.worker_pids()
            if pids:
                os.kill(pids[0], signal.SIGKILL)
                return pids[0]
            time.sleep(0.01)
        raise AssertionError("no worker appeared to kill")

    def test_sigkill_mid_task_respawns_and_retries(self):
        with WorkerPool(1) as pool:
            pool.submit(_sleep_then_echo, 0.5, 42, key="t")
            killed = self._kill_one_worker(pool)
            result = pool.next_result(timeout=30.0)
            assert result.key == "t"
            assert result.error is None
            assert result.value == 42
            assert pool.worker_pids() != [killed]

    def test_restart_limit_surfaces_worker_crash_error(self):
        with WorkerPool(1, restart_limit=1) as pool:
            pool.submit(os._exit, 1, key="doomed")
            _value, error = drain(pool, 1)["doomed"]
            assert isinstance(error, WorkerCrashError)

    def test_sigkill_mid_shard_model_is_bit_identical(self):
        """The ISSUE's headline reliability test: kill a worker while a
        shard is condensing; the respawn + retry must reproduce the
        exact model an undisturbed run yields."""
        rng = np.random.default_rng(7)
        data = rng.normal(size=(600, 4))
        baseline = condense_sharded(
            data, k=10, n_shards=4, n_workers=2,
            strategy="mdav", random_state=3, backend="process",
        )
        with WorkerPool(2) as pool:
            # Warm the pool, then murder one worker right before the run.
            pool.submit(_echo, 0, key="warm")
            drain(pool, 1)
            self._kill_one_worker(pool)
            disturbed = condense_sharded(
                data, k=10, n_shards=4, n_workers=2,
                strategy="mdav", random_state=3, backend="process",
                pool=pool,
            )
        for ours, theirs in zip(disturbed.groups, baseline.groups):
            assert ours.count == theirs.count
            assert ours.first_order.tobytes() == \
                theirs.first_order.tobytes()
            assert ours.second_order.tobytes() == \
                theirs.second_order.tobytes()


#: Marker value a :class:`_PoisonedStrategy` shard refuses to condense.
_POISON = 1.0e9


class _PoisonedStrategy:
    """MDAV lookalike that refuses shards holding the poison marker.

    Clean shards condense slowly (a sleep in ``plan``), so the
    deterministic input error aborts the run while other shards are
    still in flight on the pool — the stale-result scenario.
    """

    name = "mdav"

    def plan(self, data, k, rng):
        if np.any(data >= _POISON):
            raise ValueError("poisoned shard")
        time.sleep(0.3)
        return None

    def pick_seed(self, data, remaining, rng):
        records = data[remaining]
        deltas = records - records.mean(axis=0)
        return int(np.argmax((deltas * deltas).sum(axis=1)))


class TestStaleRunIsolation:
    """An aborted run's in-flight tasks stay outstanding on the warm
    pool; their late results carry the aborted run's token and must be
    discarded by the next run instead of merged into its model."""

    @staticmethod
    def _fingerprint(model):
        return [
            (group.count, group.first_order.tobytes(),
             group.second_order.tobytes())
            for group in model.groups
        ]

    def test_simulated_stale_results_are_discarded(self):
        rng = np.random.default_rng(11)
        data = rng.normal(size=(400, 3))
        baseline = condense_sharded(
            data, k=8, n_shards=4, n_workers=2,
            strategy="mdav", random_state=5, backend="process",
        )
        pipeline = telemetry.configure()
        try:
            with WorkerPool(2) as pool:
                # Four slow tasks keyed like another run's shard
                # submissions, all outstanding when the run starts.
                for index in range(4):
                    pool.submit(
                        _sleep_then_echo, 0.2, ("stale", index),
                        key=(-1, index),
                    )
                model = condense_sharded(
                    data, k=8, n_shards=4, n_workers=2,
                    strategy="mdav", random_state=5,
                    backend="process", pool=pool,
                )
            assert pipeline.registry.counter(
                "parallel.stale_results"
            ).value() == 4
        finally:
            telemetry.disable()
        assert model.metadata["parallel"]["effective_backend"] \
            == "process"
        assert self._fingerprint(model) == self._fingerprint(baseline)

    def test_aborted_run_does_not_corrupt_next_run(self):
        rng = np.random.default_rng(12)
        data = rng.normal(size=(400, 3))
        poisoned = data.copy()
        poisoned[:5] = _POISON
        baseline = condense_sharded(
            data, k=8, n_shards=4, n_workers=2,
            strategy="mdav", random_state=5, backend="process",
        )
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="poisoned"):
                condense_sharded(
                    poisoned, k=8, n_shards=4, n_workers=2,
                    strategy=_PoisonedStrategy(), random_state=5,
                    backend="process", pool=pool,
                )
            # The aborted run's shards are still in flight (or queued
            # against its now-closed payload); the next run on the
            # same pool must produce the undisturbed model anyway.
            model = condense_sharded(
                data, k=8, n_shards=4, n_workers=2,
                strategy="mdav", random_state=5, backend="process",
                pool=pool,
            )
        assert model.metadata["parallel"]["effective_backend"] \
            == "process"
        assert self._fingerprint(model) == self._fingerprint(baseline)


class TestSharedPool:
    def test_shared_pool_is_reused_and_resized(self):
        shutdown_shared_pool()
        try:
            pool = get_shared_pool(1)
            again = get_shared_pool(3)
            assert again is pool
            assert pool.n_workers == 3
        finally:
            shutdown_shared_pool()

    def test_shutdown_then_get_creates_fresh_pool(self):
        shutdown_shared_pool()
        try:
            pool = get_shared_pool(1)
            shutdown_shared_pool()
            assert pool.closed
            fresh = get_shared_pool(1)
            assert fresh is not pool
            assert not fresh.closed
        finally:
            shutdown_shared_pool()

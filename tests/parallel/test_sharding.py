"""Properties of the principal-axis shard partitioner."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.sharding import (
    principal_axis_bisect,
    principal_axis_shards,
    shard_size_summary,
)


def make_data(seed, n, d):
    return np.random.default_rng(seed).normal(size=(n, d))


class TestBisect:
    def test_halves_partition_the_part(self):
        data = make_data(0, 21, 3)
        part = np.arange(21, dtype=np.int64)
        left, right = principal_axis_bisect(data, part)
        assert left.shape[0] == 11 and right.shape[0] == 10
        assert np.array_equal(np.sort(np.concatenate([left, right])), part)

    def test_halves_are_separated_along_the_principal_axis(self):
        # Two well-separated blobs: the bisection must recover them.
        rng = np.random.default_rng(3)
        blob_a = rng.normal(loc=0.0, size=(30, 2))
        blob_b = rng.normal(loc=50.0, size=(30, 2))
        data = np.vstack([blob_a, blob_b])
        left, right = principal_axis_bisect(data, np.arange(60))
        sides = {frozenset(left.tolist()), frozenset(right.tolist())}
        assert sides == {frozenset(range(30)), frozenset(range(30, 60))}

    def test_rejects_single_record_part(self):
        data = make_data(0, 5, 2)
        with pytest.raises(ValueError, match="cannot bisect"):
            principal_axis_bisect(data, np.array([2]))


class TestShards:
    @given(
        seed=st.integers(0, 1_000),
        n=st.integers(1, 150),
        d=st.integers(1, 5),
        n_shards=st.integers(1, 12),
    )
    def test_shards_partition_the_index_range(self, seed, n, d, n_shards):
        data = make_data(seed, n, d)
        shards = principal_axis_shards(data, n_shards)
        assert len(shards) == min(n_shards, n)
        combined = np.concatenate(shards)
        assert np.array_equal(np.sort(combined), np.arange(n))
        for shard in shards:
            assert shard.dtype == np.int64
            assert np.array_equal(shard, np.sort(shard))

    @given(
        seed=st.integers(0, 1_000),
        n=st.integers(2, 150),
        n_shards=st.integers(2, 12),
    )
    def test_shards_are_balanced(self, seed, n, n_shards):
        data = make_data(seed, n, 3)
        summary = shard_size_summary(principal_axis_shards(data, n_shards))
        assert summary["total"] == n
        assert summary["max_size"] <= 2 * summary["min_size"] + 1

    @given(
        seed=st.integers(0, 1_000),
        n=st.integers(1, 80),
        n_shards=st.integers(1, 12),
    )
    def test_partition_is_deterministic(self, seed, n, n_shards):
        data = make_data(seed, n, 2)
        first = principal_axis_shards(data, n_shards)
        second = principal_axis_shards(data, n_shards)
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_single_shard_is_identity(self):
        data = make_data(1, 17, 3)
        (shard,) = principal_axis_shards(data, 1)
        assert np.array_equal(shard, np.arange(17))

    def test_shard_count_clamped_to_record_count(self):
        data = make_data(1, 4, 2)
        shards = principal_axis_shards(data, 10)
        assert len(shards) == 4
        assert all(shard.shape[0] == 1 for shard in shards)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="2-D"):
            principal_axis_shards(np.zeros(5), 2)
        with pytest.raises(ValueError, match="n_shards"):
            principal_axis_shards(np.zeros((5, 2)), 0)

    def test_summary_is_plain_ints(self):
        summary = shard_size_summary(
            principal_axis_shards(make_data(0, 30, 2), 4)
        )
        assert set(summary) == {"n_shards", "min_size", "max_size", "total"}
        assert all(type(value) is int for value in summary.values())

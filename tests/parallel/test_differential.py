"""Differential tests: shard-merge condensation versus the serial path.

The sharded engine's whole claim is that partition + per-shard
condensation + statistics merge computes *the same kind of model* the
serial algorithm does — identical when the partition is trivial,
statistically equivalent otherwise.  Every test here runs both paths on
the same data and compares:

* ``n_shards=1`` with the deterministic MDAV strategy is **bit
  identical** to serial, for every worker count.
* For any shard count, the result depends only on
  ``(data, k, strategy, random_state, n_shards)`` — never on the
  worker count or executor backend.
* First- and second-order mass is conserved exactly, the privacy
  invariant ``achieved_k >= k`` always holds, and group sizes stay in
  the serial algorithm's band whenever no boundary repair was needed.
* Downstream utility (nearest-neighbour accuracy on anonymized data)
  stays within tolerance of the serial pipeline.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.condensation import create_condensed_groups
from repro.neighbors.knn import KNeighborsClassifier
from repro.parallel import condense_sharded
from repro.privacy.metrics import privacy_report


def fingerprint(model):
    """Byte-exact signature of a model's group statistics, in order."""
    return [
        (group.count, group.first_order.tobytes(),
         group.second_order.tobytes())
        for group in model.groups
    ]


def membership_sets(model):
    """Group memberships as a set of frozensets (order-insensitive)."""
    memberships = model.metadata["memberships"]
    return {frozenset(members.tolist()) for members in memberships}


def make_data(seed, n, d):
    return np.random.default_rng(seed).normal(size=(n, d))


class TestSingleShardIdentity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_mdav_single_shard_bit_identical_to_serial(self, n_workers):
        data = make_data(7, 160, 4)
        serial = create_condensed_groups(
            data, 10, strategy="mdav", random_state=0
        )
        sharded = create_condensed_groups(
            data, 10, strategy="mdav", random_state=0,
            n_shards=1, n_workers=n_workers,
        )
        assert fingerprint(sharded) == fingerprint(serial)
        assert membership_sets(sharded) == membership_sets(serial)

    @given(seed=st.integers(0, 500), k=st.integers(1, 12))
    def test_mdav_single_shard_identity_generalizes(self, seed, k):
        data = make_data(seed, 40 + (seed % 30), 3)
        serial = create_condensed_groups(
            data, k, strategy="mdav", random_state=seed
        )
        sharded = condense_sharded(
            data, k, strategy="mdav", random_state=seed,
            n_shards=1, backend="serial",
        )
        assert fingerprint(sharded) == fingerprint(serial)


class TestWorkerCountInvariance:
    @given(
        seed=st.integers(0, 300),
        k=st.integers(2, 8),
        n_shards=st.integers(2, 5),
        strategy=st.sampled_from(["random", "mdav"]),
    )
    def test_result_is_independent_of_workers_and_backend(
        self, seed, k, n_shards, strategy
    ):
        data = make_data(seed, 60 + (seed % 40), 3)
        reference = condense_sharded(
            data, k, strategy=strategy, random_state=seed,
            n_shards=n_shards, n_workers=1, backend="serial",
        )
        for n_workers, backend in ((2, "thread"), (3, "thread"),
                                   (1, "serial")):
            other = condense_sharded(
                data, k, strategy=strategy, random_state=seed,
                n_shards=n_shards, n_workers=n_workers, backend=backend,
            )
            assert fingerprint(other) == fingerprint(reference)

    def test_process_pool_matches_serial_backend(self):
        # The real process pool is exercised once (spawning workers is
        # slow); Hypothesis-driven invariance runs on threads, which by
        # construction execute the identical per-shard code.
        data = make_data(11, 200, 4)
        reference = condense_sharded(
            data, 8, strategy="random", random_state=42,
            n_shards=4, n_workers=1, backend="serial",
        )
        pooled = condense_sharded(
            data, 8, strategy="random", random_state=42,
            n_shards=4, n_workers=2, backend="process",
        )
        assert fingerprint(pooled) == fingerprint(reference)
        assert membership_sets(pooled) == membership_sets(reference)


class TestStatisticalEquivalence:
    @given(
        seed=st.integers(0, 500),
        k=st.integers(2, 10),
        n_shards=st.integers(2, 6),
    )
    def test_moment_mass_is_conserved_exactly(self, seed, k, n_shards):
        data = make_data(seed, 30 + (seed % 70), 4)
        model = condense_sharded(
            data, k, strategy="mdav", random_state=seed,
            n_shards=n_shards, backend="serial",
        )
        scale = np.abs(data).sum() + 1.0
        total_first = sum(group.first_order for group in model.groups)
        assert np.abs(
            total_first - data.sum(axis=0)
        ).max() <= 1e-9 * scale
        total_second = sum(group.second_order for group in model.groups)
        second_scale = np.abs(data.T @ data).max() + 1.0
        assert np.abs(
            total_second - data.T @ data
        ).max() <= 1e-9 * second_scale

    @given(
        seed=st.integers(0, 500),
        k=st.integers(2, 10),
        n_shards=st.integers(2, 8),
    )
    def test_privacy_invariant_and_size_distribution(
        self, seed, k, n_shards
    ):
        n = 20 + (seed % 80)
        data = make_data(seed, n, 3)
        model = condense_sharded(
            data, k, strategy="mdav", random_state=seed,
            n_shards=n_shards, backend="serial",
        )
        sizes = model.group_sizes
        assert privacy_report(model).achieved_k >= k
        assert (sizes >= k).all()
        assert int(sizes.sum()) == n
        assert model.n_groups <= n // k
        # When every shard could condense on its own (>= k records), no
        # boundary repair runs and each group obeys the serial
        # algorithm's size band [k, 2k).
        if model.metadata["parallel"]["shard_min_size"] >= k:
            assert model.metadata["parallel"]["n_merge_repairs"] == 0
            assert (sizes < 2 * k).all()

    @given(
        seed=st.integers(0, 500),
        k=st.integers(2, 8),
        n_shards=st.integers(2, 8),
    )
    def test_memberships_partition_the_records(self, seed, k, n_shards):
        n = 20 + (seed % 60)
        data = make_data(seed, n, 2)
        model = condense_sharded(
            data, k, strategy="mdav", random_state=seed,
            n_shards=n_shards, backend="serial",
        )
        memberships = model.metadata["memberships"]
        combined = np.concatenate(memberships)
        assert np.array_equal(np.sort(combined), np.arange(n))
        for group, members in zip(model.groups, memberships):
            assert group.count == members.shape[0]

    @given(
        seed=st.integers(0, 200),
        k=st.integers(2, 6),
        n_shards=st.integers(4, 10),
    )
    def test_merge_resplit_keeps_the_privacy_invariant(
        self, seed, k, n_shards
    ):
        n = 15 + (seed % 40)
        data = make_data(seed, n, 3)
        model = condense_sharded(
            data, k, strategy="mdav", random_state=seed,
            n_shards=n_shards, backend="serial", repair="merge_resplit",
        )
        assert privacy_report(model).achieved_k >= k
        assert model.total_count == n


class TestDownstreamUtility:
    def test_nn_accuracy_within_tolerance_of_serial(self, labelled_blobs):
        # Anonymize the same labelled data through both pipelines and
        # compare nearest-neighbour accuracy against the original
        # records.  Sharding may cost a little utility at boundaries but
        # must stay close to serial.
        from repro.core.condenser import ClasswiseCondenser

        data, labels = labelled_blobs
        accuracies = {}
        for name, shards in (("serial", None), ("sharded", 3)):
            condenser = ClasswiseCondenser(
                k=8, random_state=0, n_shards=shards
            )
            anonymized, anonymized_labels = condenser.fit_generate(
                data, labels
            )
            classifier = KNeighborsClassifier(n_neighbors=1)
            classifier.fit(anonymized, anonymized_labels)
            accuracies[name] = classifier.score(data, labels)
        assert abs(accuracies["sharded"] - accuracies["serial"]) <= 0.10


class TestValidation:
    def test_rejects_bad_backend_and_repair(self):
        data = make_data(0, 20, 2)
        with pytest.raises(ValueError, match="backend"):
            condense_sharded(data, 2, backend="gpu")
        with pytest.raises(ValueError, match="repair"):
            condense_sharded(data, 2, repair="drop")
        with pytest.raises(ValueError, match="n_shards"):
            condense_sharded(data, 2, n_shards=0)
        with pytest.raises(ValueError, match="n_workers"):
            condense_sharded(data, 2, n_workers=0)

    def test_rejects_non_finite_and_undersized_data(self):
        with pytest.raises(ValueError, match="NaN"):
            condense_sharded(np.array([[np.nan, 0.0]] * 5), 2)
        with pytest.raises(ValueError, match="at least k"):
            condense_sharded(make_data(0, 3, 2), 5)

    def test_metadata_records_the_run_configuration(self):
        data = make_data(5, 50, 3)
        model = condense_sharded(
            data, 5, strategy="mdav", random_state=1,
            n_shards=3, n_workers=2, backend="thread",
        )
        recorded = model.metadata["parallel"]
        assert recorded["n_shards"] == 3
        assert recorded["n_workers"] == 2
        assert recorded["backend"] == "thread"
        assert recorded["repair"] == "merge"
        assert model.metadata["strategy"] == "mdav"

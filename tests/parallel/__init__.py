"""Tests for the sharded parallel condensation engine."""

"""Backend degradation is loud, counted, and result-preserving.

Before this warning existed, a broken process pool silently handed
the whole run to the serial path — same answer, a fraction of the
throughput, and nothing in the logs.  Now every rung down the
process → thread → serial ladder emits a structured
:class:`ParallelDegradationWarning` (operator-matchable fields, not
just prose), landing on serial bumps ``parallel.serial_fallbacks``,
and the model is bit-identical to the undegraded run throughout.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.parallel import ParallelDegradationWarning, condense_sharded
from repro.parallel import engine


@pytest.fixture()
def dataset():
    rng = np.random.default_rng(11)
    return rng.normal(size=(400, 3))


def force_pool_failure(monkeypatch, name):
    def refuse(*_args, **_kwargs):
        raise engine._PoolFailure(RuntimeError("forced by test"))

    monkeypatch.setattr(engine, name, refuse)


def run(data, **overrides):
    options = dict(
        k=8, n_shards=4, n_workers=2, strategy="mdav",
        random_state=5, backend="process",
    )
    options.update(overrides)
    return condense_sharded(data, **options)


def fingerprint(model):
    return [
        (group.count, group.first_order.tobytes(),
         group.second_order.tobytes())
        for group in model.groups
    ]


def test_process_failure_warns_and_lands_on_thread(monkeypatch, dataset):
    force_pool_failure(monkeypatch, "_drain_warm_pool")
    with pytest.warns(ParallelDegradationWarning) as captured:
        model = run(dataset)
    warning = captured[0].message
    assert warning.from_backend == "process"
    assert warning.to_backend == "thread"
    assert warning.n_pending == 4
    assert "forced by test" in warning.reason
    assert model.metadata["parallel"]["effective_backend"] == "thread"
    assert model.metadata["parallel"]["degraded"] is True


def test_double_failure_lands_on_serial_and_counts(monkeypatch, dataset):
    force_pool_failure(monkeypatch, "_drain_warm_pool")
    force_pool_failure(monkeypatch, "_drain_thread_pool")
    pipeline = telemetry.configure()
    try:
        with pytest.warns(ParallelDegradationWarning) as captured:
            model = run(dataset)
        ladder = [
            (w.message.from_backend, w.message.to_backend)
            for w in captured
        ]
        assert ladder == [("process", "thread"), ("thread", "serial")]
        assert pipeline.registry.counter(
            "parallel.serial_fallbacks"
        ).value() >= 1
    finally:
        telemetry.disable()
    assert model.metadata["parallel"]["effective_backend"] == "serial"
    assert model.metadata["parallel"]["degraded"] is True


def test_degraded_model_is_bit_identical(monkeypatch, dataset):
    baseline = run(dataset)
    assert baseline.metadata["parallel"]["degraded"] is False
    force_pool_failure(monkeypatch, "_drain_warm_pool")
    force_pool_failure(monkeypatch, "_drain_thread_pool")
    with pytest.warns(ParallelDegradationWarning):
        degraded = run(dataset)
    assert fingerprint(degraded) == fingerprint(baseline)


def test_undegraded_run_emits_no_warning(dataset, recwarn):
    model = run(dataset)
    assert model.metadata["parallel"]["effective_backend"] == "process"
    assert not [
        w for w in recwarn.list
        if isinstance(w.message, ParallelDegradationWarning)
    ]

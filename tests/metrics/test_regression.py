"""Tests for repro.metrics.regression."""

import numpy as np
import pytest

from repro.metrics.regression import (
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    tolerance_accuracy,
)


class TestErrors:
    def test_mse_zero_for_perfect(self):
        targets = np.array([1.0, 2.0, 3.0])
        assert mean_squared_error(targets, targets) == 0.0

    def test_mse_value(self):
        assert mean_squared_error(
            np.array([0.0, 0.0]), np.array([1.0, 3.0])
        ) == pytest.approx(5.0)

    def test_mae_value(self):
        assert mean_absolute_error(
            np.array([0.0, 0.0]), np.array([1.0, -3.0])
        ) == pytest.approx(2.0)

    def test_mae_leq_rmse(self, rng):
        y_true = rng.normal(size=100)
        y_pred = rng.normal(size=100)
        mae = mean_absolute_error(y_true, y_pred)
        rmse = np.sqrt(mean_squared_error(y_true, y_pred))
        assert mae <= rmse + 1e-12

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.array([]), np.array([]))


class TestR2:
    def test_perfect(self, rng):
        targets = rng.normal(size=50)
        assert r2_score(targets, targets) == pytest.approx(1.0)

    def test_mean_prediction_gives_zero(self, rng):
        targets = rng.normal(size=50)
        predictions = np.full(50, targets.mean())
        assert r2_score(targets, predictions) == pytest.approx(0.0)

    def test_can_be_negative(self):
        targets = np.array([0.0, 1.0])
        predictions = np.array([10.0, -10.0])
        assert r2_score(targets, predictions) < 0.0

    def test_constant_target_perfect(self):
        targets = np.full(5, 2.0)
        assert r2_score(targets, targets) == pytest.approx(1.0)

    def test_constant_target_imperfect(self):
        targets = np.full(5, 2.0)
        assert r2_score(targets, targets + 1.0) == 0.0


class TestToleranceAccuracy:
    def test_paper_protocol(self):
        # "predicted within an accuracy of less than one year"
        y_true = np.array([10.0, 10.0, 10.0, 10.0])
        y_pred = np.array([10.0, 10.9, 11.0, 11.5])
        assert tolerance_accuracy(y_true, y_pred, tol=1.0) == pytest.approx(0.75)

    def test_tolerance_zero_is_exact_match(self):
        y_true = np.array([1.0, 2.0])
        y_pred = np.array([1.0, 2.5])
        assert tolerance_accuracy(y_true, y_pred, tol=0.0) == pytest.approx(0.5)

    def test_monotone_in_tolerance(self, rng):
        y_true = rng.normal(size=100)
        y_pred = y_true + rng.normal(size=100)
        narrow = tolerance_accuracy(y_true, y_pred, tol=0.5)
        wide = tolerance_accuracy(y_true, y_pred, tol=2.0)
        assert narrow <= wide

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            tolerance_accuracy(np.array([1.0]), np.array([1.0]), tol=-0.1)

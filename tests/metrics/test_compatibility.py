"""Tests for repro.metrics.compatibility — the paper's μ statistic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.compatibility import (
    covariance_compatibility,
    covariance_matrix,
    matrix_entry_correlation,
    mean_compatibility,
)


class TestCovarianceMatrix:
    def test_matches_numpy_population(self, gaussian_data):
        np.testing.assert_allclose(
            covariance_matrix(gaussian_data),
            np.cov(gaussian_data.T, bias=True),
            atol=1e-10,
        )

    def test_symmetric(self, gaussian_data):
        matrix = covariance_matrix(gaussian_data)
        np.testing.assert_allclose(matrix, matrix.T)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            covariance_matrix(np.empty((0, 3)))


class TestCovarianceCompatibility:
    def test_identical_data_gives_one(self, gaussian_data):
        mu = covariance_compatibility(gaussian_data, gaussian_data.copy())
        assert mu == pytest.approx(1.0)

    def test_scaled_copy_still_one(self, gaussian_data):
        # Pearson correlation is invariant to a positive affine map of
        # the entries; scaling data by c scales covariances by c^2.
        mu = covariance_compatibility(gaussian_data, 2.0 * gaussian_data)
        assert mu == pytest.approx(1.0)

    def test_flipped_correlation_lowers_mu(self, rng):
        # Negating one attribute flips every off-diagonal covariance
        # entry involving it; with strong correlations this must pull mu
        # well below the perfect score (it cannot reach -1 because
        # variances stay positive in both data sets).
        x = rng.normal(size=500)
        original = np.column_stack(
            [x, 2.0 * x + 0.1 * rng.normal(size=500),
             3.0 * x + 0.1 * rng.normal(size=500)]
        )
        flipped = original.copy()
        flipped[:, 2] *= -1.0
        mu = covariance_compatibility(original, flipped)
        assert mu < 0.5

    def test_row_counts_may_differ(self, gaussian_data):
        mu = covariance_compatibility(gaussian_data, gaussian_data[:50])
        assert -1.0 <= mu <= 1.0

    def test_dimension_mismatch(self, gaussian_data):
        with pytest.raises(ValueError, match="dimensionality"):
            covariance_compatibility(gaussian_data, gaussian_data[:, :2])

    def test_independent_noise_lower_than_self(self, rng, gaussian_data):
        noise = rng.normal(size=gaussian_data.shape)
        mu_self = covariance_compatibility(gaussian_data, gaussian_data)
        mu_noise = covariance_compatibility(gaussian_data, noise)
        assert mu_noise < mu_self

    def test_one_dimensional_degenerate(self, rng):
        # 1-D data: one covariance entry, so Pearson is undefined; the
        # implementation reports equality instead.
        column = rng.normal(size=(50, 1))
        assert covariance_compatibility(column, column) == pytest.approx(1.0)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_bounded(self, seed):
        generator = np.random.default_rng(seed)
        a = generator.normal(size=(30, 4))
        b = generator.normal(size=(40, 4))
        assert -1.0 <= covariance_compatibility(a, b) <= 1.0


class TestMatrixEntryCorrelation:
    def test_perfect(self):
        entries = np.array([1.0, 2.0, 3.0])
        assert matrix_entry_correlation(entries, entries) == pytest.approx(
            1.0
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            matrix_entry_correlation(np.zeros(3), np.zeros(4))

    def test_constant_entries_equal(self):
        assert matrix_entry_correlation(np.ones(4), np.ones(4)) == pytest.approx(1.0)

    def test_constant_entries_different(self):
        assert matrix_entry_correlation(np.ones(4), 2 * np.ones(4)) == 0.0


class TestMeanCompatibility:
    def test_identical_is_zero(self, gaussian_data):
        assert mean_compatibility(gaussian_data, gaussian_data) == 0.0

    def test_shifted_data_positive(self, gaussian_data):
        assert mean_compatibility(gaussian_data, gaussian_data + 5.0) > 0.0

    def test_dimension_mismatch(self, gaussian_data):
        with pytest.raises(ValueError):
            mean_compatibility(gaussian_data, gaussian_data[:, :2])

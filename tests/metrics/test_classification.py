"""Tests for repro.metrics.classification."""

import numpy as np
import pytest

from repro.metrics.classification import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)


class TestAccuracy:
    def test_perfect(self):
        labels = np.array([0, 1, 2, 1])
        assert accuracy_score(labels, labels) == pytest.approx(1.0)

    def test_half(self):
        assert accuracy_score(
            np.array([0, 0, 1, 1]), np.array([0, 1, 1, 0])
        ) == pytest.approx(0.5)

    def test_string_labels(self):
        assert accuracy_score(
            np.array(["a", "b"]), np.array(["a", "a"])
        ) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([0, 1]), np.array([0]))


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        labels = np.array([0, 1, 1, 2])
        matrix = confusion_matrix(labels, labels)
        np.testing.assert_array_equal(matrix, np.diag([1, 2, 1]))

    def test_off_diagonal(self):
        matrix = confusion_matrix(np.array([0, 0]), np.array([1, 1]))
        np.testing.assert_array_equal(matrix, [[0, 2], [0, 0]])

    def test_explicit_labels_order(self):
        matrix = confusion_matrix(
            np.array(["b", "a"]), np.array(["b", "a"]),
            labels=np.array(["b", "a"]),
        )
        np.testing.assert_array_equal(matrix, np.eye(2, dtype=int))

    def test_total_count(self, rng):
        y_true = rng.integers(0, 3, size=50)
        y_pred = rng.integers(0, 3, size=50)
        assert confusion_matrix(y_true, y_pred).sum() == 50


class TestPrecisionRecallF1:
    def setup_method(self):
        # true: 3 of class 0, 3 of class 1
        self.y_true = np.array([0, 0, 0, 1, 1, 1])
        self.y_pred = np.array([0, 0, 1, 1, 1, 0])
        # class 0: tp=2, fp=1, fn=1 -> p=2/3, r=2/3
        # class 1: tp=2, fp=1, fn=1 -> p=2/3, r=2/3

    def test_macro_precision(self):
        assert precision_score(self.y_true, self.y_pred) == pytest.approx(
            2.0 / 3.0
        )

    def test_macro_recall(self):
        assert recall_score(self.y_true, self.y_pred) == pytest.approx(
            2.0 / 3.0
        )

    def test_macro_f1(self):
        assert f1_score(self.y_true, self.y_pred) == pytest.approx(2.0 / 3.0)

    def test_micro_equals_accuracy_multiclass(self, rng):
        y_true = rng.integers(0, 4, size=100)
        y_pred = rng.integers(0, 4, size=100)
        accuracy = accuracy_score(y_true, y_pred)
        assert precision_score(
            y_true, y_pred, average="micro"
        ) == pytest.approx(accuracy)
        assert recall_score(
            y_true, y_pred, average="micro"
        ) == pytest.approx(accuracy)
        assert f1_score(y_true, y_pred, average="micro") == pytest.approx(
            accuracy
        )

    def test_perfect_scores(self):
        labels = np.array([0, 1, 2])
        assert precision_score(labels, labels) == pytest.approx(1.0)
        assert recall_score(labels, labels) == pytest.approx(1.0)
        assert f1_score(labels, labels) == pytest.approx(1.0)

    def test_never_predicted_class_contributes_zero(self):
        y_true = np.array([0, 1])
        y_pred = np.array([0, 0])
        # class 1 has precision 0 (never predicted) -> macro = mean(2/2? ...)
        assert precision_score(y_true, y_pred) == pytest.approx(0.25)

    def test_unknown_average_rejected(self):
        with pytest.raises(ValueError, match="average"):
            precision_score(np.array([0]), np.array([0]),
                            average="weighted")
        with pytest.raises(ValueError, match="average"):
            recall_score(np.array([0]), np.array([0]), average="weighted")
        with pytest.raises(ValueError, match="average"):
            f1_score(np.array([0]), np.array([0]), average="weighted")

"""Tests for repro.evaluation.sweep."""

import numpy as np
import pytest

from repro.datasets.generators import make_classification_mixture
from repro.evaluation.sweep import FigureResult, run_group_size_sweep


@pytest.fixture(scope="module")
def sweep_result():
    dataset = make_classification_mixture(
        [60, 60], n_features=3, class_separation=3.0, random_state=0
    )
    return run_group_size_sweep(
        dataset, group_sizes=(2, 5, 10), n_trials=1, random_state=0
    )


class TestRunGroupSizeSweep:
    def test_one_point_per_k(self, sweep_result):
        np.testing.assert_array_equal(
            sweep_result.group_sizes, [2, 5, 10]
        )

    def test_series_extraction(self, sweep_result):
        series = sweep_result.series("accuracy_static")
        assert series.shape == (3,)
        assert ((0.0 <= series) & (series <= 1.0)).all()

    def test_accuracy_table_renders(self, sweep_result):
        table = sweep_result.accuracy_table()
        assert "classification accuracy" in table
        assert "static" in table
        assert "original" in table

    def test_compatibility_table_renders(self, sweep_result):
        table = sweep_result.compatibility_table()
        assert "covariance compatibility" in table
        assert "mu (static)" in table

    def test_summary_keys(self, sweep_result):
        summary = sweep_result.summary()
        assert set(summary) == {
            "min_mu_static",
            "min_mu_dynamic",
            "max_accuracy_gap_static",
            "max_accuracy_gap_dynamic",
            "baseline_accuracy",
        }

    def test_mu_stays_high(self, sweep_result):
        # The paper's panel (b) claim for static condensation.
        assert sweep_result.summary()["min_mu_static"] > 0.9


class TestFigureResult:
    def test_empty_series(self):
        result = FigureResult(dataset_name="empty")
        assert result.group_sizes.shape == (0,)

"""Tests for repro.evaluation.reporting."""

import pytest

from repro.evaluation.reporting import format_series, format_table


class TestFormatTable:
    def test_contains_all_cells(self):
        table = format_table(
            ["name", "value"], [["alpha", 1], ["beta", 22]]
        )
        for token in ("name", "value", "alpha", "beta", "1", "22"):
            assert token in table

    def test_title_line(self):
        table = format_table(["a"], [[1]], title="My Results")
        assert table.splitlines()[0] == "My Results"

    def test_column_alignment(self):
        table = format_table(["col"], [["x"], ["longer"]])
        lines = table.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1

    def test_empty_rows_allowed(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table

    def test_cell_count_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only one"]])


class TestFormatSeries:
    def test_renders_pairs(self):
        line = format_series("mu", [2, 5], [0.98765, 1.0])
        assert line.startswith("mu:")
        assert "2:0.9877" in line
        assert "5:1.0000" in line

    def test_precision(self):
        line = format_series("x", [1], [0.123456], precision=2)
        assert "1:0.12" in line

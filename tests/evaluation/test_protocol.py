"""Tests for repro.evaluation.protocol — the paper's §4 procedures."""

import numpy as np
import pytest

from repro.datasets.generators import (
    make_classification_mixture,
    make_factor_regression,
)
from repro.evaluation.protocol import (
    baseline_condition,
    classification_condition,
    condense_dataset,
    measure_compatibility,
    regression_condition,
    run_figure_point,
)


@pytest.fixture(scope="module")
def classification_dataset():
    return make_classification_mixture(
        [80, 80], n_features=4, class_separation=3.0, random_state=0
    )


@pytest.fixture(scope="module")
def regression_dataset():
    return make_factor_regression(
        200, 4, n_factors=2, noise=0.1, target_noise=0.3, random_state=0
    )


class TestCondenseDataset:
    def test_static_mode(self, gaussian_data):
        model = condense_dataset(gaussian_data, 10, "static",
                                 random_state=0)
        assert (model.group_sizes >= 10).all()
        assert model.total_count == 120

    def test_dynamic_mode(self, gaussian_data):
        model = condense_dataset(gaussian_data, 10, "dynamic",
                                 random_state=0)
        assert model.total_count == 120
        assert (model.group_sizes >= 10).all()

    def test_invalid_mode(self, gaussian_data):
        with pytest.raises(ValueError, match="mode"):
            condense_dataset(gaussian_data, 10, "batch")


class TestMeasureCompatibility:
    def test_static_mu_high(self, gaussian_data):
        mu, average_size = measure_compatibility(
            gaussian_data, 10, "static", random_state=0
        )
        assert mu > 0.9
        assert average_size == pytest.approx(10.0)

    def test_dynamic_mu_reasonable(self, gaussian_data):
        mu, __ = measure_compatibility(
            gaussian_data, 10, "dynamic", random_state=0
        )
        assert mu > 0.5


class TestConditions:
    def test_classification_condition(self, classification_dataset):
        data, target = (
            classification_dataset.data, classification_dataset.target
        )
        result = classification_condition(
            data[:120], target[:120], data[120:], target[120:],
            k=10, mode="static", random_state=0,
        )
        assert 0.0 <= result.accuracy <= 1.0
        assert result.average_group_size >= 10.0

    def test_classification_beats_chance(self, classification_dataset):
        data, target = (
            classification_dataset.data, classification_dataset.target
        )
        result = classification_condition(
            data[:120], target[:120], data[120:], target[120:],
            k=10, mode="static", random_state=0,
        )
        assert result.accuracy > 0.6

    def test_regression_condition(self, regression_dataset):
        data = regression_dataset.data
        target = regression_dataset.target
        result = regression_condition(
            data[:150], target[:150], data[150:], target[150:],
            k=10, mode="static", tol=1.0, random_state=0,
        )
        assert 0.0 <= result.accuracy <= 1.0

    def test_baseline_classification(self, classification_dataset):
        data, target = (
            classification_dataset.data, classification_dataset.target
        )
        accuracy = baseline_condition(
            data[:120], target[:120], data[120:], target[120:],
            task="classification",
        )
        assert accuracy > 0.6

    def test_baseline_regression(self, regression_dataset):
        data = regression_dataset.data
        target = regression_dataset.target
        accuracy = baseline_condition(
            data[:150], target[:150], data[150:], target[150:],
            task="regression", tol=1.0,
        )
        assert 0.0 <= accuracy <= 1.0

    def test_baseline_invalid_task(self, classification_dataset):
        data, target = (
            classification_dataset.data, classification_dataset.target
        )
        with pytest.raises(ValueError, match="task"):
            baseline_condition(
                data[:10], target[:10], data[10:20], target[10:20],
                task="clustering",
            )


class TestRunFigurePoint:
    def test_classification_figure_point(self, classification_dataset):
        point = run_figure_point(
            classification_dataset, k=10, n_trials=2, random_state=0
        )
        assert point.k == 10
        for name in (
            "accuracy_static", "accuracy_dynamic", "accuracy_original"
        ):
            assert 0.0 <= getattr(point, name) <= 1.0
        assert -1.0 <= point.mu_static <= 1.0
        assert -1.0 <= point.mu_dynamic <= 1.0
        assert point.group_size_static >= 10.0
        assert point.group_size_dynamic >= 10.0

    def test_regression_figure_point(self, regression_dataset):
        point = run_figure_point(
            regression_dataset, k=10, n_trials=1, random_state=0
        )
        assert 0.0 <= point.accuracy_static <= 1.0

    def test_condensed_accuracy_tracks_baseline(
        self, classification_dataset
    ):
        # The paper's headline: condensation costs little accuracy.
        point = run_figure_point(
            classification_dataset, k=10, n_trials=3, random_state=0
        )
        assert point.accuracy_static >= point.accuracy_original - 0.12

    def test_reproducible(self, classification_dataset):
        a = run_figure_point(
            classification_dataset, k=5, n_trials=1, random_state=3
        )
        b = run_figure_point(
            classification_dataset, k=5, n_trials=1, random_state=3
        )
        assert a.accuracy_static == b.accuracy_static
        assert a.mu_dynamic == b.mu_dynamic

    def test_invalid_trials(self, classification_dataset):
        with pytest.raises(ValueError, match="n_trials"):
            run_figure_point(classification_dataset, k=5, n_trials=0)


class TestRegressionTargetHandling:
    def test_joint_mode_runs(self, regression_dataset):
        data = regression_dataset.data
        target = regression_dataset.target
        result = regression_condition(
            data[:150], target[:150], data[150:], target[150:],
            k=10, mode="static", target_handling="joint",
            random_state=0,
        )
        assert 0.0 <= result.accuracy <= 1.0
        assert result.average_group_size >= 10.0

    def test_classwise_mode_keeps_exact_targets(self, rng):
        # Integer targets + classwise handling: anonymized targets are
        # exactly the original values, so a near-duplicate query hits
        # its own target band.
        data = rng.normal(size=(120, 3))
        target = np.round(rng.uniform(0, 5, size=120))
        result = regression_condition(
            data[:90], target[:90], data[90:], target[90:],
            k=5, mode="static", target_handling="classwise", tol=0.5,
            random_state=0,
        )
        assert 0.0 <= result.accuracy <= 1.0

    def test_invalid_target_handling(self, regression_dataset):
        data = regression_dataset.data
        target = regression_dataset.target
        with pytest.raises(ValueError, match="target_handling"):
            regression_condition(
                data[:50], target[:50], data[50:100], target[50:100],
                k=5, mode="static", target_handling="bins",
            )

    def test_joint_vs_classwise_both_reasonable(self, regression_dataset):
        data = regression_dataset.data
        target = regression_dataset.target
        accuracies = {}
        for handling in ("joint", "classwise"):
            result = regression_condition(
                data[:150], target[:150], data[150:], target[150:],
                k=10, mode="static", target_handling=handling,
                tol=1.0, random_state=0,
            )
            accuracies[handling] = result.accuracy
        baseline = baseline_condition(
            data[:150], target[:150], data[150:], target[150:],
            task="regression", tol=1.0,
        )
        for handling, accuracy in accuracies.items():
            assert accuracy > baseline - 0.3, handling

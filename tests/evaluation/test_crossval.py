"""Tests for repro.evaluation.crossval."""

import numpy as np
import pytest

from repro.datasets.generators import make_classification_mixture
from repro.evaluation.crossval import cross_validated_accuracy


@pytest.fixture(scope="module")
def labelled_dataset():
    return make_classification_mixture(
        [100, 80], n_features=4, class_separation=3.0, random_state=0
    )


class TestCrossValidatedAccuracy:
    def test_fold_counts(self, labelled_dataset):
        result = cross_validated_accuracy(
            labelled_dataset.data, labelled_dataset.target, k=10,
            n_splits=4, random_state=0,
        )
        assert result.n_folds == 4
        assert result.condensed_scores.shape == (4,)
        assert result.original_scores.shape == (4,)

    def test_scores_bounded(self, labelled_dataset):
        result = cross_validated_accuracy(
            labelled_dataset.data, labelled_dataset.target, k=10,
            random_state=0,
        )
        assert ((0.0 <= result.condensed_scores)
                & (result.condensed_scores <= 1.0)).all()
        assert ((0.0 <= result.original_scores)
                & (result.original_scores <= 1.0)).all()

    def test_condensed_tracks_original(self, labelled_dataset):
        result = cross_validated_accuracy(
            labelled_dataset.data, labelled_dataset.target, k=10,
            random_state=0,
        )
        assert result.mean_gap < 0.15
        assert result.condensed_mean > 0.6

    def test_dynamic_mode(self, labelled_dataset):
        result = cross_validated_accuracy(
            labelled_dataset.data, labelled_dataset.target, k=10,
            mode="dynamic", n_splits=3, random_state=0,
        )
        assert result.n_folds == 3
        assert result.condensed_mean > 0.5

    def test_gap_stderr_nonnegative(self, labelled_dataset):
        result = cross_validated_accuracy(
            labelled_dataset.data, labelled_dataset.target, k=10,
            random_state=0,
        )
        assert result.gap_stderr >= 0.0

    def test_reproducible(self, labelled_dataset):
        a = cross_validated_accuracy(
            labelled_dataset.data, labelled_dataset.target, k=5,
            n_splits=3, random_state=11,
        )
        b = cross_validated_accuracy(
            labelled_dataset.data, labelled_dataset.target, k=5,
            n_splits=3, random_state=11,
        )
        np.testing.assert_array_equal(
            a.condensed_scores, b.condensed_scores
        )
        np.testing.assert_array_equal(
            a.original_scores, b.original_scores
        )


class TestSaveCsv:
    def test_round_trip(self, tmp_path, labelled_dataset):
        from repro.evaluation.sweep import run_group_size_sweep
        from repro.io.csv import read_records

        result = run_group_size_sweep(
            labelled_dataset, group_sizes=(2, 5), n_trials=1,
            random_state=0,
        )
        path = tmp_path / "figure.csv"
        result.save_csv(path)
        data, header = read_records(path)
        assert header[0] == "k"
        assert data.shape == (2, 8)
        np.testing.assert_allclose(data[:, 0], [2, 5])
        np.testing.assert_allclose(
            data[:, 3], result.series("accuracy_static")
        )

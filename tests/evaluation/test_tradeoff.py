"""Tests for repro.evaluation.tradeoff."""

import numpy as np
import pytest

from repro.datasets.generators import make_classification_mixture
from repro.evaluation.tradeoff import tradeoff_curve


@pytest.fixture(scope="module")
def curve():
    dataset = make_classification_mixture(
        [100, 80], n_features=4, class_separation=3.0, random_state=0
    )
    return tradeoff_curve(
        dataset.data, dataset.target, group_sizes=(5, 15, 30),
        random_state=0,
    )


class TestTradeoffCurve:
    def test_one_point_per_k(self, curve):
        np.testing.assert_array_equal(curve.series("k"), [5, 15, 30])

    def test_disclosure_monotone_decreasing(self, curve):
        empirical = curve.series("empirical_disclosure")
        assert empirical[0] > empirical[-1]
        structural = curve.series("structural_disclosure")
        assert (np.diff(structural) < 0).all()

    def test_accuracy_near_baseline(self, curve):
        accuracies = curve.series("accuracy")
        assert (accuracies > curve.baseline_accuracy - 0.2).all()

    def test_mu_high(self, curve):
        assert curve.series("mu").min() > 0.85

    def test_table_renders(self, curve):
        table = curve.table()
        assert "privacy-utility frontier" in table
        assert "baseline accuracy" in table

    def test_recommend_respects_budget(self, curve):
        strict = curve.recommend(max_disclosure=1e-9)
        assert strict is None
        loose = curve.recommend(max_disclosure=1.0)
        assert loose is not None
        assert loose.accuracy == curve.series("accuracy").max()

    def test_recommend_picks_highest_accuracy_within_budget(self, curve):
        budget = float(
            np.median(curve.series("empirical_disclosure"))
        )
        choice = curve.recommend(max_disclosure=budget)
        assert choice is not None
        assert choice.empirical_disclosure <= budget

    def test_deterministic(self):
        dataset = make_classification_mixture(
            [60, 60], n_features=3, class_separation=3.0, random_state=1
        )
        a = tradeoff_curve(
            dataset.data, dataset.target, group_sizes=(5, 10),
            random_state=7,
        )
        b = tradeoff_curve(
            dataset.data, dataset.target, group_sizes=(5, 10),
            random_state=7,
        )
        np.testing.assert_array_equal(
            a.series("accuracy"), b.series("accuracy")
        )

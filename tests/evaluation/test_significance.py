"""Tests for repro.evaluation.significance."""

import numpy as np
import pytest

from repro.evaluation.significance import (
    bootstrap_mean_difference_ci,
    compare_paired_scores,
    paired_permutation_test,
)


class TestPairedPermutationTest:
    def test_identical_scores_not_significant(self):
        scores = np.array([0.8, 0.82, 0.79, 0.81, 0.8])
        assert paired_permutation_test(scores, scores) == pytest.approx(1.0)

    def test_clear_difference_significant(self, rng):
        a = 0.9 + 0.01 * rng.normal(size=20)
        b = 0.5 + 0.01 * rng.normal(size=20)
        p = paired_permutation_test(a, b, random_state=0)
        assert p < 0.01

    def test_noise_difference_not_significant(self, rng):
        a = 0.8 + 0.05 * rng.normal(size=10)
        b = a + 0.05 * rng.normal(size=10) * np.where(
            rng.random(10) < 0.5, 1, -1
        )
        p = paired_permutation_test(a, b, random_state=0)
        assert p > 0.05

    def test_p_value_in_unit_interval(self, rng):
        a = rng.random(8)
        b = rng.random(8)
        p = paired_permutation_test(a, b, n_permutations=500,
                                    random_state=0)
        assert 0.0 < p <= 1.0

    def test_symmetric_in_arguments(self, rng):
        a = rng.random(10)
        b = rng.random(10)
        p_ab = paired_permutation_test(a, b, random_state=0)
        p_ba = paired_permutation_test(b, a, random_state=0)
        assert p_ab == pytest.approx(p_ba)

    def test_validation(self):
        with pytest.raises(ValueError, match="pairs"):
            paired_permutation_test(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError, match="equal length"):
            paired_permutation_test(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError, match="n_permutations"):
            paired_permutation_test(
                np.zeros(3), np.ones(3), n_permutations=0
            )


class TestBootstrapCi:
    def test_ci_contains_true_difference(self, rng):
        a = 0.8 + 0.02 * rng.normal(size=50)
        b = 0.7 + 0.02 * rng.normal(size=50)
        low, high = bootstrap_mean_difference_ci(a, b, random_state=0)
        assert low <= 0.1 <= high

    def test_ci_ordered(self, rng):
        a = rng.random(10)
        b = rng.random(10)
        low, high = bootstrap_mean_difference_ci(a, b, random_state=0)
        assert low <= high

    def test_wider_confidence_wider_interval(self, rng):
        a = rng.random(15)
        b = rng.random(15)
        narrow = bootstrap_mean_difference_ci(
            a, b, confidence=0.5, random_state=0
        )
        wide = bootstrap_mean_difference_ci(
            a, b, confidence=0.99, random_state=0
        )
        assert wide[1] - wide[0] >= narrow[1] - narrow[0]

    def test_validation(self):
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_mean_difference_ci(
                np.zeros(3), np.ones(3), confidence=1.0
            )


class TestComparePairedScores:
    def test_fields_consistent(self, rng):
        a = 0.85 + 0.02 * rng.normal(size=12)
        b = 0.80 + 0.02 * rng.normal(size=12)
        result = compare_paired_scores(a, b, random_state=0)
        assert result.n_pairs == 12
        assert result.mean_difference == pytest.approx(
            float((a - b).mean())
        )
        assert result.ci_low <= result.mean_difference <= result.ci_high
        assert result.significant == (result.p_value < 0.05)

    def test_end_to_end_with_cross_validation(self):
        from repro.datasets.generators import make_classification_mixture
        from repro.evaluation.crossval import cross_validated_accuracy

        dataset = make_classification_mixture(
            [80, 80], n_features=4, class_separation=3.0, random_state=0
        )
        cv = cross_validated_accuracy(
            dataset.data, dataset.target, k=10, n_splits=5,
            random_state=0,
        )
        result = compare_paired_scores(
            cv.original_scores, cv.condensed_scores,
            n_permutations=2000, n_resamples=2000, random_state=0,
        )
        # The paper's claim, statistically phrased: no significant
        # accuracy loss from condensation at a modest k.
        assert abs(result.mean_difference) < 0.15

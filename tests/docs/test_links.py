"""Dead-link check over the repository's markdown documentation.

Every relative link in root-level ``*.md`` files and ``docs/*.md``
must resolve to an existing file, and a ``file.md#anchor`` link must
name a heading that exists in the target (GitHub slug rules: lowered,
punctuation stripped, spaces to hyphens).  External links are not
fetched — the build environment is offline by design.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


# Verbatim source-material archives (paper scrape, retrieved related
# work, exemplar snippets) are not documentation we maintain; their
# extraction artifacts (e.g. figure references from a PDF) are
# expected to dangle.
ARCHIVES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}


def markdown_files():
    files = sorted(REPO_ROOT.glob("*.md"))
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [path for path in files if path.name not in ARCHIVES]


def github_slug(heading):
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text).strip("-")


def anchors_of(path):
    return {github_slug(match) for match in
            HEADING.findall(path.read_text(encoding="utf-8"))}


def links_of(path):
    for match in LINK.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        yield target


def test_collection_is_not_empty():
    assert any(list(links_of(path)) for path in markdown_files())


@pytest.mark.parametrize(
    "md_file", markdown_files(), ids=lambda path: str(path.name)
)
def test_relative_links_resolve(md_file):
    problems = []
    for target in links_of(md_file):
        path_part, __, anchor = target.partition("#")
        if path_part:
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{target} -> missing file {resolved}")
                continue
        else:
            resolved = md_file  # same-document anchor
        if anchor and resolved.suffix == ".md":
            if anchor not in anchors_of(resolved):
                problems.append(
                    f"{target} -> no heading slug '{anchor}' "
                    f"in {resolved.name}"
                )
    assert not problems, (
        f"{md_file.name} has dead links:\n  " + "\n  ".join(problems)
    )

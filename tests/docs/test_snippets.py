"""Execute every fenced ``python`` snippet in docs/ and README.md.

Documentation here is a contract: if a page shows code, that code must
run against the current API.  Blocks within one file share a namespace
and execute top to bottom (tutorial-style pages build state across
steps), inside a temporary working directory so snippets may freely
write files.  A block can opt out with an HTML comment containing
``doc-verify: skip`` on one of the three lines above its fence —
reserved for deliberately broken fragments such as the analyzer
documentation's violation examples.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SKIP_MARKER = "doc-verify: skip"


def documentation_files():
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    files.append(REPO_ROOT / "README.md")
    return files


def extract_python_blocks(path):
    """Yield ``(first_line_number, source, skipped)`` per fenced block."""
    lines = path.read_text(encoding="utf-8").splitlines()
    blocks = []
    index = 0
    while index < len(lines):
        if lines[index].strip() == "```python":
            skipped = any(
                SKIP_MARKER in lines[lookback]
                for lookback in range(max(0, index - 3), index)
            )
            start = index + 1
            end = start
            while end < len(lines) and lines[end].strip() != "```":
                end += 1
            if end == len(lines):
                raise AssertionError(
                    f"{path.name}:{index + 1}: unterminated ```python fence"
                )
            blocks.append((start + 1, "\n".join(lines[start:end]), skipped))
            index = end + 1
        else:
            index += 1
    return blocks


def test_collection_is_not_empty():
    files = documentation_files()
    assert any(extract_python_blocks(path) for path in files), (
        "no python snippets found anywhere — extraction is broken"
    )


@pytest.mark.parametrize(
    "md_file",
    documentation_files(),
    ids=lambda path: path.name,
)
def test_snippets_execute(md_file, tmp_path, monkeypatch):
    blocks = extract_python_blocks(md_file)
    runnable = [block for block in blocks if not block[2]]
    if not runnable:
        pytest.skip(f"{md_file.name} has no runnable python snippets")
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": f"doc_snippet_{md_file.stem}"}
    for line_number, source, __ in runnable:
        code = compile(
            source, f"{md_file.name}:line {line_number}", "exec"
        )
        exec(code, namespace)  # noqa: S102 - executing our own docs

"""Tests for repro.io.model_store."""

import json

import numpy as np
import pytest

from repro.core.condensation import create_condensed_groups
from repro.core.generation import generate_anonymized_data
from repro.io.model_store import FORMAT_VERSION, load_model, save_model


class TestModelRoundTrip:
    def test_round_trip_preserves_statistics(self, tmp_path,
                                              gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        loaded = load_model(path)
        assert loaded.k == model.k
        assert loaded.n_groups == model.n_groups
        np.testing.assert_allclose(loaded.centroids(), model.centroids())
        for original, rebuilt in zip(model.groups, loaded.groups):
            np.testing.assert_allclose(
                rebuilt.second_order, original.second_order
            )

    def test_generation_from_loaded_model(self, tmp_path, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        loaded = load_model(path)
        a = generate_anonymized_data(model, random_state=7)
        b = generate_anonymized_data(loaded, random_state=7)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_metadata_stripped_by_default(self, tmp_path, gaussian_data):
        # Memberships reference original records; they must not ship.
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        payload = json.loads(path.read_text())
        assert payload["metadata"] == {}
        assert load_model(path).metadata == {}

    def test_metadata_kept_on_request(self, tmp_path, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model, include_metadata=True)
        loaded = load_model(path)
        assert loaded.metadata["strategy"] == "random"
        assert len(loaded.metadata["memberships"]) == model.n_groups

    def test_format_version_written(self, tmp_path, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION

    def test_unknown_version_rejected(self, tmp_path, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_model(path)

    def test_missing_version_rejected(self, tmp_path, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        payload = json.loads(path.read_text())
        del payload["format_version"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_model(path)


class TestPathologicalStatistics:
    """Round trips at the edges the JSON layer must handle explicitly.

    NaN/inf sums and zero-count groups are never produced by a correct
    condensation run, but they can arrive from corrupted inputs or
    hand-edited files, and the store's behavior at those edges is part
    of its contract: values survive byte-exactly without validation,
    and validation rejects them at the trust boundary.
    """

    def _pathological_model(self, gaussian_data, mutate):
        model = create_condensed_groups(gaussian_data, k=10,
                                        random_state=0)
        mutate(model.groups[0])
        return model

    def test_nan_sums_round_trip_unvalidated(self, tmp_path,
                                             gaussian_data):
        def poison(group):
            group.first_order[0] = np.nan

        model = self._pathological_model(gaussian_data, poison)
        path = tmp_path / "model.json"
        save_model(path, model)
        loaded = load_model(path, validate=False)
        assert np.isnan(loaded.groups[0].first_order[0])
        np.testing.assert_array_equal(
            loaded.groups[0].first_order[1:],
            model.groups[0].first_order[1:],
        )

    def test_inf_sums_round_trip_unvalidated(self, tmp_path,
                                             gaussian_data):
        def poison(group):
            group.second_order[0, 0] = np.inf
            group.first_order[1] = -np.inf

        model = self._pathological_model(gaussian_data, poison)
        path = tmp_path / "model.json"
        save_model(path, model)
        loaded = load_model(path, validate=False)
        assert loaded.groups[0].second_order[0, 0] == np.inf
        assert loaded.groups[0].first_order[1] == -np.inf

    def test_nan_sums_rejected_by_validation(self, tmp_path,
                                             gaussian_data):
        def poison(group):
            group.first_order[0] = np.nan

        model = self._pathological_model(gaussian_data, poison)
        path = tmp_path / "model.json"
        save_model(path, model)
        with pytest.raises(ValueError, match="non-finite first-order"):
            load_model(path)

    def test_inf_sums_rejected_by_validation(self, tmp_path,
                                             gaussian_data):
        def poison(group):
            group.second_order[2, 2] = np.inf

        model = self._pathological_model(gaussian_data, poison)
        path = tmp_path / "model.json"
        save_model(path, model)
        with pytest.raises(ValueError, match="non-finite second-order"):
            load_model(path)

    def test_zero_count_group_round_trips_unvalidated(self, tmp_path,
                                                      gaussian_data):
        def empty_out(group):
            group.count = 0
            group.first_order[:] = 0.0
            group.second_order[:] = 0.0

        model = self._pathological_model(gaussian_data, empty_out)
        path = tmp_path / "model.json"
        save_model(path, model)
        loaded = load_model(path, validate=False)
        assert loaded.groups[0].count == 0
        np.testing.assert_array_equal(loaded.groups[0].first_order,
                                      np.zeros_like(
                                          model.groups[0].first_order))

    def test_zero_count_group_rejected_by_validation(self, tmp_path,
                                                     gaussian_data):
        def empty_out(group):
            group.count = 0

        model = self._pathological_model(gaussian_data, empty_out)
        path = tmp_path / "model.json"
        save_model(path, model)
        with pytest.raises(ValueError, match="non-positive count"):
            load_model(path)

    def test_extreme_magnitudes_survive_exactly(self, tmp_path,
                                                gaussian_data):
        """The JSON float round trip is shortest-repr exact."""
        def stretch(group):
            group.first_order[0] = 1.7976931348623157e308
            group.first_order[1] = 5e-324
            group.second_order[0, 0] = 2.2250738585072014e-308

        model = self._pathological_model(gaussian_data, stretch)
        path = tmp_path / "model.json"
        save_model(path, model)
        loaded = load_model(path, validate=False)
        np.testing.assert_array_equal(loaded.groups[0].first_order,
                                      model.groups[0].first_order)
        np.testing.assert_array_equal(loaded.groups[0].second_order,
                                      model.groups[0].second_order)

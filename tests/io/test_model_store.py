"""Tests for repro.io.model_store."""

import json

import numpy as np
import pytest

from repro.core.condensation import create_condensed_groups
from repro.core.generation import generate_anonymized_data
from repro.io.model_store import FORMAT_VERSION, load_model, save_model


class TestModelRoundTrip:
    def test_round_trip_preserves_statistics(self, tmp_path,
                                              gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        loaded = load_model(path)
        assert loaded.k == model.k
        assert loaded.n_groups == model.n_groups
        np.testing.assert_allclose(loaded.centroids(), model.centroids())
        for original, rebuilt in zip(model.groups, loaded.groups):
            np.testing.assert_allclose(
                rebuilt.second_order, original.second_order
            )

    def test_generation_from_loaded_model(self, tmp_path, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        loaded = load_model(path)
        a = generate_anonymized_data(model, random_state=7)
        b = generate_anonymized_data(loaded, random_state=7)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_metadata_stripped_by_default(self, tmp_path, gaussian_data):
        # Memberships reference original records; they must not ship.
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        payload = json.loads(path.read_text())
        assert payload["metadata"] == {}
        assert load_model(path).metadata == {}

    def test_metadata_kept_on_request(self, tmp_path, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model, include_metadata=True)
        loaded = load_model(path)
        assert loaded.metadata["strategy"] == "random"
        assert len(loaded.metadata["memberships"]) == model.n_groups

    def test_format_version_written(self, tmp_path, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION

    def test_unknown_version_rejected(self, tmp_path, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_model(path)

    def test_missing_version_rejected(self, tmp_path, gaussian_data):
        model = create_condensed_groups(gaussian_data, k=10, random_state=0)
        path = tmp_path / "model.json"
        save_model(path, model)
        payload = json.loads(path.read_text())
        del payload["format_version"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_model(path)

"""Tests for repro.io.csv."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.io.csv import (
    read_dataset,
    read_records,
    write_dataset,
    write_records,
)


class TestRecordsRoundTrip:
    def test_round_trip(self, tmp_path, gaussian_data):
        path = tmp_path / "records.csv"
        write_records(path, gaussian_data, feature_names=list("abcd"))
        data, header = read_records(path)
        np.testing.assert_allclose(data, gaussian_data, atol=1e-12)
        assert header == ["a", "b", "c", "d"]

    def test_default_header(self, tmp_path, gaussian_data):
        path = tmp_path / "records.csv"
        write_records(path, gaussian_data)
        __, header = read_records(path)
        assert header == ["attr_0", "attr_1", "attr_2", "attr_3"]

    def test_header_count_checked(self, tmp_path, gaussian_data):
        with pytest.raises(ValueError, match="feature names"):
            write_records(
                tmp_path / "x.csv", gaussian_data, feature_names=["a"]
            )

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_records(tmp_path / "x.csv", np.zeros(5))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_records(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data rows"):
            read_records(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1.0,2.0\n3.0\n")
        with pytest.raises(ValueError, match="expected 2 columns"):
            read_records(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "text.csv"
        path.write_text("a,b\n1.0,hello\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_records(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("a,b\n1.0,2.0\n\n3.0,4.0\n")
        data, __ = read_records(path)
        assert data.shape == (2, 2)


class TestDatasetRoundTrip:
    def make_dataset(self, task="classification"):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(20, 3))
        if task == "classification":
            target = rng.integers(0, 3, size=20)
        else:
            target = rng.normal(size=20)
        return Dataset(
            name="toy", data=data, target=target, task=task,
            feature_names=["x", "y", "z"],
        )

    def test_classification_round_trip(self, tmp_path):
        dataset = self.make_dataset()
        path = tmp_path / "dataset.csv"
        write_dataset(path, dataset)
        loaded = read_dataset(path, task="classification")
        np.testing.assert_allclose(loaded.data, dataset.data, atol=1e-12)
        np.testing.assert_array_equal(loaded.target, dataset.target)
        assert loaded.feature_names == ["x", "y", "z"]

    def test_regression_round_trip(self, tmp_path):
        dataset = self.make_dataset(task="regression")
        path = tmp_path / "dataset.csv"
        write_dataset(path, dataset)
        loaded = read_dataset(path, task="regression")
        np.testing.assert_allclose(
            loaded.target, dataset.target, atol=1e-12
        )

    def test_string_labels_preserved(self, tmp_path):
        rng = np.random.default_rng(0)
        dataset = Dataset(
            name="toy",
            data=rng.normal(size=(4, 2)),
            target=np.array(["yes", "no", "yes", "no"]),
            task="classification",
        )
        path = tmp_path / "dataset.csv"
        write_dataset(path, dataset)
        loaded = read_dataset(path)
        assert set(loaded.target.tolist()) == {"yes", "no"}

    def test_target_name_collision(self, tmp_path):
        rng = np.random.default_rng(0)
        dataset = Dataset(
            name="toy",
            data=rng.normal(size=(4, 1)),
            target=np.zeros(4),
            task="regression",
            feature_names=["target"],
        )
        with pytest.raises(ValueError, match="collides"):
            write_dataset(tmp_path / "x.csv", dataset)

    def test_missing_target_column(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a,b\n1.0,2.0\n")
        with pytest.raises(ValueError, match="target column"):
            read_dataset(path)

    def test_non_numeric_regression_target(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a,target\n1.0,high\n")
        with pytest.raises(ValueError, match="numeric"):
            read_dataset(path, task="regression")

    def test_default_name_from_path(self, tmp_path):
        dataset = self.make_dataset()
        path = tmp_path / "cohort.csv"
        write_dataset(path, dataset)
        assert read_dataset(path).name == "cohort"

"""Tests for repro.baselines.perturbation."""

import numpy as np
import pytest

from repro.baselines.perturbation import AdditivePerturbation, NoiseModel


class TestNoiseModel:
    def test_gaussian_sample_moments(self):
        noise = NoiseModel("gaussian", scale=2.0)
        rng = np.random.default_rng(0)
        samples = noise.sample(rng, 100000)
        assert samples.mean() == pytest.approx(0.0, abs=0.05)
        assert samples.std() == pytest.approx(2.0, abs=0.05)

    def test_uniform_sample_moments(self):
        noise = NoiseModel("uniform", scale=1.5)
        rng = np.random.default_rng(0)
        samples = noise.sample(rng, 100000)
        assert samples.mean() == pytest.approx(0.0, abs=0.05)
        assert samples.std() == pytest.approx(1.5, abs=0.05)

    def test_uniform_support(self):
        noise = NoiseModel("uniform", scale=1.0)
        rng = np.random.default_rng(0)
        samples = noise.sample(rng, 10000)
        half_range = np.sqrt(12.0) / 2.0
        assert np.abs(samples).max() <= half_range

    def test_gaussian_density_integrates_to_one(self):
        noise = NoiseModel("gaussian", scale=1.0)
        grid = np.linspace(-8, 8, 2000)
        integral = np.trapezoid(noise.density(grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_uniform_density_integrates_to_one(self):
        noise = NoiseModel("uniform", scale=1.0)
        grid = np.linspace(-8, 8, 4000)
        integral = np.trapezoid(noise.density(grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-2)

    def test_uniform_density_zero_outside_support(self):
        noise = NoiseModel("uniform", scale=1.0)
        assert noise.density(np.array([100.0]))[0] == 0.0

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="kind"):
            NoiseModel("laplace")

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            NoiseModel("gaussian", scale=0.0)


class TestAdditivePerturbation:
    def test_shape_preserved(self, gaussian_data):
        perturbed = AdditivePerturbation(random_state=0).perturb(
            gaussian_data
        )
        assert perturbed.shape == gaussian_data.shape

    def test_noise_magnitude(self, gaussian_data):
        noise = NoiseModel("gaussian", scale=3.0)
        perturbed = AdditivePerturbation(noise, random_state=0).perturb(
            gaussian_data
        )
        residuals = perturbed - gaussian_data
        assert residuals.std() == pytest.approx(3.0, rel=0.15)

    def test_original_unchanged(self, gaussian_data):
        copy = gaussian_data.copy()
        AdditivePerturbation(random_state=0).perturb(gaussian_data)
        np.testing.assert_array_equal(gaussian_data, copy)

    def test_reproducible(self, gaussian_data):
        a = AdditivePerturbation(random_state=5).perturb(gaussian_data)
        b = AdditivePerturbation(random_state=5).perturb(gaussian_data)
        np.testing.assert_array_equal(a, b)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            AdditivePerturbation(random_state=0).perturb(np.zeros(5))

    def test_privacy_interval_gaussian(self):
        perturber = AdditivePerturbation(
            NoiseModel("gaussian", scale=1.0), random_state=0
        )
        width = perturber.privacy_interval_width(confidence=0.95)
        assert width == pytest.approx(2 * 1.959964, rel=1e-4)

    def test_privacy_interval_uniform(self):
        perturber = AdditivePerturbation(
            NoiseModel("uniform", scale=1.0), random_state=0
        )
        width = perturber.privacy_interval_width(confidence=0.5)
        assert width == pytest.approx(0.5 * np.sqrt(12.0))

    def test_privacy_interval_monotone_in_confidence(self):
        perturber = AdditivePerturbation(random_state=0)
        assert perturber.privacy_interval_width(
            0.99
        ) > perturber.privacy_interval_width(0.5)

    def test_invalid_confidence(self):
        perturber = AdditivePerturbation(random_state=0)
        with pytest.raises(ValueError):
            perturber.privacy_interval_width(confidence=1.5)


class TestCorrelationDestruction:
    def test_perturbation_weakens_correlations(self, rng):
        # The condensation paper's critique: additive independent noise
        # dilutes inter-attribute correlations.
        x = rng.normal(size=2000)
        data = np.column_stack([x, x + 0.1 * rng.normal(size=2000)])
        noise = NoiseModel("gaussian", scale=2.0)
        perturbed = AdditivePerturbation(noise, random_state=0).perturb(
            data
        )
        original_correlation = np.corrcoef(data.T)[0, 1]
        perturbed_correlation = np.corrcoef(perturbed.T)[0, 1]
        assert original_correlation > 0.99
        assert perturbed_correlation < 0.5

"""Tests for repro.baselines.swapping."""

import numpy as np
import pytest

from repro.baselines.swapping import RankSwapper


class TestRankSwapper:
    def test_marginals_preserved_exactly(self, gaussian_data):
        swapped = RankSwapper(0.1, random_state=0).anonymize(
            gaussian_data
        )
        for column in range(gaussian_data.shape[1]):
            np.testing.assert_allclose(
                np.sort(swapped[:, column]),
                np.sort(gaussian_data[:, column]),
            )

    def test_records_actually_change(self, gaussian_data):
        swapped = RankSwapper(0.1, random_state=0).anonymize(
            gaussian_data
        )
        changed = np.any(swapped != gaussian_data, axis=1)
        assert changed.mean() > 0.5

    def test_zero_range_is_identity(self, gaussian_data):
        swapped = RankSwapper(0.0, random_state=0).anonymize(
            gaussian_data
        )
        np.testing.assert_array_equal(swapped, gaussian_data)

    def test_original_unchanged(self, gaussian_data):
        copy = gaussian_data.copy()
        RankSwapper(0.2, random_state=0).anonymize(gaussian_data)
        np.testing.assert_array_equal(gaussian_data, copy)

    def test_rank_distance_bounded(self, rng):
        data = rng.normal(size=(200, 1))
        swap_range = 0.05
        swapped = RankSwapper(swap_range, random_state=0).anonymize(data)
        window = max(1, int(round(swap_range * 200)))
        original_ranks = np.argsort(np.argsort(data[:, 0]))
        swapped_ranks = np.argsort(np.argsort(swapped[:, 0]))
        # Each record's value moved at most `window` ranks: since
        # marginals are identical, compare the rank its new value holds.
        value_rank = {
            float(value): rank
            for rank, value in enumerate(np.sort(data[:, 0]))
        }
        for row in range(200):
            new_rank = value_rank[float(swapped[row, 0])]
            assert abs(new_rank - original_ranks[row]) <= window

    def test_correlation_erodes_with_range(self, rng):
        x = rng.normal(size=500)
        data = np.column_stack([x, x + 0.05 * rng.normal(size=500)])
        mild = RankSwapper(0.02, random_state=0).anonymize(data)
        harsh = RankSwapper(0.5, random_state=0).anonymize(data)
        mild_correlation = np.corrcoef(mild.T)[0, 1]
        harsh_correlation = np.corrcoef(harsh.T)[0, 1]
        assert mild_correlation > harsh_correlation

    def test_condensation_preserves_correlation_better_at_high_privacy(
        self, rng
    ):
        # The structural comparison: at an aggressive privacy setting,
        # rank swapping destroys the correlation that condensation
        # (even at large k) keeps.
        from repro.core.condenser import StaticCondenser
        from repro.metrics import covariance_compatibility

        x = rng.normal(size=400)
        data = np.column_stack([
            x, x + 0.1 * rng.normal(size=400),
            -x + 0.1 * rng.normal(size=400),
        ])
        swapped = RankSwapper(0.5, random_state=0).anonymize(data)
        condensed = StaticCondenser(k=40, random_state=0).fit_generate(
            data
        )
        assert covariance_compatibility(data, condensed) > 0.99
        assert covariance_compatibility(data, swapped) < 0.92
        # The pairwise correlation itself is what swapping destroys.
        assert abs(np.corrcoef(swapped.T)[0, 1]) < 0.5
        assert abs(np.corrcoef(condensed.T)[0, 1]) > 0.9

    def test_reproducible(self, gaussian_data):
        a = RankSwapper(0.1, random_state=9).anonymize(gaussian_data)
        b = RankSwapper(0.1, random_state=9).anonymize(gaussian_data)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            RankSwapper(-0.1)
        with pytest.raises(ValueError):
            RankSwapper(1.1)
        with pytest.raises(ValueError):
            RankSwapper(0.1).anonymize(np.zeros(5))

    def test_tiny_data(self):
        data = np.array([[1.0], [2.0]])
        swapped = RankSwapper(1.0, random_state=0).anonymize(data)
        assert sorted(swapped[:, 0].tolist()) == [1.0, 2.0]

"""Tests for repro.baselines.reconstruction — the AS iterative Bayes."""

import numpy as np
import pytest

from repro.baselines.perturbation import AdditivePerturbation, NoiseModel
from repro.baselines.reconstruction import (
    ReconstructedDensity,
    reconstruct_density,
    reconstruct_marginals,
)


class TestReconstructedDensity:
    def make_density(self):
        grid = np.linspace(-3, 3, 61)
        values = np.exp(-0.5 * grid**2)
        values /= np.trapezoid(values, grid)
        return ReconstructedDensity(grid, values)

    def test_pdf_lookup(self):
        density = self.make_density()
        assert density.pdf(np.array([0.0]))[0] > density.pdf(
            np.array([2.0])
        )[0]

    def test_pdf_zero_outside_grid(self):
        density = self.make_density()
        assert density.pdf(np.array([100.0]))[0] == 0.0

    def test_mean_of_symmetric_density(self):
        assert self.make_density().mean() == pytest.approx(0.0, abs=1e-10)

    def test_variance_of_standard_normal(self):
        assert self.make_density().variance() == pytest.approx(1.0,
                                                               abs=0.05)

    def test_sampling_matches_density(self, rng):
        density = self.make_density()
        samples = density.sample(rng, 50000)
        assert samples.mean() == pytest.approx(0.0, abs=0.05)
        assert samples.std() == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReconstructedDensity(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            ReconstructedDensity(np.zeros(1), np.zeros(1))


class TestReconstructDensity:
    def test_recovers_bimodal_structure(self, rng):
        # Original: two well-separated spikes.  After heavy noise the
        # raw perturbed histogram is unimodal mush; reconstruction must
        # recover the two modes.
        original = np.concatenate([
            rng.normal(-5.0, 0.3, size=1500),
            rng.normal(5.0, 0.3, size=1500),
        ])
        noise = NoiseModel("gaussian", scale=2.0)
        perturbed = original + noise.sample(rng, original.shape[0])
        estimate = reconstruct_density(perturbed, noise, n_bins=120)
        # Mass near the true modes should far exceed mass at the centre.
        near_modes = estimate.pdf(np.array([-5.0, 5.0])).mean()
        at_centre = estimate.pdf(np.array([0.0]))[0]
        assert near_modes > 3.0 * at_centre

    def test_mean_approximately_recovered(self, rng):
        original = rng.normal(3.0, 1.0, size=3000)
        noise = NoiseModel("gaussian", scale=1.0)
        perturbed = original + noise.sample(rng, 3000)
        estimate = reconstruct_density(perturbed, noise)
        assert estimate.mean() == pytest.approx(3.0, abs=0.2)

    def test_variance_tighter_than_perturbed(self, rng):
        # The whole point of deconvolution: the estimate's variance is
        # closer to the original's than the perturbed data's variance.
        original = rng.normal(0.0, 1.0, size=4000)
        noise = NoiseModel("gaussian", scale=2.0)
        perturbed = original + noise.sample(rng, 4000)
        estimate = reconstruct_density(perturbed, noise)
        assert estimate.variance() < perturbed.var()
        assert abs(estimate.variance() - 1.0) < abs(
            perturbed.var() - 1.0
        )

    def test_density_integrates_to_one(self, rng):
        original = rng.normal(size=1000)
        noise = NoiseModel("gaussian", scale=0.5)
        perturbed = original + noise.sample(rng, 1000)
        estimate = reconstruct_density(perturbed, noise)
        integral = estimate.density.sum() * estimate.step
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_uniform_noise_supported(self, rng):
        original = rng.normal(size=2000)
        noise = NoiseModel("uniform", scale=1.0)
        perturbed = original + noise.sample(rng, 2000)
        estimate = reconstruct_density(perturbed, noise)
        assert estimate.mean() == pytest.approx(0.0, abs=0.2)

    def test_validation(self, rng):
        noise = NoiseModel()
        with pytest.raises(ValueError):
            reconstruct_density(np.empty(0), noise)
        with pytest.raises(ValueError):
            reconstruct_density(np.zeros(10), noise, n_bins=1)


class TestReconstructMarginals:
    def test_one_estimate_per_attribute(self, rng):
        data = rng.normal(size=(500, 3))
        noise = NoiseModel("gaussian", scale=1.0)
        perturbed = AdditivePerturbation(noise, random_state=0).perturb(
            data
        )
        marginals = reconstruct_marginals(perturbed, noise, max_iter=100)
        assert len(marginals) == 3
        for marginal in marginals:
            assert isinstance(marginal, ReconstructedDensity)

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError):
            reconstruct_marginals(rng.normal(size=100), NoiseModel())

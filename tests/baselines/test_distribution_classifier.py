"""Tests for repro.baselines.distribution_classifier."""

import numpy as np
import pytest

from repro.baselines.distribution_classifier import (
    PerturbedDistributionClassifier,
)
from repro.baselines.perturbation import NoiseModel


class TestPerturbedDistributionClassifier:
    def test_learns_separable_classes_at_low_noise(self, labelled_blobs):
        data, labels = labelled_blobs
        classifier = PerturbedDistributionClassifier(
            NoiseModel("gaussian", scale=0.3),
            n_bins=60, max_iter=60, random_state=0,
        ).fit(data, labels)
        assert classifier.score(data, labels) >= 0.9

    def test_accuracy_degrades_with_noise(self, rng):
        # Two barely separated classes: light noise keeps them mostly
        # distinguishable after reconstruction, heavy noise does not.
        data = np.vstack([
            rng.normal(loc=0.0, scale=1.0, size=(150, 2)),
            rng.normal(loc=1.5, scale=1.0, size=(150, 2)),
        ])
        labels = np.array([0] * 150 + [1] * 150)
        scores = []
        for scale in (0.2, 25.0):
            classifier = PerturbedDistributionClassifier(
                NoiseModel("gaussian", scale=scale),
                n_bins=60, max_iter=60, random_state=0,
            ).fit(data, labels)
            scores.append(classifier.score(data, labels))
        assert scores[0] > scores[1]

    def test_priors_learned(self, labelled_blobs):
        data, labels = labelled_blobs
        classifier = PerturbedDistributionClassifier(
            NoiseModel("gaussian", scale=0.5),
            n_bins=40, max_iter=40, random_state=0,
        ).fit(data, labels)
        np.testing.assert_allclose(classifier.class_prior_.sum(), 1.0)
        assert classifier.class_prior_[0] == pytest.approx(0.5)

    def test_correlation_blindness(self, rng):
        # The defining limitation: classes distinguished only by the
        # *sign of a correlation* (identical marginals) are invisible to
        # the per-dimension pipeline, while condensation + 1-NN can
        # separate them.
        from repro.core.condenser import ClasswiseCondenser
        from repro.neighbors.knn import KNeighborsClassifier

        n = 300
        x = rng.normal(size=n)
        y = rng.normal(size=n)
        # Class 0: positively correlated pair; class 1: negative.
        shared = rng.normal(size=n)
        class_0 = np.column_stack(
            [shared + 0.3 * x, shared + 0.3 * y]
        )
        class_1 = np.column_stack(
            [shared + 0.3 * x, -shared + 0.3 * y]
        )
        data = np.vstack([class_0, class_1])
        labels = np.array([0] * n + [1] * n)

        perturbation_classifier = PerturbedDistributionClassifier(
            NoiseModel("gaussian", scale=0.3),
            n_bins=50, max_iter=50, random_state=0,
        ).fit(data, labels)
        perturbation_accuracy = perturbation_classifier.score(data, labels)

        anonymized, anonymized_labels = ClasswiseCondenser(
            k=10, random_state=0
        ).fit_generate(data, labels)
        knn = KNeighborsClassifier(n_neighbors=1).fit(
            anonymized, anonymized_labels
        )
        condensation_accuracy = knn.score(data, labels)

        assert perturbation_accuracy < 0.7
        assert condensation_accuracy > 0.8
        assert condensation_accuracy > perturbation_accuracy + 0.15

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            PerturbedDistributionClassifier().predict(np.zeros((1, 2)))

    def test_shape_validation(self, labelled_blobs):
        data, __ = labelled_blobs
        with pytest.raises(ValueError):
            PerturbedDistributionClassifier().fit(data, np.zeros(3))

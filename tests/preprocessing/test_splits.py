"""Tests for repro.preprocessing.splits."""

import numpy as np
import pytest

from repro.preprocessing.splits import (
    KFold,
    StratifiedKFold,
    train_test_split,
)


class TestTrainTestSplit:
    def test_sizes(self, gaussian_data):
        train, test = train_test_split(
            gaussian_data, test_size=0.25, random_state=0
        )
        assert test.shape[0] == 30
        assert train.shape[0] == 90

    def test_partition_covers_everything(self, gaussian_data):
        train, test = train_test_split(
            gaussian_data, test_size=0.3, random_state=1
        )
        combined = np.vstack([train, test])
        assert combined.shape == gaussian_data.shape
        assert {tuple(row) for row in combined} == {
            tuple(row) for row in gaussian_data
        }

    def test_aligned_arrays(self, labelled_blobs):
        data, labels = labelled_blobs
        train, test, y_train, y_test = train_test_split(
            data, labels, test_size=0.25, random_state=2
        )
        assert train.shape[0] == y_train.shape[0]
        assert test.shape[0] == y_test.shape[0]

    def test_alignment_preserved(self, labelled_blobs):
        data, labels = labelled_blobs
        tagged = np.column_stack([data, labels])
        train, __, y_train, __ = train_test_split(
            tagged, labels, test_size=0.25, random_state=3
        )
        np.testing.assert_array_equal(train[:, -1].astype(int), y_train)

    def test_stratified_proportions(self):
        data = np.zeros((100, 2))
        labels = np.array([0] * 80 + [1] * 20)
        __, __, y_train, y_test = train_test_split(
            data, labels, test_size=0.25, stratify=labels, random_state=4
        )
        assert np.sum(y_test == 1) == 5
        assert np.sum(y_test == 0) == 20

    def test_stratified_keeps_rare_class_in_train(self):
        data = np.zeros((11, 2))
        labels = np.array([0] * 9 + [1] * 2)
        __, __, y_train, y_test = train_test_split(
            data, labels, test_size=0.2, stratify=labels, random_state=5
        )
        assert np.sum(y_train == 1) >= 1

    def test_reproducible(self, gaussian_data):
        first = train_test_split(gaussian_data, random_state=6)
        second = train_test_split(gaussian_data, random_state=6)
        np.testing.assert_array_equal(first[0], second[0])

    def test_invalid_test_size(self, gaussian_data):
        with pytest.raises(ValueError):
            train_test_split(gaussian_data, test_size=0.0)
        with pytest.raises(ValueError):
            train_test_split(gaussian_data, test_size=1.0)

    def test_too_few_records(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((1, 2)))

    def test_misaligned_extra_array(self, gaussian_data):
        with pytest.raises(ValueError, match="align"):
            train_test_split(gaussian_data, np.zeros(5))


class TestKFold:
    def test_folds_partition_indices(self, gaussian_data):
        folds = list(KFold(n_splits=4, random_state=0).split(gaussian_data))
        assert len(folds) == 4
        all_test = np.concatenate([test for __, test in folds])
        assert sorted(all_test.tolist()) == list(range(120))

    def test_train_test_disjoint(self, gaussian_data):
        for train, test in KFold(n_splits=5, random_state=0).split(
            gaussian_data
        ):
            assert not set(train.tolist()) & set(test.tolist())

    def test_no_shuffle_is_contiguous(self):
        data = np.zeros((10, 1))
        folds = list(KFold(n_splits=5, shuffle=False).split(data))
        np.testing.assert_array_equal(folds[0][1], [0, 1])

    def test_too_few_records(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.zeros((3, 1))))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestStratifiedKFold:
    def test_class_proportions_per_fold(self):
        data = np.zeros((100, 1))
        labels = np.array([0] * 60 + [1] * 40)
        splitter = StratifiedKFold(n_splits=5, random_state=0)
        for __, test in splitter.split(data, labels):
            test_labels = labels[test]
            assert np.sum(test_labels == 0) == 12
            assert np.sum(test_labels == 1) == 8

    def test_partition_covers_everything(self, labelled_blobs):
        data, labels = labelled_blobs
        splitter = StratifiedKFold(n_splits=3, random_state=1)
        all_test = np.concatenate(
            [test for __, test in splitter.split(data, labels)]
        )
        assert sorted(all_test.tolist()) == list(range(data.shape[0]))

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError, match="align"):
            list(StratifiedKFold().split(np.zeros((5, 1)), np.zeros(4)))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(n_splits=0)

"""Tests for repro.preprocessing.encoders."""

import numpy as np
import pytest

from repro.preprocessing.encoders import LabelEncoder, one_hot_encode


class TestLabelEncoder:
    def test_round_trip(self):
        labels = np.array(["dog", "cat", "dog", "bird"])
        encoder = LabelEncoder()
        encoded = encoder.fit_transform(labels)
        np.testing.assert_array_equal(
            encoder.inverse_transform(encoded), labels
        )

    def test_codes_are_contiguous(self):
        labels = np.array(["b", "a", "c", "a"])
        encoded = LabelEncoder().fit_transform(labels)
        assert set(encoded.tolist()) == {0, 1, 2}

    def test_sorted_class_order(self):
        encoder = LabelEncoder().fit(np.array(["b", "a"]))
        np.testing.assert_array_equal(encoder.classes_, ["a", "b"])

    def test_unseen_label_rejected(self):
        encoder = LabelEncoder().fit(np.array(["a", "b"]))
        with pytest.raises(ValueError, match="unseen"):
            encoder.transform(np.array(["c"]))

    def test_out_of_range_code_rejected(self):
        encoder = LabelEncoder().fit(np.array(["a", "b"]))
        with pytest.raises(ValueError, match="range"):
            encoder.inverse_transform(np.array([5]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(np.array(["a"]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LabelEncoder().fit(np.array([]))

    def test_integer_labels(self):
        labels = np.array([10, 20, 10])
        encoder = LabelEncoder()
        encoded = encoder.fit_transform(labels)
        np.testing.assert_array_equal(encoded, [0, 1, 0])


class TestOneHotEncode:
    def test_basic(self):
        encoded = one_hot_encode(np.array([0, 2, 1]))
        np.testing.assert_array_equal(
            encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_rows_sum_to_one(self, rng):
        labels = rng.integers(0, 5, size=30)
        encoded = one_hot_encode(labels)
        np.testing.assert_allclose(encoded.sum(axis=1), 1.0)

    def test_explicit_n_classes(self):
        encoded = one_hot_encode(np.array([0, 1]), n_classes=4)
        assert encoded.shape == (2, 4)

    def test_label_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            one_hot_encode(np.array([3]), n_classes=2)

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            one_hot_encode(np.array([-1, 0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            one_hot_encode(np.array([], dtype=int))

"""Tests for repro.preprocessing.mixed."""

import numpy as np
import pytest

from repro.preprocessing.mixed import MixedTypeEncoder


@pytest.fixture
def mixed_data(rng):
    continuous = rng.normal(size=(50, 2))
    sex = rng.choice([0.0, 1.0, 2.0], size=50)
    grade = rng.choice([10.0, 20.0], size=50)
    # layout: [continuous_0, sex, continuous_1, grade]
    return np.column_stack(
        [continuous[:, 0], sex, continuous[:, 1], grade]
    )


class TestMixedTypeEncoder:
    def test_output_width(self, mixed_data):
        encoder = MixedTypeEncoder([1, 3]).fit(mixed_data)
        # 2 continuous + 3 sex categories + 2 grade categories.
        assert encoder.n_output_columns == 7

    def test_round_trip_exact(self, mixed_data):
        encoder = MixedTypeEncoder([1, 3]).fit(mixed_data)
        encoded = encoder.transform(mixed_data)
        decoded = encoder.inverse_transform(encoded)
        np.testing.assert_allclose(decoded, mixed_data, atol=1e-12)

    def test_one_hot_blocks_valid(self, mixed_data):
        encoder = MixedTypeEncoder([1, 3]).fit(mixed_data)
        encoded = encoder.transform(mixed_data)
        sex_block = encoded[:, 2:5]
        np.testing.assert_allclose(sex_block.sum(axis=1), 1.0)
        assert set(np.unique(sex_block).tolist()) == {0.0, 1.0}

    def test_noisy_blocks_snap_to_categories(self, mixed_data, rng):
        encoder = MixedTypeEncoder([1, 3]).fit(mixed_data)
        encoded = encoder.transform(mixed_data)
        noisy = encoded + 0.2 * rng.normal(size=encoded.shape)
        decoded = encoder.inverse_transform(noisy)
        assert set(np.unique(decoded[:, 1]).tolist()) <= {0.0, 1.0, 2.0}
        assert set(np.unique(decoded[:, 3]).tolist()) <= {10.0, 20.0}

    def test_condensation_round_trip(self, mixed_data):
        from repro.core.condenser import StaticCondenser

        encoder = MixedTypeEncoder([1, 3]).fit(mixed_data)
        encoded = encoder.transform(mixed_data)
        anonymized = StaticCondenser(k=10, random_state=0).fit_generate(
            encoded
        )
        release = encoder.inverse_transform(anonymized)
        assert release.shape == mixed_data.shape
        assert set(np.unique(release[:, 1]).tolist()) <= {0.0, 1.0, 2.0}
        # Category proportions roughly preserved.
        # Category 10.0 is an exact float code, not a measurement.
        original_share = np.mean(mixed_data[:, 3] == 10.0)  # repro-lint: disable=PY-003 -- exact categorical code
        release_share = np.mean(release[:, 3] == 10.0)  # repro-lint: disable=PY-003 -- exact categorical code
        assert abs(original_share - release_share) < 0.25

    def test_unseen_category_rejected(self, mixed_data):
        encoder = MixedTypeEncoder([1, 3]).fit(mixed_data)
        bad = mixed_data.copy()
        bad[0, 1] = 9.0
        with pytest.raises(ValueError, match="unseen category"):
            encoder.transform(bad)

    def test_no_categoricals_is_passthrough(self, mixed_data):
        encoder = MixedTypeEncoder([]).fit(mixed_data)
        np.testing.assert_allclose(
            encoder.transform(mixed_data), mixed_data
        )
        assert encoder.n_output_columns == 4

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            MixedTypeEncoder([1, 1])

    def test_out_of_range_column(self, mixed_data):
        with pytest.raises(ValueError, match="out of range"):
            MixedTypeEncoder([10]).fit(mixed_data)

    def test_unfitted(self, mixed_data):
        with pytest.raises(RuntimeError):
            MixedTypeEncoder([1]).transform(mixed_data)

    def test_wrong_width_at_transform(self, mixed_data):
        encoder = MixedTypeEncoder([1]).fit(mixed_data)
        with pytest.raises(ValueError, match="columns"):
            encoder.transform(mixed_data[:, :2])

    def test_wrong_width_at_inverse(self, mixed_data):
        encoder = MixedTypeEncoder([1]).fit(mixed_data)
        with pytest.raises(ValueError, match="expected shape"):
            encoder.inverse_transform(np.zeros((3, 2)))

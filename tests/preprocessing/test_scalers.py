"""Tests for repro.preprocessing.scalers."""

import numpy as np
import pytest

from repro.preprocessing.scalers import MinMaxScaler, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, gaussian_data):
        scaled = StandardScaler().fit_transform(gaussian_data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_round_trip(self, gaussian_data):
        scaler = StandardScaler().fit(gaussian_data)
        round_trip = scaler.inverse_transform(
            scaler.transform(gaussian_data)
        )
        np.testing.assert_allclose(round_trip, gaussian_data, atol=1e-10)

    def test_constant_column_passes_through(self):
        data = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        scaled = StandardScaler().fit_transform(data)
        assert np.isfinite(scaled).all()
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_transform_uses_training_statistics(self, gaussian_data):
        scaler = StandardScaler().fit(gaussian_data)
        other = gaussian_data + 10.0
        scaled = scaler.transform(other)
        np.testing.assert_allclose(
            scaled.mean(axis=0),
            10.0 / scaler.scale_,
            atol=1e-8,
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_attribute_count_mismatch(self, gaussian_data):
        scaler = StandardScaler().fit(gaussian_data)
        with pytest.raises(ValueError, match="attributes"):
            scaler.transform(gaussian_data[:, :2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.empty((0, 3)))


class TestMinMaxScaler:
    def test_default_range(self, gaussian_data):
        scaled = MinMaxScaler().fit_transform(gaussian_data)
        np.testing.assert_allclose(scaled.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0, atol=1e-12)

    def test_custom_range(self, gaussian_data):
        scaled = MinMaxScaler(feature_range=(-2.0, 2.0)).fit_transform(
            gaussian_data
        )
        np.testing.assert_allclose(scaled.min(axis=0), -2.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 2.0, atol=1e-12)

    def test_inverse_round_trip(self, gaussian_data):
        scaler = MinMaxScaler().fit(gaussian_data)
        round_trip = scaler.inverse_transform(
            scaler.transform(gaussian_data)
        )
        np.testing.assert_allclose(round_trip, gaussian_data, atol=1e-10)

    def test_constant_column_maps_to_midpoint(self):
        data = np.column_stack([np.full(5, 3.0), np.arange(5, dtype=float)])
        scaled = MinMaxScaler().fit_transform(data)
        np.testing.assert_allclose(scaled[:, 0], 0.5)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError, match="feature_range"):
            MinMaxScaler(feature_range=(1.0, 1.0))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_attribute_count_mismatch(self, gaussian_data):
        scaler = MinMaxScaler().fit(gaussian_data)
        with pytest.raises(ValueError):
            scaler.transform(gaussian_data[:, :2])

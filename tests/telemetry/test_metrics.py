"""The metrics registry: counters, gauges, fixed-bucket histograms."""

import numpy as np
import pytest

from repro.telemetry import (
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_scalar,
)


class TestCheckScalar:
    def test_accepts_python_scalars(self):
        for value in (1, 1.5, True):
            assert check_scalar(value) == pytest.approx(float(value))

    def test_accepts_numpy_scalars(self):
        assert check_scalar(np.float64(2.5)) == pytest.approx(2.5)
        assert check_scalar(np.int64(7)) == pytest.approx(7.0)
        # shape-() arrays count as scalars too
        assert check_scalar(np.array(3.0)) == pytest.approx(3.0)

    def test_rejects_arrays(self):
        with pytest.raises(TypeError, match="scalar"):
            check_scalar(np.zeros(3))

    def test_rejects_sequences_and_strings(self):
        for value in ([1, 2], (1,), "5", None):
            with pytest.raises(TypeError):
                check_scalar(value)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("events", "")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value() == pytest.approx(5.0)

    def test_rejects_negative_increment(self):
        counter = Counter("events", "")
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        counter = Counter("events", "")
        counter.inc(labels={"kind": "a"})
        counter.inc(2, labels={"kind": "b"})
        assert counter.value(labels={"kind": "a"}) == pytest.approx(1.0)
        assert counter.value(labels={"kind": "b"}) == pytest.approx(2.0)


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("depth", "")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value() == pytest.approx(7.0)


class TestHistogram:
    def test_bucket_counts_follow_le_semantics(self):
        histogram = Histogram("sizes", "", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 10.0, 11.0):
            histogram.observe(value)
        # Buckets are (<=1, <=5, <=10, +Inf): boundary values land in
        # their own bucket, not the next one up.
        assert histogram.bucket_counts() == [2, 1, 1, 1]
        assert histogram.count() == 5

    def test_deterministic_for_identical_observations(self):
        first = Histogram("a", "", buckets=DEFAULT_SIZE_BUCKETS)
        second = Histogram("b", "", buckets=DEFAULT_SIZE_BUCKETS)
        values = [1, 7, 19, 19, 500, 20000]
        for value in values:
            first.observe(value)
            second.observe(value)
        assert first.bucket_counts() == second.bucket_counts()

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("bad", "", buckets=(2.0, 1.0))

    def test_rejects_array_observation(self):
        histogram = Histogram("sizes", "")
        with pytest.raises(TypeError):
            histogram.observe(np.zeros(4))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("events") is registry.counter("events")
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("events")
        with pytest.raises(TypeError, match="events"):
            registry.gauge("events")

    def test_snapshot_round_trips_values(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.histogram("sizes", buckets=(1.0, 2.0)).observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["events"]["series"][""] == pytest.approx(3.0)
        assert snapshot["sizes"]["series"][""]["count"] == 1

    def test_metrics_listing_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.counter("aa")
        assert [metric.name for metric in registry.metrics()] == [
            "aa", "zz",
        ]

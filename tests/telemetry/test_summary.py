"""Trace summarization behind the ``repro telemetry`` subcommand."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    TelemetryPipeline,
    format_summary,
    summarize_events,
    summarize_trace,
    write_events,
)


def span_event(name, duration, **attributes):
    return {
        "type": "span", "name": name, "span_id": 1, "parent_id": None,
        "start": 0.0, "duration": duration, "attributes": attributes,
    }


class TestSummarizeEvents:
    def test_aggregates_per_name(self):
        summary = summarize_events([
            span_event("ingest", 1.0),
            span_event("ingest", 3.0),
            span_event("split", 0.5),
        ])
        assert summary.n_events == 3
        assert summary.n_spans == 3
        ingest = summary.spans["ingest"]
        assert ingest.count == 2
        assert ingest.total == pytest.approx(4.0)
        assert ingest.mean == pytest.approx(2.0)
        assert ingest.maximum == pytest.approx(3.0)

    def test_metrics_line_is_captured(self):
        summary = summarize_events([
            span_event("a", 1.0),
            {"type": "metrics", "metrics": {"events": {
                "kind": "counter", "help": "", "series": {"": 2.0},
            }}},
        ])
        assert summary.n_spans == 1
        assert summary.metrics["events"]["series"][""] == pytest.approx(2.0)

    def test_unknown_event_types_counted_but_ignored(self):
        summary = summarize_events([{"type": "log", "message": "hi"}])
        assert summary.n_events == 1
        assert summary.n_spans == 0
        assert summary.spans == {}


class TestFormatSummary:
    def test_report_contains_spans_and_metrics(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("dynamic.absorbed").inc(7)
        registry.histogram("sizes", buckets=(10.0,)).observe(4)
        pipeline = TelemetryPipeline(registry=registry)
        with pipeline.span("dynamic.ingest"):
            pass
        target = tmp_path / "trace.jsonl"
        write_events(target, pipeline.finished_spans(), registry=registry)

        report = format_summary(summarize_trace(target))
        assert "events: 2 (1 spans, 1 distinct names)" in report
        assert "dynamic.ingest" in report
        assert "dynamic.absorbed" in report
        assert "count=1 sum=4" in report

    def test_empty_trace_renders_header_only(self):
        report = format_summary(summarize_events([]))
        assert report == "events: 0 (0 spans, 0 distinct names)"

    def test_spans_sorted_by_total_time(self):
        report = format_summary(summarize_events([
            span_event("fast", 0.1),
            span_event("slow", 5.0),
        ]))
        assert report.index("slow") < report.index("fast")

"""Shared telemetry-test machinery: keep the global pipeline clean."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def reset_pipeline():
    """Restore the no-op pipeline after every test."""
    yield
    telemetry.disable()

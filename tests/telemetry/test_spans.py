"""Span lifecycle: timing, nesting, attributes, the no-op twin."""

import numpy as np
import pytest

from repro.telemetry import NULL_SPAN, NullSpan, TelemetryPipeline


class FakeClock:
    """Deterministic monotonic clock advancing one second per call."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


@pytest.fixture
def pipeline():
    return TelemetryPipeline(clock=FakeClock())


class TestSpanLifecycle:
    def test_duration_from_monotonic_clock(self, pipeline):
        with pipeline.span("work") as span:
            pass
        assert span.duration == pytest.approx(1.0)  # two ticks, one apart

    def test_ids_are_assigned_on_enter(self, pipeline):
        with pipeline.span("outer") as outer:
            assert outer.span_id == 1
            assert outer.parent_id is None

    def test_nesting_records_parent_ids(self, pipeline):
        with pipeline.span("outer") as outer:
            with pipeline.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with pipeline.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_current_span_tracks_the_stack(self, pipeline):
        assert pipeline.current_span() is None
        with pipeline.span("outer") as outer:
            assert pipeline.current_span() is outer
            with pipeline.span("inner") as inner:
                assert pipeline.current_span() is inner
            assert pipeline.current_span() is outer
        assert pipeline.current_span() is None

    def test_exception_marks_the_span_and_propagates(self, pipeline):
        with pytest.raises(RuntimeError):
            with pipeline.span("work") as span:
                raise RuntimeError("boom")
        assert span.attributes["error"] == pytest.approx(1.0)
        error = pipeline.finished_spans()[0]["attributes"]["error"]
        assert error == pytest.approx(1.0)

    def test_to_event_shape(self, pipeline):
        with pipeline.span("work") as span:
            span.set_attribute("n", 3)
        event = pipeline.finished_spans()[0]
        assert event["type"] == "span"
        assert event["name"] == "work"
        assert event["span_id"] == 1
        assert event["parent_id"] is None
        assert event["duration"] == pytest.approx(1.0)
        assert event["attributes"] == {"n": pytest.approx(3.0)}


class TestSpanAttributes:
    def test_scalars_and_strings_accepted(self, pipeline):
        with pipeline.span("work") as span:
            span.set_attribute("count", np.int64(4))
            span.set_attribute("strategy", "random")
        assert span.attributes == {"count": 4.0, "strategy": "random"}

    def test_arrays_rejected(self, pipeline):
        with pipeline.span("work") as span:
            with pytest.raises(TypeError):
                span.set_attribute("payload", np.zeros(8))


class TestNullSpan:
    def test_single_shared_instance(self):
        assert NullSpan() is not NULL_SPAN  # constructible, but...
        assert isinstance(NULL_SPAN, NullSpan)

    def test_is_a_reentrant_no_op(self):
        with NULL_SPAN as outer:
            with NULL_SPAN as inner:
                assert outer is inner is NULL_SPAN
        NULL_SPAN.set_attribute("anything", 1)
        assert NULL_SPAN.duration == 0.0

    def test_holds_no_state(self):
        # __slots__ = () means the null span *cannot* accumulate state.
        with pytest.raises(AttributeError):
            NULL_SPAN.leak = "nope"

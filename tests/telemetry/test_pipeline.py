"""Pipeline installation, the disabled fast path, event buffering."""

import pytest

from repro import telemetry
from repro.telemetry import (
    NULL_PIPELINE,
    NULL_SPAN,
    MetricsRegistry,
    TelemetryPipeline,
)


class TestModuleState:
    def test_disabled_by_default(self):
        assert telemetry.get_pipeline() is NULL_PIPELINE
        assert not telemetry.enabled()

    def test_configure_installs_and_returns_the_pipeline(self):
        pipeline = telemetry.configure()
        assert telemetry.get_pipeline() is pipeline
        assert telemetry.enabled()

    def test_disable_returns_the_previous_pipeline(self):
        pipeline = telemetry.configure()
        assert telemetry.disable() is pipeline
        assert telemetry.get_pipeline() is NULL_PIPELINE

    def test_set_pipeline_round_trip(self):
        mine = TelemetryPipeline()
        previous = telemetry.set_pipeline(mine)
        assert previous is NULL_PIPELINE
        assert telemetry.set_pipeline(previous) is mine

    def test_configure_accepts_a_shared_registry(self):
        registry = MetricsRegistry()
        pipeline = telemetry.configure(registry=registry)
        assert pipeline.registry is registry


class TestDisabledFastPath:
    def test_span_returns_the_shared_singleton(self):
        assert telemetry.span("a") is NULL_SPAN
        assert telemetry.span("b") is NULL_SPAN

    def test_metric_calls_record_nothing(self):
        telemetry.counter_inc("events", 5)
        telemetry.gauge_set("depth", 2)
        telemetry.histogram_observe("sizes", 10)
        assert NULL_PIPELINE.finished_spans() == []
        assert telemetry.current_span() is None

    def test_no_allocation_per_event(self):
        # The smoke form of the zero-allocation claim: a burst of
        # disabled-path events yields the same shared objects and no
        # registry, so nothing per-event can have been retained.
        spans = {id(telemetry.span(f"s{i}")) for i in range(100)}
        assert spans == {id(NULL_SPAN)}


class TestLivePipeline:
    def test_convenience_functions_hit_the_registry(self):
        pipeline = telemetry.configure()
        telemetry.counter_inc("events", 2)
        telemetry.gauge_set("depth", 7)
        telemetry.histogram_observe("sizes", 3, buckets=(1.0, 5.0))
        assert pipeline.registry.counter("events").value() == pytest.approx(2.0)
        assert pipeline.registry.gauge("depth").value() == pytest.approx(7.0)
        assert pipeline.registry.histogram("sizes").count() == 1

    def test_event_buffer_drops_oldest_beyond_max(self):
        pipeline = TelemetryPipeline(max_events=2)
        for name in ("a", "b", "c"):
            with pipeline.span(name):
                pass
        events = pipeline.finished_spans()
        assert [event["name"] for event in events] == ["b", "c"]
        assert pipeline.n_dropped == 1

    def test_rejects_nonpositive_max_events(self):
        with pytest.raises(ValueError, match="max_events"):
            TelemetryPipeline(max_events=0)

    def test_out_of_order_exit_keeps_stack_consistent(self):
        pipeline = TelemetryPipeline()
        outer = pipeline.span("outer")
        inner = pipeline.span("inner")
        outer.__enter__()
        inner.__enter__()
        # Abandoned-generator shape: the outer span exits first.
        pipeline._exit_span(outer)
        assert pipeline.current_span() is None
        with pipeline.span("after") as after:
            assert after.parent_id is None

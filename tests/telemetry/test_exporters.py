"""Prometheus rendering and the JSON-lines event log round trip."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    TelemetryPipeline,
    prometheus_name,
    read_events,
    render_prometheus,
    write_events,
    write_prometheus,
)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("dynamic.absorbed", help="records absorbed").inc(5)
    registry.gauge("dynamic.groups").set(3)
    histogram = registry.histogram("condense.group_size",
                                   buckets=(10.0, 20.0))
    for value in (5, 15, 15, 100):
        histogram.observe(value)
    return registry


class TestPrometheusNames:
    def test_sanitizes_and_prefixes(self):
        assert prometheus_name("dynamic.absorbed") == (
            "repro_dynamic_absorbed"
        )

    def test_counter_gets_total_suffix(self):
        assert prometheus_name("x.y", "counter") == "repro_x_y_total"

    def test_idempotent_prefix_and_suffix(self):
        assert prometheus_name("repro_done_total", "counter") == (
            "repro_done_total"
        )


class TestRenderPrometheus:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_type_lines_and_values(self, registry):
        text = render_prometheus(registry)
        assert "# HELP repro_dynamic_absorbed_total records absorbed" in text
        assert "# TYPE repro_dynamic_absorbed_total counter" in text
        assert "repro_dynamic_absorbed_total 5.0" in text
        assert "# TYPE repro_dynamic_groups gauge" in text
        assert "repro_dynamic_groups 3.0" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self, registry):
        text = render_prometheus(registry)
        assert 'repro_condense_group_size_bucket{le="10.0"} 1' in text
        assert 'repro_condense_group_size_bucket{le="20.0"} 3' in text
        assert 'repro_condense_group_size_bucket{le="+Inf"} 4' in text
        assert "repro_condense_group_size_sum 135.0" in text
        assert "repro_condense_group_size_count 4" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(labels={"path": 'a"b\\c'})
        text = render_prometheus(registry)
        assert 'path="a\\"b\\\\c"' in text

    def test_write_round_trip(self, registry, tmp_path):
        target = tmp_path / "metrics.prom"
        write_prometheus(target, registry)
        assert target.read_text() == render_prometheus(registry)


class TestEventLog:
    def test_round_trip_with_metrics_line(self, registry, tmp_path):
        pipeline = TelemetryPipeline(registry=registry)
        with pipeline.span("work"):
            pass
        target = tmp_path / "trace.jsonl"
        write_events(target, pipeline.finished_spans(), registry=registry)
        events = read_events(target)
        assert [event["type"] for event in events] == ["span", "metrics"]
        assert events[0]["name"] == "work"
        snapshot = events[1]["metrics"]
        assert snapshot["dynamic.absorbed"]["series"][""] == pytest.approx(5.0)

    def test_without_registry_no_metrics_line(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        write_events(target, [{"type": "span", "name": "a"}])
        events = read_events(target)
        assert len(events) == 1

    def test_bad_json_reports_path_and_line(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        target.write_text('{"type": "span"}\nnot json\n')
        with pytest.raises(ValueError, match="2"):
            read_events(target)

    def test_non_object_line_rejected(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        target.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="object"):
            read_events(target)

"""The hot paths actually report — and stay silent when disabled."""

import numpy as np
import pytest

from repro import telemetry
from repro.core.condensation import create_condensed_groups
from repro.core.dynamic import DynamicGroupMaintainer
from repro.core.generation import generate_anonymized_data
from repro.neighbors.brute import BruteForceIndex
from repro.neighbors.kdtree import KDTreeIndex
from repro.neighbors.lsh import LSHIndex
from repro.telemetry import NULL_PIPELINE, NULL_SPAN


def make_data(n, d=4, seed=0):
    return np.random.default_rng(seed).normal(size=(n, d))


class TestCondensationMetrics:
    def test_counters_and_group_size_histogram(self):
        pipeline = telemetry.configure()
        data = make_data(100)
        model = create_condensed_groups(data, 10, random_state=0)
        registry = pipeline.registry
        assert registry.counter("condense.records").value() == (
            pytest.approx(100.0)
        )
        assert registry.counter("condense.groups").value() == (
            model.n_groups
        )
        assert registry.histogram("condense.group_size").count() == (
            model.n_groups
        )
        names = [event["name"] for event in pipeline.finished_spans()]
        assert "condense.create_groups" in names
        assert "condense.absorb_loop" in names

    def test_absorb_loop_nests_under_create_groups(self):
        pipeline = telemetry.configure()
        create_condensed_groups(make_data(60), 10, random_state=0)
        events = {
            event["name"]: event for event in pipeline.finished_spans()
        }
        parent = events["condense.create_groups"]
        child = events["condense.absorb_loop"]
        assert child["parent_id"] == parent["span_id"]

    def test_seeded_runs_have_identical_size_histograms(self):
        # The deterministic-bucket claim: two identically seeded runs
        # report bit-identical size distributions.  (Latency histograms
        # are excluded — wall time is not seeded.)
        snapshots = []
        for _ in range(2):
            pipeline = telemetry.configure()
            create_condensed_groups(make_data(150), 10, random_state=7)
            telemetry.disable()
            snapshot = pipeline.registry.snapshot()
            snapshots.append({
                name: snapshot[name]
                for name in ("condense.group_size", "condense.groups",
                             "condense.records")
            })
        assert snapshots[0] == snapshots[1]


class TestDynamicMetrics:
    def test_ingest_span_wraps_split_spans(self):
        pipeline = telemetry.configure()
        maintainer = DynamicGroupMaintainer(
            5, initial_data=make_data(20, seed=1), random_state=0
        )
        maintainer.add_stream(make_data(80, seed=2))
        events = pipeline.finished_spans()
        ingests = [e for e in events if e["name"] == "dynamic.ingest"]
        splits = [e for e in events if e["name"] == "dynamic.split"]
        assert len(ingests) == 1
        assert splits, "80 records over k=5 groups must split"
        assert all(
            split["parent_id"] == ingests[0]["span_id"]
            for split in splits
        )
        registry = pipeline.registry
        assert registry.counter("dynamic.absorbed").value() == (
            pytest.approx(100.0)
        )
        assert registry.counter("dynamic.splits").value() == len(splits)
        assert registry.gauge("dynamic.groups").value() == (
            maintainer.n_groups
        )

    def test_removal_and_merge_counters(self):
        pipeline = telemetry.configure()
        base = make_data(40, seed=3)
        maintainer = DynamicGroupMaintainer(
            10, initial_data=base, random_state=0
        )
        for record in base[:15]:
            maintainer.remove(record)
        registry = pipeline.registry
        assert registry.counter("dynamic.removed").value() == (
            pytest.approx(15.0)
        )
        assert registry.counter("dynamic.merges").value() == (
            maintainer.n_merges
        )

    def test_snapshot_reports_group_sizes(self):
        pipeline = telemetry.configure()
        maintainer = DynamicGroupMaintainer(
            5, initial_data=make_data(30, seed=4), random_state=0
        )
        model = maintainer.to_model()
        histogram = pipeline.registry.histogram("dynamic.group_size")
        assert histogram.count() == model.n_groups


class TestGenerationMetrics:
    def test_latency_histograms_and_record_counter(self):
        pipeline = telemetry.configure()
        model = create_condensed_groups(make_data(60), 10, random_state=0)
        generate_anonymized_data(model, random_state=0)
        registry = pipeline.registry
        assert registry.counter("generation.records").value() == (
            pytest.approx(60.0)
        )
        assert registry.histogram("generation.eigen_seconds").count() == (
            model.n_groups
        )
        assert registry.histogram("generation.draw_seconds").count() == (
            model.n_groups
        )


class TestNeighborMetrics:
    def test_each_index_reports_queries_and_candidates(self):
        pipeline = telemetry.configure()
        points = make_data(64, seed=5)
        queries = make_data(8, seed=6)
        BruteForceIndex(points).query(queries, k=3)
        KDTreeIndex(points, leaf_size=8).query(queries, k=3)
        LSHIndex(points, random_state=0).query(queries, k=3)
        registry = pipeline.registry
        for algorithm in ("brute", "kdtree", "lsh"):
            assert registry.counter(
                f"neighbors.{algorithm}.queries"
            ).value() == pytest.approx(8.0), algorithm
            assert registry.histogram(
                f"neighbors.{algorithm}.candidates"
            ).count() == 8, algorithm

    def test_kdtree_candidates_bounded_by_index_size(self):
        pipeline = telemetry.configure()
        points = make_data(64, seed=5)
        KDTreeIndex(points, leaf_size=8).query(make_data(4, seed=7), k=2)
        histogram = pipeline.registry.histogram(
            "neighbors.kdtree.candidates"
        )
        counts = histogram.bucket_counts()
        # No query can scan more leaf points than the index holds, so
        # every observation is <= 64 (inside the le=100 bucket).
        bounds = histogram.buckets
        beyond = sum(
            count for bound, count in zip(bounds, counts)
            if bound > 100.0
        ) + counts[-1]
        assert beyond == 0


class TestDisabledPath:
    def test_hot_paths_run_on_the_null_pipeline(self):
        assert telemetry.get_pipeline() is NULL_PIPELINE
        model = create_condensed_groups(make_data(60), 10, random_state=0)
        generate_anonymized_data(model, random_state=0)
        maintainer = DynamicGroupMaintainer(
            5, initial_data=make_data(20, seed=1), random_state=0
        )
        maintainer.add_stream(make_data(20, seed=2))
        # Nothing was recorded anywhere: the null pipeline has no
        # registry and no events, and spans were the shared singleton.
        assert telemetry.get_pipeline() is NULL_PIPELINE
        assert NULL_PIPELINE.finished_spans() == []
        assert telemetry.span("probe") is NULL_SPAN

    def test_results_identical_enabled_vs_disabled(self):
        data = make_data(80, seed=8)
        disabled = create_condensed_groups(data, 10, random_state=3)
        telemetry.configure()
        enabled = create_condensed_groups(data, 10, random_state=3)
        telemetry.disable()
        assert disabled.n_groups == enabled.n_groups
        for mine, theirs in zip(disabled.groups, enabled.groups):
            np.testing.assert_allclose(mine.first_order,
                                       theirs.first_order)
            np.testing.assert_allclose(mine.second_order,
                                       theirs.second_order)
            assert mine.count == theirs.count

"""Smoke tests: every example script must run cleanly.

Examples are the first thing a new user executes; these tests keep them
from rotting.  Each script runs in a subprocess with the repository's
interpreter; the figure-reproduction CLI runs its cheapest
configuration.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = [
    "quickstart.py",
    "medical_records_release.py",
    "streaming_sensor_anonymization.py",
    "association_rules_on_condensed.py",
    "progressive_release.py",
    "mixed_type_release.py",
]


def run_script(*arguments) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, *arguments],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=EXAMPLES_DIR.parent,
    )


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    result = run_script(EXAMPLES_DIR / script)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_reproduce_figures_cli():
    result = run_script(
        EXAMPLES_DIR / "reproduce_figures.py", "ecoli", "--trials", "1"
    )
    assert result.returncode == 0, result.stderr
    assert "Figure 6" in result.stdout
    assert "covariance compatibility" in result.stdout


def test_reproduce_figures_rejects_unknown_dataset():
    result = run_script(
        EXAMPLES_DIR / "reproduce_figures.py", "adult"
    )
    assert result.returncode != 0

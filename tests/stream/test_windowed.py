"""Tests for repro.stream.windowed."""

import numpy as np
import pytest

from repro.stream.windowed import SlidingWindowCondenser


class TestSlidingWindowCondenser:
    def test_warmup_then_tracking(self, rng):
        condenser = SlidingWindowCondenser(k=5, window=50, random_state=0)
        for record in rng.normal(size=(9, 3)):
            condenser.push(record)
        assert not condenser.is_warm
        with pytest.raises(ValueError, match="warming up"):
            condenser.to_model()
        condenser.push(rng.normal(size=3))
        assert condenser.is_warm

    def test_window_count_capped(self, rng):
        condenser = SlidingWindowCondenser(
            k=5, window=50, random_state=0
        )
        condenser.push_stream(rng.normal(size=(200, 3)))
        assert condenser.n_seen == 50
        assert condenser.to_model().total_count == 50

    def test_band_maintained_under_churn(self, rng):
        condenser = SlidingWindowCondenser(
            k=5, window=40, random_state=0
        )
        for record in rng.normal(size=(300, 2)):
            condenser.push(record)
            if condenser.is_warm:
                sizes = condenser.to_model().group_sizes
                assert (sizes >= 5).all()
                assert (sizes < 10).all()

    def test_statistics_track_the_window(self, rng):
        # Stream shifts its mean mid-way; the window's statistics must
        # follow the new regime, not the average of both.
        condenser = SlidingWindowCondenser(
            k=10, window=100, random_state=0
        )
        condenser.push_stream(rng.normal(loc=0.0, size=(150, 2)))
        condenser.push_stream(rng.normal(loc=50.0, size=(150, 2)))
        model = condenser.to_model()
        window_mean = sum(
            group.first_order for group in model.groups
        ) / model.total_count
        assert np.all(window_mean > 40.0)

    def test_generate_matches_window_size(self, rng):
        condenser = SlidingWindowCondenser(
            k=5, window=60, random_state=0
        )
        condenser.push_stream(rng.normal(size=(120, 3)))
        assert condenser.generate().shape == (60, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowCondenser(k=0, window=10)
        with pytest.raises(ValueError, match="at least 2k"):
            SlidingWindowCondenser(k=10, window=15)
        condenser = SlidingWindowCondenser(k=2, window=10)
        with pytest.raises(ValueError, match="vector"):
            condenser.push(np.zeros((2, 2)))

    def test_repr(self, rng):
        condenser = SlidingWindowCondenser(k=2, window=10)
        assert "warm=False" in repr(condenser)

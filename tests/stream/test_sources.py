"""Tests for repro.stream.sources."""

import numpy as np
import pytest

from repro.stream.sources import (
    ArrayStream,
    DriftingGaussianStream,
    interleave_streams,
)


class TestArrayStream:
    def test_replay_in_order(self, gaussian_data):
        stream = ArrayStream(gaussian_data)
        emitted = np.vstack(list(stream))
        np.testing.assert_array_equal(emitted, gaussian_data)

    def test_take_batches(self, gaussian_data):
        stream = ArrayStream(gaussian_data)
        first = stream.take(50)
        second = stream.take(50)
        rest = stream.take(50)
        assert first.shape[0] == 50
        assert second.shape[0] == 50
        assert rest.shape[0] == 20
        assert stream.n_remaining == 0

    def test_take_beyond_end_returns_partial(self, gaussian_data):
        stream = ArrayStream(gaussian_data)
        batch = stream.take(1000)
        assert batch.shape[0] == 120
        assert stream.take(5).shape[0] == 0

    def test_shuffle_reorders(self, gaussian_data):
        stream = ArrayStream(gaussian_data, shuffle=True, random_state=0)
        emitted = stream.take(120)
        assert not np.array_equal(emitted, gaussian_data)
        assert sorted(map(tuple, emitted)) == sorted(
            map(tuple, gaussian_data)
        )

    def test_negative_take(self, gaussian_data):
        with pytest.raises(ValueError):
            ArrayStream(gaussian_data).take(-1)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            ArrayStream(np.zeros(5))

    def test_n_features(self, gaussian_data):
        assert ArrayStream(gaussian_data).n_features == 4


class TestDriftingGaussianStream:
    def test_no_drift_is_stationary(self):
        stream = DriftingGaussianStream(
            mean=np.zeros(2), covariance=np.eye(2), random_state=0
        )
        batch = stream.take(5000)
        np.testing.assert_allclose(batch.mean(axis=0), 0.0, atol=0.1)

    def test_drift_moves_mean(self):
        stream = DriftingGaussianStream(
            mean=np.zeros(2), covariance=0.01 * np.eye(2),
            drift_per_step=0.01, random_state=0,
        )
        early = stream.take(100)
        for __ in range(10):
            stream.take(100)
        late = stream.take(100)
        assert late[:, 0].mean() > early[:, 0].mean() + 5.0

    def test_drift_direction_normalized(self):
        stream = DriftingGaussianStream(
            mean=np.zeros(2), covariance=0.0001 * np.eye(2),
            drift_per_step=1.0, drift_direction=np.array([3.0, 4.0]),
            random_state=0,
        )
        batch = stream.take(101)
        displacement = batch[100] - batch[0]
        direction = displacement / np.linalg.norm(displacement)
        np.testing.assert_allclose(direction, [0.6, 0.8], atol=0.01)

    def test_covariance_shape_checked(self):
        with pytest.raises(ValueError):
            DriftingGaussianStream(np.zeros(3), np.eye(2))

    def test_zero_drift_direction_rejected(self):
        with pytest.raises(ValueError, match="non-zero"):
            DriftingGaussianStream(
                np.zeros(2), np.eye(2), drift_direction=np.zeros(2)
            )

    def test_iteration_yields_vectors(self):
        stream = DriftingGaussianStream(
            mean=np.zeros(3), covariance=np.eye(3), random_state=0
        )
        iterator = iter(stream)
        record = next(iterator)
        assert record.shape == (3,)


class TestInterleaveStreams:
    def test_merges_counts(self, gaussian_data):
        a = ArrayStream(gaussian_data[:60])
        b = ArrayStream(gaussian_data[60:])
        merged = interleave_streams([a, b], [30, 40], random_state=0)
        assert merged.shape == (70, 4)

    def test_randomized_order(self, gaussian_data):
        a = ArrayStream(gaussian_data[:60])
        b = ArrayStream(gaussian_data[60:])
        merged = interleave_streams([a, b], [60, 60], random_state=0)
        stacked = np.vstack([gaussian_data[:60], gaussian_data[60:]])
        assert not np.array_equal(merged, stacked)

    def test_misaligned_counts(self, gaussian_data):
        with pytest.raises(ValueError, match="align"):
            interleave_streams([ArrayStream(gaussian_data)], [1, 2])

    def test_empty_streams_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            interleave_streams([], [])

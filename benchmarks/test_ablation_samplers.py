"""Ablation A2 — generation sampler.

§2.1 assumes the data within each group is *uniformly* distributed
along each eigenvector.  This bench swaps that assumption for a
Gaussian with the same per-axis variances and measures what changes:
covariance compatibility, downstream accuracy, and the support width of
the generated data (uniform generation is bounded, Gaussian is not —
which matters for attribute-range fidelity on bounded data like
Ionosphere's [-1, 1] pulses).
"""

import numpy as np

from repro.core.condenser import ClasswiseCondenser, StaticCondenser
from repro.datasets import load_ionosphere
from repro.evaluation.reporting import format_table
from repro.metrics import covariance_compatibility
from repro.neighbors import KNeighborsClassifier
from repro.preprocessing import StandardScaler, train_test_split

SAMPLERS = ("uniform", "gaussian")
K = 15


def run_sampler_ablation():
    dataset = load_ionosphere()
    train_x, test_x, train_y, test_y = train_test_split(
        dataset.data, dataset.target, test_size=0.25,
        stratify=dataset.target, random_state=0,
    )
    scaler = StandardScaler().fit(train_x)
    train_x_s = scaler.transform(train_x)
    test_x_s = scaler.transform(test_x)
    rows = []
    results = {}
    for sampler in SAMPLERS:
        mus, accuracies, extremes = [], [], []
        for seed in range(3):
            anonymized = StaticCondenser(
                K, sampler=sampler, random_state=seed
            ).fit_generate(train_x)  # raw scale for range fidelity
            mus.append(covariance_compatibility(train_x, anonymized))
            extremes.append(float(np.abs(anonymized).max()))
            condenser = ClasswiseCondenser(
                K, sampler=sampler, random_state=seed
            )
            labelled, labels = condenser.fit_generate(train_x_s, train_y)
            knn = KNeighborsClassifier(n_neighbors=1).fit(
                labelled, labels
            )
            accuracies.append(knn.score(test_x_s, test_y))
        results[sampler] = {
            "mu": float(np.mean(mus)),
            "accuracy": float(np.mean(accuracies)),
            "max_abs_value": float(np.max(extremes)),
        }
        rows.append([
            sampler,
            f"{results[sampler]['mu']:.4f}",
            f"{results[sampler]['accuracy']:.4f}",
            f"{results[sampler]['max_abs_value']:.4f}",
        ])
    print()
    print(format_table(
        ["sampler", "mu", "1-NN accuracy", "max |value| (true max 1.0)"],
        rows,
        title=f"A2: generation sampler ablation (ionosphere twin, k={K})",
    ))
    return results


def test_ablation_samplers(benchmark):
    results = benchmark.pedantic(
        run_sampler_ablation, rounds=1, iterations=1
    )
    for sampler in SAMPLERS:
        assert results[sampler]["mu"] > 0.9, sampler
        assert results[sampler]["accuracy"] > 0.7, sampler
    # Both samplers match the second moments, so mu should be close...
    assert abs(
        results["uniform"]["mu"] - results["gaussian"]["mu"]
    ) < 0.05
    # ...but the Gaussian's unbounded tails produce more extreme values
    # than the bounded uniform (whose support is capped at half the
    # sqrt(12 lambda) range around each group centroid).
    assert (
        results["gaussian"]["max_abs_value"]
        > results["uniform"]["max_abs_value"]
    )

"""Figure 8 — Abalone: (a) within-one-year age-prediction accuracy,
(b) covariance compatibility, versus average condensed-group size.

The paper's regression protocol: a nearest-neighbour predictor, scored
by the fraction of ages predicted within one year.  Ring counts are
treated as classes for per-value condensation (§2.3), so anonymized
records keep exact ages.  Abalone is the paper's largest data set
(4177 records), where modest group sizes genuinely represent small
localities — both condensation variants should track the baseline.
"""

from benchmarks.conftest import assert_paper_shape, run_and_report
from repro.datasets import load_abalone


def test_fig8_abalone(benchmark):
    dataset = load_abalone()
    result = run_and_report(dataset, benchmark, n_trials=1, tol=1.0)
    assert_paper_shape(result)

"""Ablation A16 — the claim-5 divergence, pinned down.

The paper's §4 claims the dynamic method's covariance compatibility μ
"drops to 0.65–0.75" for very small group sizes on two data sets,
recovering above 0.95 by size ≈ 20.  EXPERIMENTS.md records this as
our one divergence: we measure dynamic μ ≥ 0.97 even at k=2.  This
bench is the divergence's regression guard and its best-effort
reproduction attempt:

1. *The measured facts* — dynamic μ across three twins at very small
   k, asserting the floor that contradicts the paper's figure.  If a
   future engine change makes μ collapse here, this bench fails and
   the EXPERIMENTS.md note must be rewritten (to "reproduced").
2. *The leading hypothesis, falsified* — could unstandardized
   attribute scales have caused the paper's effect?  We condense with
   one attribute blown up 100× (distance-based grouping then sees
   almost nothing but that attribute, forming slab-shaped groups) and
   measure μ back in the original space, where grouping damage would
   show.  Measured: μ still ≥ 0.99.  Because condensation preserves
   global first/second moments by construction and μ is dominated by
   between-group structure, even degenerate grouping cannot produce
   the paper's 0.65 — whatever caused it, it was not (only) attribute
   scaling, and not the Fig. 3 split either (bench A5 shows split
   error shrinking with group size while global μ stays ≥ 0.999).
3. *What does vary with k* — the spread of dynamic μ across
   k ∈ {2, 3, 5, 20} stays within 0.02: there is no special small-k
   regime at all in this implementation, which is the divergence in
   its sharpest form.
"""

import numpy as np

from repro.core.generation import generate_anonymized_data
from repro.datasets import load_ecoli, load_ionosphere, load_pima
from repro.evaluation.protocol import condense_dataset, measure_compatibility
from repro.evaluation.reporting import format_table
from repro.linalg.rng import check_random_state
from repro.metrics import covariance_compatibility

SMALL_SIZES = (2, 3, 5)
MODEST_SIZE = 20
SEED = 20140331

#: The floor the divergence note in EXPERIMENTS.md quotes.  The
#: paper's figure would put values near 0.65-0.75 here.
MEASURED_FLOOR = 0.95


def small_k_compatibility(data, scale_attribute=False):
    """Dynamic μ at very small group sizes, plus the modest-size anchor.

    With ``scale_attribute=True`` condensation runs with the first
    attribute blown up 100× — distance-based grouping then sees mostly
    that attribute, forming slab-shaped groups — but μ is measured
    back in the original space, where the grouping damage would show.
    This probes the unstandardized-scales hypothesis for the paper's
    small-k collapse.
    """
    data = np.asarray(data, dtype=float)
    row = {}
    if not scale_attribute:
        for k in SMALL_SIZES + (MODEST_SIZE,):
            mu, __ = measure_compatibility(
                data, k, mode="dynamic", random_state=SEED
            )
            row[k] = mu
        return row
    scaled = data.copy()
    scaled[:, 0] *= 100.0
    for k in SMALL_SIZES + (MODEST_SIZE,):
        rng = check_random_state(SEED)
        model = condense_dataset(scaled, k, "dynamic", random_state=rng)
        anonymized = generate_anonymized_data(model, random_state=rng)
        anonymized = anonymized.copy()
        anonymized[:, 0] /= 100.0
        row[k] = covariance_compatibility(data, anonymized)
    return row


def run_claim5_probe():
    datasets = {
        "ionosphere": load_ionosphere().data,
        "ecoli": load_ecoli().data,
        "pima": load_pima().data,
    }
    standardized, rescaled = {}, {}
    for name, data in datasets.items():
        standardized[name] = small_k_compatibility(data)
        rescaled[name] = small_k_compatibility(data, scale_attribute=True)

    headers = ["dataset"] + [f"k={k}" for k in SMALL_SIZES] + [
        f"k={MODEST_SIZE}"
    ]
    for title, table in (
        ("A16a: dynamic mu at small k (as-released scales)", standardized),
        ("A16b: condensed with attribute 0 scaled 100x, mu measured "
         "in original space", rescaled),
    ):
        rows = [
            [name] + [f"{row[k]:.4f}" for k in SMALL_SIZES + (MODEST_SIZE,)]
            for name, row in table.items()
        ]
        print()
        print(format_table(headers, rows, title=title))
    return standardized, rescaled


def test_claim5_divergence(benchmark):
    standardized, rescaled = benchmark.pedantic(
        run_claim5_probe, rounds=1, iterations=1
    )
    for name, row in standardized.items():
        # 1. The divergence itself: nowhere near the paper's 0.65-0.75
        # band.  A failure here means the divergence note is stale.
        assert min(row.values()) >= MEASURED_FLOOR, (name, row)
        # 3. No small-k regime exists: μ varies less than 0.02 across
        # the whole probe, where the paper's figure shows a ~0.3 dip.
        assert max(row.values()) - min(row.values()) < 0.02, (name, row)
    for name, row in rescaled.items():
        # 2. Even adversarial attribute scaling cannot manufacture the
        # collapse — moment preservation is scale-robust.
        assert min(row.values()) >= MEASURED_FLOOR, (name, row)

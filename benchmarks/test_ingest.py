"""Ingest throughput — vectorized batch blocks versus sequential adds.

Times ``DynamicGroupMaintainer.add_stream`` (record-at-a-time routing)
against ``ingest_many`` (one distance matrix per block, batched
absorbs) on the same stream at a *fixed utility contract*: both paths
must conserve moment mass exactly and keep every group inside the
``[k, 2k)`` privacy band, so the comparison is between runs producing
equivalent models.  Records-per-second series for the 10k and 100k
streams are dumped to ``BENCH_ingest.json`` at the repo root for CI
artifact upload.

The ratchet: the batch path must ingest the 100k stream at least
**5x** faster than the sequential path (CI floor; local runs land far
higher).  A regression in the blocked distance computation, the
re-dispatch loop, or the centroid index shows up here before it shows
up for users.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.dynamic import DynamicGroupMaintainer

RESULTS_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_ingest.json"
)

K = 50
N_DIMENSIONS = 8
BATCH_SIZE = 4096
SCALES = (10_000, 100_000)
MIN_SPEEDUP_AT_100K = 5.0


def make_stream(n):
    rng = np.random.default_rng(20140331)
    base = rng.normal(size=(8 * K, N_DIMENSIONS))
    stream = rng.normal(size=(n, N_DIMENSIONS))
    return base, stream


def check_utility(base, stream, maintainer):
    """The fixed utility contract both ingest paths must meet."""
    sizes = maintainer.group_sizes()
    assert (sizes >= K).all() and (sizes < 2 * K).all()
    everything = np.vstack([base, stream])
    total_first = sum(group.first_order for group in maintainer._groups)
    scale = np.abs(everything).sum() + 1.0
    assert np.abs(
        total_first - everything.sum(axis=0)
    ).max() <= 1e-9 * scale


def timed_ingest(base, stream, batch_size, rounds):
    """Best-of-``rounds`` ingest wall-clock and the last maintainer."""
    best = float("inf")
    maintainer = None
    for __ in range(rounds):
        maintainer = DynamicGroupMaintainer(
            K, initial_data=base, random_state=0
        )
        start = time.perf_counter()
        if batch_size == 1:
            maintainer.add_stream(stream)
        else:
            maintainer.ingest_many(stream, batch_size=batch_size)
        best = min(best, time.perf_counter() - start)
    return best, maintainer


def test_batch_vs_sequential_ingest_throughput():
    scales = []
    for n in SCALES:
        base, stream = make_stream(n)
        # The sequential path is the expensive side (it is the thing
        # being beaten); one round at the large scale keeps the bench
        # runnable while the batch side still takes best-of-2.
        sequential_rounds = 2 if n <= 10_000 else 1
        sequential_seconds, sequential = timed_ingest(
            base, stream, 1, sequential_rounds
        )
        check_utility(base, stream, sequential)
        batch_seconds, batched = timed_ingest(
            base, stream, BATCH_SIZE, 2
        )
        check_utility(base, stream, batched)
        speedup = sequential_seconds / batch_seconds
        scales.append({
            "n_records": n,
            "sequential": {
                "seconds": sequential_seconds,
                "records_per_second": n / sequential_seconds,
                "n_groups": sequential.n_groups,
            },
            "batch": {
                "seconds": batch_seconds,
                "records_per_second": n / batch_seconds,
                "n_groups": batched.n_groups,
            },
            "speedup": speedup,
        })
        if n == 100_000:
            assert speedup >= MIN_SPEEDUP_AT_100K, (
                f"batch ingest regressed: {speedup:.1f}x < "
                f"{MIN_SPEEDUP_AT_100K}x at 100k records"
            )

    RESULTS_PATH.write_text(json.dumps({
        "schema_version": 1,
        "k": K,
        "n_dimensions": N_DIMENSIONS,
        "batch_size": BATCH_SIZE,
        "min_speedup_at_100k": MIN_SPEEDUP_AT_100K,
        "scales": scales,
    }, indent=2, sort_keys=True) + "\n")
    print("\nwrote " + RESULTS_PATH.name + ": " + ", ".join(
        f"{entry['n_records']} records "
        f"seq {entry['sequential']['records_per_second']:.0f}/s "
        f"batch {entry['batch']['records_per_second']:.0f}/s "
        f"({entry['speedup']:.1f}x)"
        for entry in scales
    ))

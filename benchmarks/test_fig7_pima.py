"""Figure 7 — Pima Indian: (a) classifier accuracy, (b) covariance
compatibility, versus average condensed-group size.

The paper singles Pima out twice: it contains classification anomalies
(our twin injects ~4% extreme values accordingly), and the *dynamic*
condensation method sometimes beats the original data here because the
splitting process removes those anomalies.  The shape check therefore
also verifies that condensed accuracy reaches the baseline somewhere.
"""

from benchmarks.conftest import assert_paper_shape, run_and_report
from repro.datasets import load_pima


def test_fig7_pima(benchmark):
    dataset = load_pima()
    result = run_and_report(dataset, benchmark, n_trials=2)
    assert_paper_shape(result)
    best_condensed = max(
        result.series("accuracy_static").max(),
        result.series("accuracy_dynamic").max(),
    )
    baseline = result.series("accuracy_original").mean()
    assert best_condensed >= baseline - 0.05

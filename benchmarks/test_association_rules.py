"""Ablation A7 — association rules survive condensation.

The paper's introduction points at association-rule mining as a problem
the perturbation approach had to re-solve with specialized algorithms
([9], [16] there), while condensation feeds standard algorithms.  This
bench runs textbook Apriori on the anonymized release and measures how
much of the original rule set survives, as the privacy level k grows.
"""


from repro.core.condenser import StaticCondenser
from repro.datasets import load_pima
from repro.evaluation.reporting import format_table
from repro.mining import (
    EqualFrequencyDiscretizer,
    association_rules,
    rule_overlap,
    transactions_from_bins,
)

GROUP_SIZES = (5, 15, 30, 60)
MIN_SUPPORT = 0.08
MIN_CONFIDENCE = 0.5


def mine_rules(data, feature_names, discretizer):
    bins = discretizer.transform(data)
    transactions = transactions_from_bins(bins, feature_names)
    return association_rules(
        transactions,
        min_support=MIN_SUPPORT,
        min_confidence=MIN_CONFIDENCE,
        max_length=3,
    )


def run_rule_preservation():
    dataset = load_pima()
    data = dataset.data
    names = dataset.feature_names
    discretizer = EqualFrequencyDiscretizer(n_bins=3).fit(data)
    original_rules = mine_rules(data, names, discretizer)
    rows = []
    overlaps = {}
    for k in GROUP_SIZES:
        anonymized = StaticCondenser(k, random_state=0).fit_generate(data)
        release_rules = mine_rules(anonymized, names, discretizer)
        overlap = rule_overlap(original_rules, release_rules)
        overlaps[k] = overlap
        rows.append([
            str(k), str(len(release_rules)), f"{overlap:.4f}",
        ])
    print()
    print(format_table(
        ["k", "rules mined from release", "overlap with original"],
        rows,
        title=(
            "A7: Apriori rule preservation on pima twin "
            f"({len(original_rules)} original rules, "
            f"support>={MIN_SUPPORT}, confidence>={MIN_CONFIDENCE})"
        ),
    ))
    return len(original_rules), overlaps


def test_association_rules(benchmark):
    n_original, overlaps = benchmark.pedantic(
        run_rule_preservation, rounds=1, iterations=1
    )
    # The original data must produce a non-trivial rule set for the
    # comparison to mean anything.
    assert n_original >= 50
    # Rule preservation is substantial at low k and degrades as the
    # privacy level rises - the privacy-utility trade-off showing up in
    # itemset space rather than accuracy space.
    for k, overlap in overlaps.items():
        assert overlap > 0.35, (k, overlap)
    assert overlaps[GROUP_SIZES[0]] > overlaps[GROUP_SIZES[-1]]

"""Ablation A4 — does k-indistinguishability hold empirically?

The paper's privacy argument is structural: only group statistics leave
the condensation step, so a record hides among its group's k members.
This bench attacks the *generated* data with nearest-neighbour record
linkage and reports, per k: the group-linkage rate, the expected
record-level disclosure probability, and the 1/k bound it must respect.
"""

import numpy as np

from repro.core.condensation import create_condensed_groups
from repro.core.generation import generate_anonymized_data
from repro.datasets import load_pima
from repro.evaluation.reporting import format_table
from repro.preprocessing import StandardScaler
from repro.privacy import (
    linkage_attack,
    membership_inference_attack,
    privacy_report,
)

GROUP_SIZES = (2, 5, 10, 20, 35, 50)


def run_privacy_attack():
    dataset = load_pima()
    data = StandardScaler().fit_transform(dataset.data)
    # Membership split: condense only the first half; the second half
    # plays the non-member population for the inference attack.
    members, non_members = data[:384], data[384:]
    rows = []
    results = {}
    for k in GROUP_SIZES:
        model = create_condensed_groups(data, k, random_state=0)
        report = privacy_report(model)
        attack = linkage_attack(data, model, random_state=1)
        member_model = create_condensed_groups(
            members, k, random_state=0
        )
        release = generate_anonymized_data(member_model, random_state=1)
        membership = membership_inference_attack(
            members, non_members, release
        )
        results[k] = (report, attack, membership)
        rows.append([
            str(k),
            f"{attack.group_linkage_rate:.4f}",
            f"{attack.expected_record_disclosure:.4f}",
            f"{1.0 / k:.4f}",
            f"{report.expected_disclosure:.4f}",
            f"{membership.auc:.4f}",
        ])
    print()
    print(format_table(
        ["k", "group linkage rate", "record disclosure",
         "1/k bound", "structural disclosure", "membership AUC"],
        rows,
        title="A4: linkage + membership attacks vs k (pima twin)",
    ))
    return results


def test_privacy_attack(benchmark):
    results = benchmark.pedantic(run_privacy_attack, rounds=1,
                                 iterations=1)
    disclosures = []
    membership_aucs = []
    for k, (report, attack, membership) in results.items():
        # The structural guarantee: record disclosure never beats 1/k.
        assert attack.expected_record_disclosure <= 1.0 / k + 1e-12, k
        assert report.satisfied, k
        disclosures.append(attack.expected_record_disclosure)
        membership_aucs.append(membership.auc)
    # Larger k must yield monotonically safer releases (up to noise).
    assert disclosures[0] > disclosures[-1]
    # Membership inference weakens as groups grow.
    assert membership_aucs[0] > membership_aucs[-1]
    # And every attack must beat blind guessing, else the bench is
    # measuring nothing.
    first_attack = next(iter(results.values()))[1]
    assert first_attack.group_linkage_rate > first_attack.baseline_disclosure

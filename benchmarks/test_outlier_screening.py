"""Ablation A12 — outlier screening before condensation.

The paper's §2.2: outliers are inherently hard to mask, and the twin of
Pima carries ~4% injected anomalies for exactly this reason.  This
bench condenses the Pima twin with and without k-NN-distance outlier
screening and reports what screening buys: worst-group extent,
covariance compatibility of the release, and downstream accuracy.
"""

import numpy as np

from repro.core.condensation import create_condensed_groups
from repro.core.condenser import ClasswiseCondenser
from repro.core.generation import generate_anonymized_data
from repro.datasets import load_pima
from repro.evaluation.reporting import format_table
from repro.metrics import covariance_compatibility
from repro.neighbors import KNeighborsClassifier
from repro.preprocessing import StandardScaler, train_test_split
from repro.quality.diagnostics import group_diagnostics
from repro.quality.outliers import screen_outliers

K = 20
CONTAMINATION = 0.05


def run_outlier_screening():
    dataset = load_pima()
    train_x, test_x, train_y, test_y = train_test_split(
        dataset.data, dataset.target, test_size=0.25,
        stratify=dataset.target, random_state=0,
    )
    scaler = StandardScaler().fit(train_x)
    train_x = scaler.transform(train_x)
    test_x = scaler.transform(test_x)

    inliers, flagged = screen_outliers(
        train_x, contamination=CONTAMINATION
    )
    conditions = {
        "unscreened": (train_x, train_y),
        "screened": (train_x[inliers], train_y[inliers]),
    }
    rows = []
    results = {}
    for name, (data, labels) in conditions.items():
        model = create_condensed_groups(data, K, random_state=0)
        release = generate_anonymized_data(model, random_state=0)
        worst_extent = max(
            entry.extent for entry in group_diagnostics(model)
        )
        mu = covariance_compatibility(train_x, release)
        condenser = ClasswiseCondenser(
            K, small_class_policy="single_group", random_state=0
        )
        anonymized, anonymized_labels = condenser.fit_generate(
            data, labels
        )
        accuracy = KNeighborsClassifier(n_neighbors=1).fit(
            anonymized, anonymized_labels
        ).score(test_x, test_y)
        results[name] = {
            "worst_extent": worst_extent,
            "mu": mu,
            "accuracy": accuracy,
        }
        rows.append([
            name, f"{worst_extent:.2f}", f"{mu:.4f}", f"{accuracy:.4f}",
        ])
    print()
    print(format_table(
        ["condition", "worst group extent", "mu vs full train",
         "1-NN accuracy"],
        rows,
        title=(
            f"A12: outlier screening before condensation (pima twin, "
            f"k={K}, contamination={CONTAMINATION}, "
            f"{flagged.shape[0]} records screened)"
        ),
    ))
    return results


def test_outlier_screening(benchmark):
    results = benchmark.pedantic(
        run_outlier_screening, rounds=1, iterations=1
    )
    # Screening must shrink the worst group's spatial extent — the
    # §2.2 failure mode the anomalies create.
    assert (
        results["screened"]["worst_extent"]
        < results["unscreened"]["worst_extent"]
    )
    # And it must not cost meaningful downstream accuracy.
    assert (
        results["screened"]["accuracy"]
        >= results["unscreened"]["accuracy"] - 0.05
    )

"""Ablation A5 — fidelity of the statistics split (Fig. 3).

Two questions the paper leaves qualitative:

1. *Local fidelity* — when a group of 2k real records is split via the
   uniform assumption, how far are the derived child statistics from the
   statistics of the true half-groups?  Measured as the relative
   centroid error against the true halves (split along the same axis).
2. *Compounding* — streaming ever more points forces ever more splits;
   does the global covariance compatibility of the generated data decay
   with stream length?
"""

import numpy as np

from repro.core.dynamic import DynamicGroupMaintainer, split_group_statistics
from repro.core.generation import generate_anonymized_data
from repro.core.statistics import GroupStatistics
from repro.datasets.generators import random_covariance
from repro.evaluation.reporting import format_table
from repro.metrics import covariance_compatibility

SPLIT_SIZES = (4, 10, 20, 50, 100)
STREAM_LENGTHS = (200, 1000, 4000)


def split_fidelity(k: int, n_trials: int = 20, d: int = 4) -> float:
    """Mean relative centroid error of the split against true halves."""
    errors = []
    for seed in range(n_trials):
        rng = np.random.default_rng(seed)
        covariance = random_covariance(d, rng)
        records = rng.multivariate_normal(
            np.zeros(d), covariance, size=2 * k, method="cholesky"
        )
        group = GroupStatistics.from_records(records)
        first, second = split_group_statistics(group, k=k)
        # True halves along the same split axis.
        __, eigenvectors = group.eigen_system()
        projections = records @ eigenvectors[:, 0]
        order = np.argsort(projections)
        low = GroupStatistics.from_records(records[order[:k]])
        high = GroupStatistics.from_records(records[order[k:]])
        # Match children to halves by projection sign.
        if (first.centroid @ eigenvectors[:, 0]) > (
            second.centroid @ eigenvectors[:, 0]
        ):
            first, second = second, first
        scale = float(np.linalg.norm(high.centroid - low.centroid)) or 1.0
        error = (
            np.linalg.norm(first.centroid - low.centroid)
            + np.linalg.norm(second.centroid - high.centroid)
        ) / (2.0 * scale)
        errors.append(error)
    return float(np.mean(errors))


def stream_compounding(length: int, k: int = 10) -> tuple[float, int]:
    """μ of generated vs streamed data after `length` arrivals."""
    rng = np.random.default_rng(0)
    covariance = random_covariance(5, rng)
    data = rng.multivariate_normal(
        np.ones(5), covariance, size=length + 5 * k, method="cholesky"
    )
    maintainer = DynamicGroupMaintainer(
        k, initial_data=data[: 5 * k], random_state=0
    )
    maintainer.add_stream(data[5 * k:])
    model = maintainer.to_model()
    anonymized = generate_anonymized_data(model, random_state=0)
    return covariance_compatibility(data, anonymized), maintainer.n_splits


def run_dynamic_split_bench():
    fidelity_rows = []
    fidelities = {}
    for k in SPLIT_SIZES:
        error = split_fidelity(k)
        fidelities[k] = error
        fidelity_rows.append([str(2 * k), f"{error:.4f}"])
    print()
    print(format_table(
        ["group size (2k)", "relative centroid error"],
        fidelity_rows,
        title="A5a: split fidelity vs group size",
    ))
    compounding_rows = []
    compounding = {}
    for length in STREAM_LENGTHS:
        mu, n_splits = stream_compounding(length)
        compounding[length] = (mu, n_splits)
        compounding_rows.append(
            [str(length), str(n_splits), f"{mu:.4f}"]
        )
    print()
    print(format_table(
        ["stream length", "splits", "mu"],
        compounding_rows,
        title="A5b: split compounding over stream length (k=10)",
    ))
    return fidelities, compounding


def test_dynamic_split(benchmark):
    fidelities, compounding = benchmark.pedantic(
        run_dynamic_split_bench, rounds=1, iterations=1
    )
    # The paper's warning: the uniform assumption is least robust for
    # very small groups.  Fidelity should improve (error shrink) from
    # the smallest to the largest group size.
    assert fidelities[SPLIT_SIZES[0]] > fidelities[SPLIT_SIZES[-1]]
    # Split errors must not destroy global covariance structure even
    # after thousands of stream arrivals.
    for length, (mu, n_splits) in compounding.items():
        assert mu > 0.9, (length, mu)
    longest = compounding[STREAM_LENGTHS[-1]]
    assert longest[1] > 50  # the long stream really did split a lot

"""Ablation A9 — coarsening vs fresh condensation.

Coarsening merges an existing model's groups to reach a higher privacy
level *without* the raw data.  The question: how much utility does that
indirection cost compared to condensing the original data directly at
the target level?  If the gap is small, a publisher can keep one
fine-grained model and mint arbitrarily private releases from it.
"""

import numpy as np

from repro.core.coarsen import coarsen_model
from repro.core.condensation import create_condensed_groups
from repro.core.generation import generate_anonymized_data
from repro.datasets import load_pima
from repro.evaluation.reporting import format_table
from repro.metrics import covariance_compatibility
from repro.preprocessing import StandardScaler

BASE_K = 5
TARGET_LEVELS = (10, 20, 40, 80)


def run_coarsening_comparison():
    dataset = load_pima()
    data = StandardScaler().fit_transform(dataset.data)
    base = create_condensed_groups(data, BASE_K, random_state=0)
    rows = []
    results = {}
    for target in TARGET_LEVELS:
        coarse = coarsen_model(base, target)
        coarse_release = generate_anonymized_data(coarse, random_state=0)
        mu_coarse = covariance_compatibility(data, coarse_release)
        fresh = create_condensed_groups(data, target, random_state=0)
        fresh_release = generate_anonymized_data(fresh, random_state=0)
        mu_fresh = covariance_compatibility(data, fresh_release)
        results[target] = {
            "mu_coarsened": mu_coarse,
            "mu_fresh": mu_fresh,
            "groups_coarsened": coarse.n_groups,
            "groups_fresh": fresh.n_groups,
        }
        rows.append([
            str(target),
            f"{coarse.n_groups}", f"{fresh.n_groups}",
            f"{mu_coarse:.4f}", f"{mu_fresh:.4f}",
        ])
    print()
    print(format_table(
        ["target k", "groups (coarsened)", "groups (fresh)",
         "mu (coarsened)", "mu (fresh)"],
        rows,
        title=(
            f"A9: coarsening a k={BASE_K} model vs condensing fresh "
            "(pima twin, standardized)"
        ),
    ))
    return results


def test_coarsening(benchmark):
    results = benchmark.pedantic(
        run_coarsening_comparison, rounds=1, iterations=1
    )
    for target, metrics in results.items():
        # Coarsened releases stay statistically faithful...
        assert metrics["mu_coarsened"] > 0.9, target
        # ...and within a modest margin of a fresh condensation at the
        # same level, despite never touching the raw data again.
        assert (
            metrics["mu_coarsened"] >= metrics["mu_fresh"] - 0.05
        ), target
        # Privacy level is genuinely met.
        assert metrics["groups_coarsened"] >= 1

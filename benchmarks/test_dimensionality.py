"""Ablation A8 — behaviour across dimensionality.

The paper's §1 argues that perturbation cannot be extended to
multi-variate reconstruction because the data needed to estimate a
d-dimensional joint distribution grows exponentially in d, while
condensation only ever estimates d×d second-order statistics per local
group.  This bench sweeps the dimensionality at fixed n and k and
reports covariance compatibility and PCA subspace alignment of the
release — both should degrade gracefully, not collapse.
"""

import numpy as np

from repro.core.condenser import StaticCondenser
from repro.datasets.generators import random_covariance
from repro.evaluation.reporting import format_table
from repro.metrics import covariance_compatibility
from repro.mining.pca import PCA, subspace_alignment

DIMENSIONS = (2, 5, 10, 20, 40)
N_RECORDS = 800
K = 20


def run_dimensionality_sweep():
    rows = []
    results = {}
    for d in DIMENSIONS:
        rng = np.random.default_rng(d)
        covariance = random_covariance(
            d, rng, effective_rank=max(1, d // 2)
        )
        data = rng.multivariate_normal(
            np.zeros(d), covariance, size=N_RECORDS, method="cholesky"
        )
        anonymized = StaticCondenser(K, random_state=0).fit_generate(data)
        mu = covariance_compatibility(data, anonymized)
        n_axes = max(1, d // 4)
        alignment = subspace_alignment(
            PCA().fit(data), PCA().fit(anonymized), n_axes
        )
        results[d] = {"mu": mu, "alignment": alignment}
        rows.append([
            str(d), f"{mu:.4f}", f"{alignment:.4f}", str(n_axes),
        ])
    print()
    print(format_table(
        ["d", "mu", "PCA subspace alignment", "axes compared"],
        rows,
        title=(
            f"A8: dimensionality sweep (n={N_RECORDS}, k={K}, "
            "correlated Gaussian)"
        ),
    ))
    return results


def test_dimensionality(benchmark):
    results = benchmark.pedantic(
        run_dimensionality_sweep, rounds=1, iterations=1
    )
    for d, metrics in results.items():
        # No exponential collapse: second-order structure survives at
        # every dimensionality on laptop-scale n.
        assert metrics["mu"] > 0.9, d
        assert metrics["alignment"] > 0.8, d

"""Ablation A1 — grouping strategy.

The paper's ``CreateCondensedGroups`` seeds each group at a uniformly
random record.  This bench compares that choice against two
alternatives on the same data and privacy level:

* MDAV seeding (condense the periphery first), the classic
  microaggregation heuristic;
* k-means-planned grouping (globally coordinated partition).

Reported per strategy: SSE information loss, covariance compatibility
of the generated data, and downstream 1-NN accuracy.
"""

import numpy as np

from repro.core.condensation import (
    condensation_information_loss,
    create_condensed_groups,
)
from repro.core.condenser import ClasswiseCondenser
from repro.core.generation import generate_anonymized_data
from repro.datasets import load_pima
from repro.evaluation.reporting import format_table
from repro.metrics import covariance_compatibility
from repro.neighbors import KNeighborsClassifier
from repro.preprocessing import StandardScaler, train_test_split

STRATEGIES = ("random", "mdav", "kmeans")
K = 20


def run_strategy_ablation():
    dataset = load_pima()
    train_x, test_x, train_y, test_y = train_test_split(
        dataset.data, dataset.target, test_size=0.25,
        stratify=dataset.target, random_state=0,
    )
    scaler = StandardScaler().fit(train_x)
    train_x = scaler.transform(train_x)
    test_x = scaler.transform(test_x)
    rows = []
    results = {}
    for strategy in STRATEGIES:
        losses, mus, accuracies = [], [], []
        for seed in range(3):
            model = create_condensed_groups(
                train_x, K, strategy=strategy, random_state=seed
            )
            losses.append(
                condensation_information_loss(train_x, model)
            )
            anonymized = generate_anonymized_data(
                model, random_state=seed
            )
            mus.append(covariance_compatibility(train_x, anonymized))
            condenser = ClasswiseCondenser(
                K, strategy=strategy, random_state=seed
            )
            labelled, labels = condenser.fit_generate(train_x, train_y)
            knn = KNeighborsClassifier(n_neighbors=1).fit(
                labelled, labels
            )
            accuracies.append(knn.score(test_x, test_y))
        results[strategy] = {
            "loss": float(np.mean(losses)),
            "mu": float(np.mean(mus)),
            "accuracy": float(np.mean(accuracies)),
        }
        rows.append([
            strategy,
            f"{results[strategy]['loss']:.4f}",
            f"{results[strategy]['mu']:.4f}",
            f"{results[strategy]['accuracy']:.4f}",
        ])
    print()
    print(format_table(
        ["strategy", "info loss (SSE)", "mu", "1-NN accuracy"],
        rows,
        title=f"A1: grouping strategy ablation (pima twin, k={K})",
    ))
    return results


def test_ablation_strategies(benchmark):
    results = benchmark.pedantic(
        run_strategy_ablation, rounds=1, iterations=1
    )
    # All strategies must preserve covariance structure well...
    for strategy in STRATEGIES:
        assert results[strategy]["mu"] > 0.9, strategy
        assert results[strategy]["accuracy"] > 0.55, strategy
    # ...and MDAV's periphery-first seeding should not lose more
    # information than random seeding by a wide margin (they are close
    # in practice; this guards against regressions, not a paper claim).
    assert results["mdav"]["loss"] < results["random"]["loss"] + 0.1

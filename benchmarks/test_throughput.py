"""Ablation A6 — throughput of the condensation engines.

Wall-clock scaling of the two algorithms, measured with pytest-benchmark
proper (multiple rounds): static condensation over n, and dynamic
stream ingestion rate.  These are the numbers a deployment would size
capacity with; the paper reports no timings, so there is no shape to
match — only regressions to catch.
"""

import pytest

from repro.core.condensation import create_condensed_groups
from repro.core.dynamic import DynamicGroupMaintainer
from repro.core.generation import generate_anonymized_data
from repro.linalg.rng import check_random_state


def make_data(n, d=8, seed=0):
    return check_random_state(seed).normal(size=(n, d))


@pytest.mark.parametrize("n", [500, 2000])
def test_static_condensation_throughput(benchmark, n):
    data = make_data(n)
    model = benchmark(
        create_condensed_groups, data, 20, random_state=0
    )
    assert model.total_count == n


@pytest.mark.parametrize("k", [5, 50])
def test_dynamic_ingestion_throughput(benchmark, k):
    base = make_data(500, seed=1)
    stream = make_data(1000, seed=2)

    def ingest():
        maintainer = DynamicGroupMaintainer(
            k, initial_data=base, random_state=0
        )
        maintainer.add_stream(stream)
        return maintainer

    maintainer = benchmark(ingest)
    assert maintainer.n_absorbed == 1500


def test_generation_throughput(benchmark):
    data = make_data(2000)
    model = create_condensed_groups(data, 20, random_state=0)
    anonymized = benchmark(
        generate_anonymized_data, model, random_state=0
    )
    assert anonymized.shape == data.shape


def test_deletion_throughput(benchmark):
    base = make_data(2000, seed=3)
    deletions = base[:500]

    def churn():
        maintainer = DynamicGroupMaintainer(
            20, initial_data=base, random_state=0
        )
        for record in deletions:
            maintainer.remove(record)
        return maintainer

    maintainer = benchmark(churn)
    assert maintainer.group_sizes().sum() == 1500
    assert (maintainer.group_sizes() >= 20).all()

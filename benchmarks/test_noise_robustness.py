"""Ablation A13 — the noise-removal mechanism, tested directly.

The paper's §4 explains condensation sometimes *beating* the original
data by noise removal: group aggregation masks anomalies, the way k-NN
is more robust than 1-NN.  This bench injects two measured corruptions
into the training data and sweeps their strength:

* **label flips** — mislabeled records, the corruption 1-NN memorizes
  verbatim.  Here aggregation genuinely dilutes the anomaly: a flipped
  record inside a k-record group nudges statistics instead of planting
  a pristine wrong-label attractor.  Condensation should stay ahead.
* **attribute noise** — scattered feature corruption.  Here the
  mechanism cuts the other way: noisy records inflate their groups'
  covariances and the generated data inherits the spread, while 1-NN on
  originals simply routes around isolated noisy points.  Condensation's
  advantage should *shrink*.

Reporting both keeps the reproduction honest about when the paper's
mechanism helps and when it does not.
"""

import numpy as np

from repro.core.condenser import ClasswiseCondenser
from repro.datasets import (
    add_attribute_noise,
    flip_labels,
    load_ionosphere,
)
from repro.evaluation.reporting import format_table
from repro.neighbors import KNeighborsClassifier
from repro.preprocessing import StandardScaler, train_test_split

K = 15
LEVELS = (0.0, 0.1, 0.2, 0.3)
N_TRIALS = 3


def _evaluate(corrupt, level):
    """Mean (original, condensed) accuracies at one corruption level."""
    dataset = load_ionosphere()
    original_scores, condensed_scores = [], []
    for trial in range(N_TRIALS):
        train_x, test_x, train_y, test_y = train_test_split(
            dataset.data, dataset.target, test_size=0.25,
            stratify=dataset.target, random_state=trial,
        )
        train_x, train_y = corrupt(train_x, train_y, level, trial)
        scaler = StandardScaler().fit(train_x)
        train_x = scaler.transform(train_x)
        test_x = scaler.transform(test_x)
        original_scores.append(
            KNeighborsClassifier(n_neighbors=1)
            .fit(train_x, train_y)
            .score(test_x, test_y)
        )
        anonymized, labels = ClasswiseCondenser(
            K, random_state=trial
        ).fit_generate(train_x, train_y)
        condensed_scores.append(
            KNeighborsClassifier(n_neighbors=1)
            .fit(anonymized, labels)
            .score(test_x, test_y)
        )
    return float(np.mean(original_scores)), float(
        np.mean(condensed_scores)
    )


def corrupt_labels(train_x, train_y, level, trial):
    return train_x, flip_labels(train_y, level, random_state=trial)


def corrupt_attributes(train_x, train_y, level, trial):
    noisy = add_attribute_noise(
        train_x, scale=level * 6.0, fraction=0.3, random_state=trial
    )
    return noisy, train_y


def run_noise_robustness():
    results = {}
    for name, corrupt in (
        ("label flips", corrupt_labels),
        ("attribute noise", corrupt_attributes),
    ):
        rows = []
        per_level = {}
        for level in LEVELS:
            original, condensed = _evaluate(corrupt, level)
            per_level[level] = {
                "original": original,
                "condensed": condensed,
                "advantage": condensed - original,
            }
            rows.append([
                f"{level:.1f}",
                f"{original:.4f}",
                f"{condensed:.4f}",
                f"{condensed - original:+.4f}",
            ])
        results[name] = per_level
        print()
        print(format_table(
            ["corruption level", "1-NN on corrupted original",
             "1-NN on condensed", "condensation advantage"],
            rows,
            title=(
                f"A13 ({name}): noise robustness "
                f"(ionosphere twin, k={K})"
            ),
        ))
    return results


def test_noise_robustness(benchmark):
    results = benchmark.pedantic(
        run_noise_robustness, rounds=1, iterations=1
    )
    labels = results["label flips"]
    # The paper's mechanism holds for anomalous labels: condensation
    # stays at or ahead of the original at every flip level.
    for level, metrics in labels.items():
        assert metrics["advantage"] > -0.02, level
    # And the advantage under mislabeling exceeds the clean advantage
    # somewhere in the sweep (aggregation pays off most when there is
    # something to mask).
    assert max(
        metrics["advantage"] for level, metrics in labels.items()
        if level > 0
    ) >= labels[0.0]["advantage"]
    # Honest counterpart: scattered attribute noise erodes the
    # advantage (it spreads through group covariances instead of being
    # masked).
    attributes = results["attribute noise"]
    assert (
        attributes[LEVELS[-1]]["advantage"]
        < attributes[0.0]["advantage"]
    )

"""Figure 6 — Ecoli: (a) classifier accuracy, (b) covariance
compatibility, versus average condensed-group size.

Ecoli is the paper's strongly class-imbalanced case (8 localization
classes, two of them with 2 records) — per-class condensation must fall
back to single-group statistics for the tiny classes, and the accuracy
curves should still track the original-data baseline.
"""

from benchmarks.conftest import assert_paper_shape, run_and_report
from repro.datasets import load_ecoli


def test_fig6_ecoli(benchmark):
    dataset = load_ecoli()
    result = run_and_report(dataset, benchmark, n_trials=2)
    assert_paper_shape(result)

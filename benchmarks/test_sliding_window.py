"""Ablation A10 — sliding-window condensation under drift.

The dynamic setting of §3 extends naturally to sliding-window
semantics: keep the condensed statistics synchronized with the last
``W`` stream records using additions (split-on-overflow) and deletions
(merge-on-underflow).  Under a drifting distribution this bench checks
that the window statistics *track the current regime* — comparing the
generated release against the true window contents and against the full
drifted history (which a windowless maintainer would blur together).
"""

import numpy as np

from repro.datasets.generators import random_covariance
from repro.evaluation.reporting import format_table
from repro.metrics import covariance_compatibility
from repro.stream import DriftingGaussianStream, SlidingWindowCondenser

WINDOW = 300
K = 15
CHECKPOINTS = (1000, 2500, 5000)


def run_sliding_window():
    rng = np.random.default_rng(1)
    covariance = random_covariance(4, rng)
    stream = DriftingGaussianStream(
        mean=np.zeros(4), covariance=covariance,
        drift_per_step=0.02, random_state=1,
    )
    condenser = SlidingWindowCondenser(
        k=K, window=WINDOW, random_state=1
    )
    history = []
    rows = []
    results = {}
    emitted = 0
    for checkpoint in CHECKPOINTS:
        batch = stream.take(checkpoint - emitted)
        emitted = checkpoint
        history.append(batch)
        condenser.push_stream(batch)
        full_history = np.vstack(history)
        window_records = full_history[-WINDOW:]
        release = condenser.generate()
        mu_window = covariance_compatibility(window_records, release)
        window_mean_error = float(np.linalg.norm(
            release.mean(axis=0) - window_records.mean(axis=0)
        ))
        history_mean_error = float(np.linalg.norm(
            release.mean(axis=0) - full_history.mean(axis=0)
        ))
        sizes = condenser.to_model().group_sizes
        results[checkpoint] = {
            "mu_window": mu_window,
            "window_mean_error": window_mean_error,
            "history_mean_error": history_mean_error,
            "min_size": int(sizes.min()),
            "max_size": int(sizes.max()),
        }
        rows.append([
            str(checkpoint),
            f"{mu_window:.4f}",
            f"{window_mean_error:.3f}",
            f"{history_mean_error:.3f}",
            f"{sizes.min()}-{sizes.max()}",
        ])
    print()
    print(format_table(
        ["records streamed", "mu vs window", "mean err vs window",
         "mean err vs full history", "group sizes"],
        rows,
        title=(
            f"A10: sliding-window condensation under drift "
            f"(window={WINDOW}, k={K})"
        ),
    ))
    return results


def test_sliding_window(benchmark):
    results = benchmark.pedantic(run_sliding_window, rounds=1,
                                 iterations=1)
    for checkpoint, metrics in results.items():
        # Statistics faithfully describe the current window...
        assert metrics["mu_window"] > 0.9, checkpoint
        # ...and every group keeps the privacy band through heavy churn.
        assert metrics["min_size"] >= K, checkpoint
        assert metrics["max_size"] < 2 * K, checkpoint
    # Once the stream has drifted far, the window statistics are much
    # closer to the current regime than to the blurred full history.
    final = results[CHECKPOINTS[-1]]
    assert (
        final["window_mean_error"] < 0.5 * final["history_mean_error"]
    )

"""Ablation A11 — generation-based vs statistics-direct consumption.

The paper's pipeline materializes anonymized records so existing
algorithms run unchanged.  A consumer willing to read the group
statistics directly can skip generation — removing its sampling noise
at the cost of algorithm generality.  This bench compares the two
consumption styles on the classification twins at a fixed k.
"""

from repro.core.condenser import ClasswiseCondenser
from repro.datasets import load_ecoli, load_ionosphere, load_pima
from repro.evaluation.reporting import format_table
from repro.mining.condensed_direct import (
    CentroidClassifier,
    GroupMixtureClassifier,
)
from repro.neighbors import KNeighborsClassifier
from repro.preprocessing import StandardScaler, train_test_split

K = 20
LOADERS = {
    "ionosphere": load_ionosphere,
    "ecoli": load_ecoli,
    "pima": load_pima,
}


def run_direct_mining():
    rows = []
    results = {}
    for name, loader in LOADERS.items():
        dataset = loader()
        train_x, test_x, train_y, test_y = train_test_split(
            dataset.data, dataset.target, test_size=0.25,
            stratify=dataset.target, random_state=0,
        )
        scaler = StandardScaler().fit(train_x)
        train_x = scaler.transform(train_x)
        test_x = scaler.transform(test_x)
        condenser = ClasswiseCondenser(
            K, small_class_policy="single_group", random_state=0
        ).fit(train_x, train_y)
        anonymized, anonymized_labels = condenser.generate()
        generated_knn = KNeighborsClassifier(n_neighbors=1).fit(
            anonymized, anonymized_labels
        )
        centroid = CentroidClassifier(condenser.models_)
        mixture = GroupMixtureClassifier(condenser.models_)
        scores = {
            "generated+1NN": generated_knn.score(test_x, test_y),
            "centroid": centroid.score(test_x, test_y),
            "mixture": mixture.score(test_x, test_y),
        }
        results[name] = scores
        rows.append([
            name,
            f"{scores['generated+1NN']:.4f}",
            f"{scores['centroid']:.4f}",
            f"{scores['mixture']:.4f}",
        ])
    print()
    print(format_table(
        ["dataset", "generated + 1-NN", "centroid (direct)",
         "mixture (direct)"],
        rows,
        title=f"A11: consumption styles at k={K}",
    ))
    return results


def run_direct_regression():
    """Abalone: generated-records 1-NN vs the statistics-direct
    conditional-mean mixture regressor (joint condensation)."""
    import numpy as np

    from repro.core.condensation import create_condensed_groups
    from repro.core.generation import generate_anonymized_data
    from repro.datasets import load_abalone
    from repro.mining.condensed_direct import GroupMixtureRegressor
    from repro.neighbors import KNeighborsRegressor

    dataset = load_abalone()
    train_x, test_x, train_y, test_y = train_test_split(
        dataset.data, dataset.target, test_size=0.25, random_state=0,
    )
    scaler = StandardScaler().fit(train_x)
    train_x = scaler.transform(train_x)
    test_x = scaler.transform(test_x)
    joint = np.column_stack([train_x, train_y])
    model = create_condensed_groups(joint, K, random_state=0)

    release = generate_anonymized_data(model, random_state=0)
    generated_knn = KNeighborsRegressor(n_neighbors=1).fit(
        release[:, :-1], release[:, -1]
    )
    generated_accuracy = generated_knn.score(test_x, test_y, tol=1.0)
    direct = GroupMixtureRegressor(model)
    direct_accuracy = direct.score(test_x, test_y, tol=1.0)
    print()
    print(format_table(
        ["style", "within-1-year accuracy"],
        [["generated + 1-NN regression", f"{generated_accuracy:.4f}"],
         ["mixture conditional mean (direct)",
          f"{direct_accuracy:.4f}"]],
        title=f"A11b: regression consumption styles (abalone twin, k={K})",
    ))
    return generated_accuracy, direct_accuracy


def test_direct_mining(benchmark):
    def run_all():
        return run_direct_mining(), run_direct_regression()

    results, (generated_accuracy, direct_accuracy) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    for name, scores in results.items():
        # Every consumption style must stay usable...
        for style, accuracy in scores.items():
            assert accuracy > 0.55, (name, style, accuracy)
        # ...and the mixture (which uses the full group covariances)
        # should not trail the generation pipeline by much.
        assert scores["mixture"] >= scores["generated+1NN"] - 0.1, name
    # Regression: the direct conditional-mean mixture beats 1-NN on the
    # noisy generated targets (it averages instead of memorizing).
    assert direct_accuracy >= generated_accuracy - 0.02

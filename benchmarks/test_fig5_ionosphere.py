"""Figure 5 — Ionosphere: (a) classifier accuracy, (b) covariance
compatibility, versus average condensed-group size.

Paper's reported shape: static condensation's accuracy is at or above
the original-data nearest-neighbour baseline for almost all group sizes
(the noise-removal effect is "particularly pronounced" here); dynamic
condensation is slightly below but comparable for modest groups; static
μ > 0.98 throughout.
"""

from benchmarks.conftest import assert_paper_shape, run_and_report
from repro.datasets import load_ionosphere


def test_fig5_ionosphere(benchmark):
    dataset = load_ionosphere()
    result = run_and_report(dataset, benchmark, n_trials=2)
    assert_paper_shape(result)
    # Ionosphere-specific: the paper highlights that condensation often
    # *beats* the baseline here.  Require the static curve to reach the
    # baseline somewhere in the sweep.
    best_static = result.series("accuracy_static").max()
    baseline = result.series("accuracy_original").mean()
    assert best_static >= baseline - 0.02

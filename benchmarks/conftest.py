"""Shared machinery for the figure-reproduction benches.

Every bench in this directory regenerates one table or figure of the
paper (or an ablation of a design choice) and prints the same series the
paper plots.  Timing is collected by pytest-benchmark around the full
experiment, so ``pytest benchmarks/ --benchmark-only`` both reproduces
and times each figure.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import telemetry
from repro.evaluation.sweep import FigureResult, run_group_size_sweep

#: Where the session's telemetry snapshot is dumped for CI artifacts.
TELEMETRY_SNAPSHOT = Path(__file__).resolve().parent.parent / (
    "BENCH_telemetry.json"
)

#: Shared sweep grid (matches DESIGN.md: covers the paper's 0-50 axis).
GROUP_SIZES = (2, 5, 10, 15, 20, 25, 30, 40, 50)

#: Where figure benches archive their series as CSV.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def run_and_report(
    dataset, benchmark, n_trials=2, tol=1.0, seed=20140331
) -> FigureResult:
    """Run one figure's sweep under the benchmark timer, print it, and
    archive the series as CSV under ``benchmarks/results/``."""
    result = benchmark.pedantic(
        run_group_size_sweep,
        kwargs={
            "dataset": dataset,
            "group_sizes": GROUP_SIZES,
            "n_trials": n_trials,
            "tol": tol,
            "random_state": seed,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.accuracy_table())
    print()
    print(result.compatibility_table())
    RESULTS_DIR.mkdir(exist_ok=True)
    result.save_csv(RESULTS_DIR / f"{dataset.name}.csv")
    return result


def assert_paper_shape(result: FigureResult, baseline_slack: float = 0.12):
    """Shape assertions shared by the four figure benches.

    These encode the qualitative findings of §4, not absolute numbers:

    * static condensation's accuracy tracks (or beats) the original-data
      baseline across the whole sweep;
    * dynamic condensation stays comparable for modest group sizes
      (k >= 15, the regime the paper calls practically relevant);
    * the covariance compatibility coefficient of static condensation
      stays near 1 everywhere.
    """
    gap_static = (
        result.series("accuracy_original")
        - result.series("accuracy_static")
    )
    assert gap_static.max() <= baseline_slack, (
        "static condensation lost more accuracy than the paper reports: "
        f"max gap {gap_static.max():.3f}"
    )
    modest = result.group_sizes >= 15
    gap_dynamic = (
        result.series("accuracy_original")[modest]
        - result.series("accuracy_dynamic")[modest]
    )
    assert gap_dynamic.max() <= baseline_slack + 0.05, (
        "dynamic condensation at modest group sizes diverged from the "
        f"baseline: max gap {gap_dynamic.max():.3f}"
    )
    assert result.series("mu_static").min() > 0.9, (
        "static covariance compatibility fell below the paper's range"
    )
    assert result.series("mu_dynamic")[modest].min() > 0.9, (
        "dynamic covariance compatibility at modest group sizes fell "
        "below the paper's range"
    )


@pytest.fixture(scope="session")
def bench_rng():
    """Deterministic generator for ad-hoc bench data."""
    return np.random.default_rng(20140331)


@pytest.fixture(scope="session", autouse=True)
def bench_telemetry():
    """Capture the whole bench session's telemetry.

    Enables the live pipeline for the session and dumps the final
    registry snapshot plus per-span aggregates to
    ``BENCH_telemetry.json`` at the repo root, where CI uploads it as
    an artifact.
    """
    pipeline = telemetry.configure()
    try:
        yield pipeline
    finally:
        telemetry.disable()
        summary = telemetry.summarize_events(pipeline.finished_spans())
        spans = {
            name: {
                "count": aggregate.count,
                "total_seconds": aggregate.total,
                "max_seconds": aggregate.maximum,
            }
            for name, aggregate in sorted(summary.spans.items())
        }
        snapshot = {
            "schema_version": 1,
            "metrics": pipeline.registry.snapshot(),
            "spans": spans,
        }
        TELEMETRY_SNAPSHOT.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        )

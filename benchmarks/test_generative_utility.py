"""Ablation A14 — generative utility of the release.

μ checks second moments; a sharper question is whether a *density
model* fit on the release generalizes to fresh original data as well
as one fit on the originals.  For each twin: hold out 25% of the
records, condense the rest at k, generate the release, fit a Gaussian
mixture on (a) the original training records and (b) the release, and
compare the held-out mean log-likelihood.  A small gap means the
release supports generative modelling, not just classification.
"""

import numpy as np

from repro.core.condenser import StaticCondenser
from repro.datasets import load_ecoli, load_ionosphere, load_pima
from repro.evaluation.reporting import format_table
from repro.mining.gmm import GaussianMixture
from repro.preprocessing import StandardScaler, train_test_split

K = 20
N_COMPONENTS = 3
LOADERS = {
    "ionosphere": load_ionosphere,
    "ecoli": load_ecoli,
    "pima": load_pima,
}


def run_generative_utility():
    rows = []
    results = {}
    for name, loader in LOADERS.items():
        dataset = loader()
        train_x, held_out = train_test_split(
            dataset.data, test_size=0.25, random_state=0
        )
        scaler = StandardScaler().fit(train_x)
        train_x = scaler.transform(train_x)
        held_out = scaler.transform(held_out)
        d = train_x.shape[1]
        release = StaticCondenser(K, random_state=0).fit_generate(
            train_x
        )
        on_original = GaussianMixture(
            n_components=N_COMPONENTS, regularization=1e-3,
            random_state=0,
        ).fit(train_x)
        on_release = GaussianMixture(
            n_components=N_COMPONENTS, regularization=1e-3,
            random_state=0,
        ).fit(release)
        original_score = on_original.score(held_out)
        release_score = on_release.score(held_out)
        results[name] = {
            "original": original_score,
            "release": release_score,
            "gap": original_score - release_score,
            "gap_per_dim": (original_score - release_score) / d,
        }
        rows.append([
            name,
            f"{original_score:.3f}",
            f"{release_score:.3f}",
            f"{original_score - release_score:+.3f}",
            f"{results[name]['gap_per_dim']:+.4f}",
        ])
    print()
    print(format_table(
        ["dataset", "GMM fit on original", "GMM fit on release",
         "held-out gap (nats)", "gap per dimension"],
        rows,
        title=(
            f"A14: generative utility (k={K}, "
            f"{N_COMPONENTS}-component GMM, held-out original records)"
        ),
    ))
    return results


def test_generative_utility(benchmark):
    results = benchmark.pedantic(
        run_generative_utility, rounds=1, iterations=1
    )
    for name, metrics in results.items():
        # A density model trained on the release must describe fresh
        # original data nearly as well as one trained on the originals.
        # Log-likelihoods scale with dimensionality, so the bound is
        # per dimension: a quarter nat per attribute.
        assert metrics["gap_per_dim"] < 0.25, (name, metrics)
        assert np.isfinite(metrics["release"]), name
    # On the anomaly-laden Pima twin the release-trained model should
    # actually generalize *better* — condensation smoothed the
    # anomalies that skew the original-trained fit (the paper's §4
    # mechanism, in generative form).
    assert results["pima"]["gap"] < 0.0
"""Ablation A15 — serial versus sharded condensation wall-clock.

Times the serial ``create_condensed_groups`` against the sharded
engine on the same data at a *fixed utility contract*: both models
must conserve moment mass exactly and meet the privacy level, so the
timing comparison is between runs producing equivalent models — not a
fast path that quietly trades utility away.  The series is dumped to
``BENCH_parallel.json`` at the repo root for CI artifact upload.

The paper reports no timings; these numbers exist to size deployments
and to catch regressions in the shard/merge overhead (on a single-CPU
runner the sharded engine should be close to serial, not multiples of
it).
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.condensation import (
    condensation_information_loss,
    create_condensed_groups,
)
from repro.linalg.rng import check_random_state
from repro.parallel import condense_sharded
from repro.privacy.metrics import privacy_report

RESULTS_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_parallel.json"
)

N_RECORDS = 4000
N_DIMENSIONS = 8
K = 20
ROUNDS = 3
SHARD_GRID = (2, 4)


def make_data():
    return check_random_state(20140331).normal(
        size=(N_RECORDS, N_DIMENSIONS)
    )


def timed(callable_, rounds=ROUNDS):
    """Best-of-``rounds`` wall-clock and the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def check_utility(data, model):
    """The fixed utility contract both engines must meet."""
    assert model.total_count == N_RECORDS
    assert privacy_report(model).achieved_k >= K
    total_first = sum(group.first_order for group in model.groups)
    scale = np.abs(data).sum() + 1.0
    assert np.abs(
        total_first - data.sum(axis=0)
    ).max() <= 1e-9 * scale
    return condensation_information_loss(data, model)


def test_serial_vs_sharded_wall_clock():
    data = make_data()

    serial_seconds, serial_model = timed(
        lambda: create_condensed_groups(
            data, K, strategy="random", random_state=0
        )
    )
    serial_loss = check_utility(data, serial_model)

    runs = []
    for n_shards in SHARD_GRID:
        for backend, n_workers in (("serial", 1), ("thread", 2),
                                   ("process", 2)):
            seconds, model = timed(
                lambda shards=n_shards, b=backend, w=n_workers:
                condense_sharded(
                    data, K, strategy="random", random_state=0,
                    n_shards=shards, n_workers=w, backend=b,
                )
            )
            loss = check_utility(data, model)
            runs.append({
                "n_shards": n_shards,
                "n_workers": n_workers,
                "backend": backend,
                "seconds": seconds,
                "speedup_vs_serial": serial_seconds / seconds,
                "information_loss": loss,
                "n_groups": model.n_groups,
                "n_merge_repairs":
                    model.metadata["parallel"]["n_merge_repairs"],
            })
            # Fixed utility: sharding may cost a little locality but
            # must stay in the serial engine's information-loss regime.
            assert loss <= max(2.0 * serial_loss, serial_loss + 0.05)

    RESULTS_PATH.write_text(json.dumps({
        "schema_version": 1,
        "n_records": N_RECORDS,
        "n_dimensions": N_DIMENSIONS,
        "k": K,
        "rounds": ROUNDS,
        "serial": {
            "seconds": serial_seconds,
            "information_loss": serial_loss,
            "n_groups": serial_model.n_groups,
        },
        "sharded": runs,
    }, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {RESULTS_PATH.name}: serial {serial_seconds:.3f}s, "
          + ", ".join(
              f"{run['n_shards']}x{run['n_workers']}@{run['backend']} "
              f"{run['seconds']:.3f}s" for run in runs
          ))

"""Ablation A15 — serial versus sharded condensation across scale tiers.

Times the serial ``create_condensed_groups`` against the sharded
engine on the same data at a *fixed utility contract*: both models
must conserve moment mass exactly and meet the privacy level, so the
timing comparison is between runs producing equivalent models — not a
fast path that quietly trades utility away.  Every backend run also
records a model digest, and digests must agree across backends and
worker counts at fixed ``n_shards`` — the determinism contract,
re-checked at benchmark scale.

Tiers run at 4×10³, 2×10⁴ and 10⁵ records (set ``REPRO_BENCH_SCALE=
full`` for the 10⁶ tier); the series plus the measured serial/process
**crossover** is dumped to ``BENCH_parallel.json`` at the repo root
for CI artifact upload.  CI ratchets the top tier: the process backend
must beat serial by ≥ 2× there — the zero-copy payload plus warm-pool
design carries that margin even on a single-CPU runner, because
sharding shrinks the per-record group-distance scan
(``docs/performance.md`` walks through why).
"""

import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.condensation import (
    condensation_information_loss,
    create_condensed_groups,
)
from repro.linalg.rng import check_random_state
from repro.parallel import condense_sharded

RESULTS_PATH = Path(__file__).resolve().parent.parent / (
    "BENCH_parallel.json"
)

N_DIMENSIONS = 8
K = 20

#: ``(n_records, rounds, shard_grid)`` per tier; larger tiers run
#: fewer rounds (their variance is lower) and coarser shard grids.
TIERS = [
    (4_000, 3, (2, 4)),
    (20_000, 2, (4, 8)),
    (100_000, 1, (8, 16)),
]

#: The 10⁶ tier only runs when explicitly requested — minutes, not
#: seconds.
FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE") == "full"
if FULL_SCALE:
    TIERS.append((1_000_000, 1, (32,)))

#: Ratchet: at and above this tier the process backend must beat
#: serial by this factor.
RATCHET_RECORDS = 100_000
RATCHET_SPEEDUP = 2.0

#: Backend sweep at each ``(tier, n_shards)`` point.
BACKEND_GRID = (("serial", 1), ("thread", 2), ("process", 2))


def make_data(n_records):
    return check_random_state(20140331).normal(
        size=(n_records, N_DIMENSIONS)
    )


def timed(callable_, rounds):
    """Best-of-``rounds`` wall-clock and the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def model_digest(model):
    """SHA-256 over the ordered group statistics — the determinism
    contract's observable."""
    digest = hashlib.sha256()
    for group in model.groups:
        digest.update(str(group.count).encode())
        digest.update(group.first_order.tobytes())
        digest.update(group.second_order.tobytes())
    return digest.hexdigest()


def check_utility(data, model, k=K):
    """The fixed utility contract both engines must meet."""
    assert model.total_count == data.shape[0]
    assert min(group.count for group in model.groups) >= k
    total_first = sum(group.first_order for group in model.groups)
    scale = np.abs(data).sum() + 1.0
    assert np.abs(
        total_first - data.sum(axis=0)
    ).max() <= 1e-9 * scale
    return condensation_information_loss(data, model)


def measure_tier(n_records, rounds, shard_grid):
    """Serial baseline plus the backend sweep for one tier."""
    data = make_data(n_records)
    serial_seconds, serial_model = timed(
        lambda: create_condensed_groups(
            data, K, strategy="random", random_state=0
        ),
        rounds,
    )
    serial_loss = check_utility(data, serial_model)

    runs = []
    for n_shards in shard_grid:
        digests = set()
        for backend, n_workers in BACKEND_GRID:
            seconds, model = timed(
                lambda b=backend, w=n_workers: condense_sharded(
                    data, K, strategy="random", random_state=0,
                    n_shards=n_shards, n_workers=w, backend=b,
                ),
                rounds,
            )
            loss = check_utility(data, model)
            digests.add(model_digest(model))
            runs.append({
                "n_shards": n_shards,
                "n_workers": n_workers,
                "backend": backend,
                "effective_backend":
                    model.metadata["parallel"]["effective_backend"],
                "seconds": seconds,
                "speedup_vs_serial": serial_seconds / seconds,
                "information_loss": loss,
                "n_groups": model.n_groups,
                "n_merge_repairs":
                    model.metadata["parallel"]["n_merge_repairs"],
                "model_digest": model_digest(model),
            })
            # Fixed utility: sharding may cost a little locality but
            # must stay in the serial engine's information-loss regime.
            assert loss <= max(2.0 * serial_loss, serial_loss + 0.05)
        # Determinism at benchmark scale: every backend and worker
        # count produced the bit-identical model for this shard count.
        assert len(digests) == 1, (
            f"backend-dependent result at n={n_records}, "
            f"n_shards={n_shards}: {sorted(digests)}"
        )
    return {
        "n_records": n_records,
        "n_dimensions": N_DIMENSIONS,
        "rounds": rounds,
        "serial": {
            "seconds": serial_seconds,
            "information_loss": serial_loss,
            "n_groups": serial_model.n_groups,
        },
        "sharded": runs,
    }


def best_process_seconds(tier):
    """Fastest process-backend wall-clock measured in a tier."""
    return min(
        run["seconds"] for run in tier["sharded"]
        if run["backend"] == "process"
        and run["effective_backend"] == "process"
    )


def measured_crossover(tiers):
    """Smallest tier from which the process backend always beats
    serial; ``None`` when it never does."""
    crossover = None
    for tier in tiers:
        if best_process_seconds(tier) < tier["serial"]["seconds"]:
            if crossover is None:
                crossover = tier["n_records"]
        else:
            crossover = None
    return crossover


def test_serial_vs_sharded_wall_clock():
    tiers = [
        measure_tier(n_records, rounds, shard_grid)
        for n_records, rounds, shard_grid in TIERS
    ]
    crossover = measured_crossover(tiers)

    RESULTS_PATH.write_text(json.dumps({
        "schema_version": 2,
        "k": K,
        "full_scale": FULL_SCALE,
        "crossover_records": crossover,
        "ratchet": {
            "records": RATCHET_RECORDS,
            "min_speedup": RATCHET_SPEEDUP,
        },
        "tiers": tiers,
    }, indent=2, sort_keys=True) + "\n")
    for tier in tiers:
        print(
            f"\nn={tier['n_records']}: serial "
            f"{tier['serial']['seconds']:.3f}s, " + ", ".join(
                f"{run['n_shards']}x{run['n_workers']}@{run['backend']}"
                f" {run['seconds']:.3f}s" for run in tier["sharded"]
            )
        )
    print(f"crossover: {crossover} records")

    # CI ratchet: above the crossover the warm-pool process backend
    # must hold a real margin over serial, not a rounding error.
    for tier in tiers:
        if tier["n_records"] < RATCHET_RECORDS:
            continue
        speedup = tier["serial"]["seconds"] / best_process_seconds(tier)
        assert speedup >= RATCHET_SPEEDUP, (
            f"process backend speedup {speedup:.2f}x at "
            f"n={tier['n_records']} is under the {RATCHET_SPEEDUP}x "
            f"ratchet"
        )
    assert crossover is not None and crossover <= RATCHET_RECORDS

"""Ablation A3 — condensation versus the perturbation baseline.

The paper's §1 argues condensation beats Agrawal-Srikant randomization
because (a) anonymized records feed *any* algorithm and (b) correlations
survive.  This bench makes the comparison quantitative: sweep the
perturbation noise scale, and for each setting report the accuracy of
the distribution-based classifier (the only classifier the perturbation
pipeline supports) against condensation + 1-NN at increasing privacy
levels k.
"""

import numpy as np

from repro.baselines import NoiseModel, PerturbedDistributionClassifier
from repro.core.condenser import ClasswiseCondenser
from repro.datasets import load_ionosphere
from repro.evaluation.reporting import format_table
from repro.neighbors import KNeighborsClassifier
from repro.preprocessing import StandardScaler, train_test_split

NOISE_SCALES = (0.25, 0.5, 1.0, 2.0)
GROUP_SIZES = (5, 15, 30, 50)


def run_baseline_comparison():
    dataset = load_ionosphere()
    train_x, test_x, train_y, test_y = train_test_split(
        dataset.data, dataset.target, test_size=0.25,
        stratify=dataset.target, random_state=0,
    )
    scaler = StandardScaler().fit(train_x)
    train_x = scaler.transform(train_x)
    test_x = scaler.transform(test_x)

    perturbation_rows = []
    perturbation_accuracies = {}
    for scale in NOISE_SCALES:
        classifier = PerturbedDistributionClassifier(
            NoiseModel("gaussian", scale=scale),
            n_bins=60, max_iter=80, random_state=0,
        ).fit(train_x, train_y)
        accuracy = classifier.score(test_x, test_y)
        perturbation_accuracies[scale] = accuracy
        perturbation_rows.append([f"{scale:.2f}", f"{accuracy:.4f}"])

    condensation_rows = []
    condensation_accuracies = {}
    for k in GROUP_SIZES:
        condenser = ClasswiseCondenser(k, random_state=0)
        anonymized, labels = condenser.fit_generate(train_x, train_y)
        knn = KNeighborsClassifier(n_neighbors=1).fit(anonymized, labels)
        accuracy = knn.score(test_x, test_y)
        condensation_accuracies[k] = accuracy
        condensation_rows.append([str(k), f"{accuracy:.4f}"])

    print()
    print(format_table(
        ["noise scale (sigma)", "distribution-classifier accuracy"],
        perturbation_rows,
        title="A3a: perturbation baseline (ionosphere twin, standardized)",
    ))
    print()
    print(format_table(
        ["k", "condensation + 1-NN accuracy"],
        condensation_rows,
        title="A3b: condensation (same data)",
    ))
    return perturbation_accuracies, condensation_accuracies


def make_correlation_classes(n_per_class=300, seed=0):
    """Classes distinguished *only* by the sign of a correlation.

    Identical per-attribute marginals, so the per-dimension
    reconstruction pipeline has no signal — the paper's structural
    argument in its sharpest form.
    """
    rng = np.random.default_rng(seed)
    shared = rng.normal(size=n_per_class)
    noise = 0.3
    class_0 = np.column_stack([
        shared + noise * rng.normal(size=n_per_class),
        shared + noise * rng.normal(size=n_per_class),
    ])
    shared_1 = rng.normal(size=n_per_class)
    class_1 = np.column_stack([
        shared_1 + noise * rng.normal(size=n_per_class),
        -shared_1 + noise * rng.normal(size=n_per_class),
    ])
    data = np.vstack([class_0, class_1])
    labels = np.array([0] * n_per_class + [1] * n_per_class)
    return data, labels


def run_correlation_showdown():
    data, labels = make_correlation_classes()
    perturbation_classifier = PerturbedDistributionClassifier(
        NoiseModel("gaussian", scale=0.3),
        n_bins=60, max_iter=80, random_state=0,
    ).fit(data, labels)
    perturbation_accuracy = perturbation_classifier.score(data, labels)
    condenser = ClasswiseCondenser(15, random_state=0)
    anonymized, anonymized_labels = condenser.fit_generate(data, labels)
    knn = KNeighborsClassifier(n_neighbors=1).fit(
        anonymized, anonymized_labels
    )
    condensation_accuracy = knn.score(data, labels)
    print()
    print(format_table(
        ["approach", "accuracy"],
        [["perturbation + distribution classifier",
          f"{perturbation_accuracy:.4f}"],
         ["condensation (k=15) + 1-NN",
          f"{condensation_accuracy:.4f}"]],
        title=(
            "A3c: correlation-only class structure "
            "(identical marginals)"
        ),
    ))
    return perturbation_accuracy, condensation_accuracy


def test_baseline_perturbation(benchmark):
    def run_all():
        sweep = run_baseline_comparison()
        showdown = run_correlation_showdown()
        return sweep, showdown

    (perturbation, condensation), showdown = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    # Perturbation accuracy does not improve as the noise grows.
    scales = sorted(perturbation)
    assert perturbation[scales[0]] >= perturbation[scales[-1]] - 0.05
    # Condensation is comparatively flat in k (its privacy dial) and
    # stays usable at every privacy level.
    spread = max(condensation.values()) - min(condensation.values())
    assert spread < 0.15
    assert min(condensation.values()) > 0.7
    # The structural claim (§1): when class information lives in the
    # inter-attribute correlations, the per-dimension perturbation
    # pipeline collapses to chance while condensation retains it.
    perturbation_accuracy, condensation_accuracy = showdown
    assert perturbation_accuracy < 0.7
    assert condensation_accuracy > perturbation_accuracy + 0.15

"""Scenario: market-style rule mining on an anonymized release.

Run with::

    python examples/association_rules_on_condensed.py

The paper's §1 argues that perturbation-based privacy forced the field
to invent *specialized* association-rule algorithms, while condensation
feeds the standard ones.  This example demonstrates exactly that:
textbook Apriori runs unmodified on a condensation-anonymized release
of the Pima clinical twin, and most of the strong rules mined from the
original data survive.
"""

from repro.core.condenser import StaticCondenser
from repro.datasets import load_pima
from repro.evaluation import format_table
from repro.mining import (
    EqualFrequencyDiscretizer,
    association_rules,
    rule_overlap,
    transactions_from_bins,
)

MIN_SUPPORT = 0.08
MIN_CONFIDENCE = 0.5
K = 15


def mine(data, names, discretizer):
    transactions = transactions_from_bins(
        discretizer.transform(data), names
    )
    return association_rules(
        transactions,
        min_support=MIN_SUPPORT,
        min_confidence=MIN_CONFIDENCE,
        max_length=3,
    )


def main():
    dataset = load_pima()
    discretizer = EqualFrequencyDiscretizer(n_bins=3).fit(dataset.data)

    original_rules = mine(
        dataset.data, dataset.feature_names, discretizer
    )
    anonymized = StaticCondenser(K, random_state=0).fit_generate(
        dataset.data
    )
    release_rules = mine(
        anonymized, dataset.feature_names, discretizer
    )

    overlap = rule_overlap(original_rules, release_rules)
    print(f"rules from original data:   {len(original_rules)}")
    print(f"rules from release (k={K}): {len(release_rules)}")
    print(f"rule-set overlap (Jaccard): {overlap:.3f}")

    print("\ntop rules mined from the anonymized release:")
    rows = [
        [", ".join(sorted(rule.antecedent)),
         ", ".join(sorted(rule.consequent)),
         f"{rule.support:.3f}",
         f"{rule.confidence:.3f}",
         f"{rule.lift:.2f}"]
        for rule in release_rules[:8]
    ]
    print(format_table(
        ["antecedent", "consequent", "support", "confidence", "lift"],
        rows,
    ))

    survived = {
        (rule.antecedent, rule.consequent) for rule in release_rules
    }
    strongest = original_rules[0]
    key = (strongest.antecedent, strongest.consequent)
    print(f"\nstrongest original rule {strongest}")
    print(f"survives in the release: {key in survived}")


if __name__ == "__main__":
    main()

"""Reproduce any of the paper's Figures 5-8 from the command line.

Run with::

    python examples/reproduce_figures.py ionosphere
    python examples/reproduce_figures.py abalone --trials 3
    python examples/reproduce_figures.py all

Prints both panels of the chosen figure — (a) classifier accuracy and
(b) covariance compatibility against average group size — in the same
series layout as the paper's plots.  See EXPERIMENTS.md for the
recorded paper-vs-measured comparison.
"""

import argparse

from repro.datasets import TWIN_LOADERS, load_twin
from repro.evaluation import DEFAULT_GROUP_SIZES, run_group_size_sweep

FIGURE_NUMBERS = {
    "ionosphere": 5,
    "ecoli": 6,
    "pima": 7,
    "abalone": 8,
}


def reproduce(name: str, trials: int, seed: int) -> None:
    dataset = load_twin(name)
    print(f"\n=== Figure {FIGURE_NUMBERS[name]}: {dataset.name} "
          f"({dataset.n_records} records, {dataset.n_features} "
          f"attributes, {dataset.task}) ===")
    result = run_group_size_sweep(
        dataset,
        group_sizes=DEFAULT_GROUP_SIZES,
        n_trials=trials,
        random_state=seed,
    )
    print()
    print(result.accuracy_table())
    print()
    print(result.compatibility_table())


def main():
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's Figures 5-8."
    )
    parser.add_argument(
        "dataset",
        choices=sorted(TWIN_LOADERS) + ["all"],
        help="which figure's data set to run (or 'all')",
    )
    parser.add_argument(
        "--trials", type=int, default=2,
        help="independent trials per group size (default 2)",
    )
    parser.add_argument(
        "--seed", type=int, default=20140331,
        help="master random seed",
    )
    arguments = parser.parse_args()
    names = (
        sorted(TWIN_LOADERS)
        if arguments.dataset == "all"
        else [arguments.dataset]
    )
    for name in names:
        reproduce(name, arguments.trials, arguments.seed)


if __name__ == "__main__":
    main()

"""Scenario: a clinic publishes an anonymized diabetes cohort.

Run with::

    python examples/medical_records_release.py

The Pima Indian twin plays the part of a sensitive clinical data set.
The clinic wants external researchers to train diagnostic models, but
no patient record may leave the premises.  The workflow:

1. choose an indistinguishability level k by sweeping the
   privacy-utility trade-off (disclosure risk vs model accuracy);
2. release condensation-anonymized records at the chosen k;
3. red-team the release with a record-linkage attack.
"""

from repro.core.condensation import create_condensed_groups
from repro.core.condenser import ClasswiseCondenser
from repro.datasets import load_pima
from repro.evaluation import format_table
from repro.mining import DecisionTreeClassifier, GaussianNaiveBayes
from repro.neighbors import KNeighborsClassifier
from repro.preprocessing import StandardScaler, train_test_split
from repro.privacy import linkage_attack, privacy_report


def main():
    dataset = load_pima()
    train_x, test_x, train_y, test_y = train_test_split(
        dataset.data, dataset.target, test_size=0.25,
        stratify=dataset.target, random_state=11,
    )
    scaler = StandardScaler().fit(train_x)
    train_x = scaler.transform(train_x)
    test_x = scaler.transform(test_x)

    # --- 1. Sweep k: privacy vs utility. ------------------------------
    rows = []
    for k in (5, 10, 20, 35, 50):
        anonymized, labels = ClasswiseCondenser(
            k, random_state=11
        ).fit_generate(train_x, train_y)
        knn = KNeighborsClassifier(n_neighbors=1).fit(anonymized, labels)
        accuracy = knn.score(test_x, test_y)
        model = create_condensed_groups(train_x, k, random_state=11)
        attack = linkage_attack(train_x, model, random_state=11)
        rows.append([
            k,
            f"{accuracy:.4f}",
            f"{attack.expected_record_disclosure:.4f}",
            f"{1.0 / k:.4f}",
        ])
    baseline = KNeighborsClassifier(n_neighbors=1).fit(
        train_x, train_y
    ).score(test_x, test_y)
    print(format_table(
        ["k", "researcher accuracy", "re-id disclosure", "1/k bound"],
        rows,
        title=(
            "privacy-utility sweep "
            f"(original-data baseline accuracy {baseline:.4f})"
        ),
    ))

    # --- 2. Release at the chosen level. ------------------------------
    chosen_k = 20
    condenser = ClasswiseCondenser(chosen_k, random_state=11)
    release_x, release_y = condenser.fit_generate(train_x, train_y)
    print(f"\nreleasing {release_x.shape[0]} anonymized records "
          f"at k={chosen_k}")

    # --- 3. Researchers run their own algorithms on the release. ------
    print("\ndownstream researcher models (trained on the release):")
    for name, model in (
        ("1-NN", KNeighborsClassifier(n_neighbors=1)),
        ("naive Bayes", GaussianNaiveBayes()),
        ("decision tree", DecisionTreeClassifier(max_depth=6)),
    ):
        model.fit(release_x, release_y)
        print(f"  {name:14s} accuracy on held-out patients: "
              f"{model.score(test_x, test_y):.4f}")

    # --- 4. Red-team the release. --------------------------------------
    model = create_condensed_groups(train_x, chosen_k, random_state=11)
    report = privacy_report(model)
    attack = linkage_attack(train_x, model, random_state=11)
    print(f"\nred-team: group linkage {attack.group_linkage_rate:.2%}, "
          f"record disclosure {attack.expected_record_disclosure:.4f} "
          f"(bound 1/k = {1.0 / chosen_k:.4f}, "
          f"blind guessing {attack.baseline_disclosure:.5f})")
    print(f"achieved indistinguishability level: {report.achieved_k}")


if __name__ == "__main__":
    main()

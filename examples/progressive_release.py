"""Scenario: progressive releases from one stored model.

Run with::

    python examples/progressive_release.py

A data custodian condenses once at a fine privacy level, stores only
the group statistics (never the records), and later mints releases at
progressively higher privacy levels by *coarsening* the stored model —
merging groups — without ever touching the original data again.  Each
rung of the ladder is red-teamed with the record-linkage attack and
scored for utility.
"""

import numpy as np

from repro.core.coarsen import coarsening_schedule
from repro.core.condensation import create_condensed_groups
from repro.core.generation import generate_anonymized_data
from repro.datasets import load_ionosphere
from repro.evaluation import format_table
from repro.preprocessing import StandardScaler
from repro.privacy import linkage_attack, privacy_report
from repro.quality import utility_report


def main():
    dataset = load_ionosphere()
    data = StandardScaler().fit_transform(dataset.data)

    # --- Day 0: condense once at a fine level; store the model. -------
    base = create_condensed_groups(data, k=5, random_state=0)
    print(f"stored model: {base.n_groups} groups at k={base.k} "
          f"({base.total_count} records condensed)")

    # --- Later: mint a ladder of increasingly private releases. -------
    ladder = coarsening_schedule(base, [10, 20, 40, 80])
    rows = []
    for level, model in sorted(ladder.items()):
        release = generate_anonymized_data(model, random_state=level)
        report = utility_report(data, release)
        attack = linkage_attack(data, model, random_state=level)
        privacy = privacy_report(model)
        rows.append([
            level,
            model.n_groups,
            privacy.achieved_k,
            f"{report.mu:.4f}",
            f"{report.max_ks:.4f}",
            f"{attack.expected_record_disclosure:.4f}",
        ])
    print()
    print(format_table(
        ["k", "groups", "achieved k", "mu", "max marginal KS",
         "re-id disclosure"],
        rows,
        title="progressive release ladder (coarsened from one k=5 model)",
    ))

    # Raw-data access after day 0: none.
    finest = ladder[10]
    lineage = finest.metadata["lineage"]
    merged_counts = [len(entry) for entry in lineage]
    print(f"\ncoarsening k=5 -> k=10 merged source groups in batches of "
          f"{min(merged_counts)}-{max(merged_counts)}; every release "
          "was generated from statistics alone")
    assert np.all(finest.group_sizes >= 10)


if __name__ == "__main__":
    main()

"""Quickstart: condense a data set and mine the anonymized output.

Run with::

    python examples/quickstart.py

Demonstrates the paper's core loop in ~40 lines: build condensed groups
at indistinguishability level k, regenerate anonymized records, verify
the covariance structure survived, and train an off-the-shelf
classifier on the anonymized data.
"""

import numpy as np

from repro import StaticCondenser, covariance_compatibility, privacy_report
from repro.core.condenser import ClasswiseCondenser
from repro.datasets import make_classification_mixture
from repro.neighbors import KNeighborsClassifier
from repro.preprocessing import train_test_split


def main():
    # A correlated two-class data set standing in for private records.
    dataset = make_classification_mixture(
        class_sizes=[300, 200], n_features=6, class_separation=2.5,
        random_state=7,
    )
    train_x, test_x, train_y, test_y = train_test_split(
        dataset.data, dataset.target, test_size=0.25,
        stratify=dataset.target, random_state=7,
    )

    # --- 1. Condense: only group statistics survive this step. -------
    condenser = StaticCondenser(k=20, random_state=7).fit(train_x)
    model = condenser.model_
    report = privacy_report(model)
    print(f"condensed {model.total_count} records into "
          f"{model.n_groups} groups (k={model.k})")
    print(f"achieved indistinguishability: {report.achieved_k}, "
          f"expected disclosure: {report.expected_disclosure:.4f}")

    # --- 2. Generate: anonymized records with matching statistics. ---
    anonymized = condenser.generate()
    mu = covariance_compatibility(train_x, anonymized)
    print(f"covariance compatibility mu = {mu:.4f} (1.0 = identical)")

    # --- 3. Mine: any existing algorithm runs on the output. ---------
    labelled, labels = ClasswiseCondenser(
        k=20, random_state=7
    ).fit_generate(train_x, train_y)
    knn_condensed = KNeighborsClassifier(n_neighbors=1).fit(
        labelled, labels
    )
    knn_original = KNeighborsClassifier(n_neighbors=1).fit(
        train_x, train_y
    )
    print(f"1-NN accuracy on anonymized training data: "
          f"{knn_condensed.score(test_x, test_y):.4f}")
    print(f"1-NN accuracy on original training data:   "
          f"{knn_original.score(test_x, test_y):.4f}")

    # The anonymized records are synthetic - none leak from the input.
    original_rows = {tuple(np.round(row, 8)) for row in train_x}
    leaked = sum(
        tuple(np.round(row, 8)) in original_rows for row in anonymized
    )
    print(f"original records present in the release: {leaked}")


if __name__ == "__main__":
    main()

"""Scenario: anonymizing a table with categorical attributes.

Run with::

    python examples/mixed_type_release.py

Condensation operates on continuous vectors; real tables mix in
categoricals.  The Abalone twin's ``sex`` attribute (male / female /
infant) stands in: encode it as a one-hot block, condense, generate,
and decode — generated blocks snap back to valid categories, and the
release preserves both the category proportions and the
category-conditional structure (infants are smaller).
"""

import numpy as np

from repro.core.condenser import StaticCondenser
from repro.datasets import load_abalone
from repro.evaluation import format_table
from repro.preprocessing import MixedTypeEncoder
from repro.quality import utility_report

SEX_NAMES = {0.0: "male", 1.0: "female", 2.0: "infant"}


def sex_table(title, data):
    rows = []
    for code, name in SEX_NAMES.items():
        members = data[data[:, 0] == code]
        share = members.shape[0] / data.shape[0]
        mean_length = members[:, 1].mean() if members.shape[0] else 0.0
        rows.append([name, f"{share:.3f}", f"{mean_length:.3f}"])
    return format_table(
        ["sex", "share", "mean length"], rows, title=title
    )


def main():
    dataset = load_abalone()
    data = dataset.data

    encoder = MixedTypeEncoder(categorical_columns=[0]).fit(data)
    encoded = encoder.transform(data)
    print(f"encoded {data.shape[1]} mixed columns into "
          f"{encoder.n_output_columns} continuous columns")

    anonymized = StaticCondenser(k=25, random_state=0).fit_generate(
        encoded
    )
    release = encoder.inverse_transform(anonymized)

    print()
    print(sex_table("original cohort", data))
    print()
    print(sex_table("anonymized release (k=25)", release))

    # Continuous-attribute fidelity of the release.
    report = utility_report(data[:, 1:], release[:, 1:])
    print()
    for line in report.summary_lines():
        print(line)

    # Categories decoded from noisy one-hot blocks are always valid.
    assert set(np.unique(release[:, 0]).tolist()) <= set(SEX_NAMES)
    print("\nall released sex values are valid categories")


if __name__ == "__main__":
    main()

"""Scenario: anonymizing a drifting sensor stream on the fly.

Run with::

    python examples/streaming_sensor_anonymization.py

The dynamic setting of the paper's §3: records arrive one at a time and
the server may keep only condensed group statistics, never raw points.
A drifting Gaussian stream stands in for telemetry whose distribution
moves over time (e.g. seasonal sensor readings) — the stress case for
the group-splitting machinery, since drift keeps pushing new mass into
the leading groups.
"""

import numpy as np

from repro import DynamicCondenser, covariance_compatibility
from repro.datasets.generators import random_covariance
from repro.evaluation import format_table
from repro.stream import DriftingGaussianStream


def main():
    rng = np.random.default_rng(3)
    covariance = random_covariance(4, rng)
    stream = DriftingGaussianStream(
        mean=np.zeros(4),
        covariance=covariance,
        drift_per_step=0.002,
        random_state=3,
    )

    # Bootstrap from a small static batch, then go fully streaming.
    condenser = DynamicCondenser(k=25, random_state=3).fit(
        stream.take(200)
    )

    rows = []
    stream_history = np.empty((0, 4))
    for checkpoint in range(1, 6):
        batch = stream.take(1000)
        stream_history = np.vstack([stream_history, batch])
        condenser.partial_fit(batch)
        model = condenser.model_
        anonymized = condenser.generate()
        mu = covariance_compatibility(stream_history, anonymized)
        rows.append([
            checkpoint * 1000,
            model.n_groups,
            condenser.n_splits,
            f"{model.group_sizes.min()}-{model.group_sizes.max()}",
            f"{mu:.4f}",
        ])
    print(format_table(
        ["records streamed", "groups", "splits", "group size range",
         "mu (stream vs anonymized)"],
        rows,
        title="dynamic condensation under distribution drift (k=25)",
    ))

    report_model = condenser.model_
    print(f"\nfinal state: {report_model.n_groups} groups holding "
          f"{report_model.total_count} records; every group within "
          f"[k, 2k) = [25, 50): "
          f"{bool((report_model.group_sizes >= 25).all())} / "
          f"{bool((report_model.group_sizes < 50).all())}")
    print("raw records retained by the server: 0 "
          "(only group statistics)")


if __name__ == "__main__":
    main()

"""Offline summarization of an emitted JSON-lines event log.

Backs the ``repro telemetry`` subcommand: read a trace written by
:func:`repro.telemetry.exporters.write_events`, aggregate the span
events per name (count / total / mean / max duration), and render a
short operator-facing report together with the counters and histogram
totals from the trailing metrics snapshot, if present.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.exporters import read_events


@dataclass
class SpanAggregate:
    """Duration statistics of all spans sharing one name.

    Attributes
    ----------
    name:
        Span name.
    count:
        Number of finished spans.
    total:
        Summed duration in seconds.
    maximum:
        Longest single duration in seconds.
    """

    name: str
    count: int = 0
    total: float = 0.0
    maximum: float = 0.0

    @property
    def mean(self) -> float:
        """Mean duration in seconds (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Aggregated view of one event log.

    Attributes
    ----------
    spans:
        Per-name span aggregates, keyed by span name.
    n_events:
        Total number of events in the log (all types).
    n_spans:
        Number of span events.
    metrics:
        The trailing metrics snapshot, or an empty dict.
    """

    spans: dict = field(default_factory=dict)
    n_events: int = 0
    n_spans: int = 0
    metrics: dict = field(default_factory=dict)


def summarize_events(events) -> TraceSummary:
    """Aggregate parsed event dicts into a :class:`TraceSummary`.

    Parameters
    ----------
    events:
        Iterable of event dicts (``type`` of ``"span"`` or
        ``"metrics"``; unknown types are counted but otherwise
        ignored).

    Returns
    -------
    TraceSummary
    """
    summary = TraceSummary()
    for event in events:
        summary.n_events += 1
        kind = event.get("type")
        if kind == "span":
            summary.n_spans += 1
            name = str(event.get("name", "<unnamed>"))
            duration = float(event.get("duration", 0.0) or 0.0)
            aggregate = summary.spans.get(name)
            if aggregate is None:
                aggregate = summary.spans[name] = SpanAggregate(name)
            aggregate.count += 1
            aggregate.total += duration
            aggregate.maximum = max(aggregate.maximum, duration)
        elif kind == "metrics":
            summary.metrics = event.get("metrics", {}) or {}
    return summary


def summarize_trace(path) -> TraceSummary:
    """Read and aggregate one JSON-lines event log.

    Parameters
    ----------
    path:
        Event-log file path.

    Returns
    -------
    TraceSummary

    Raises
    ------
    ValueError
        If the file contains a malformed line.
    OSError
        If the file cannot be read.
    """
    return summarize_events(read_events(path))


def format_summary(summary: TraceSummary) -> str:
    """Render a :class:`TraceSummary` as an operator-facing report.

    Parameters
    ----------
    summary:
        Aggregated trace.

    Returns
    -------
    str
        Multi-line text: span table, then counter / gauge values and
        histogram totals when a metrics snapshot is present.
    """
    lines = [
        f"events: {summary.n_events} ({summary.n_spans} spans, "
        f"{len(summary.spans)} distinct names)"
    ]
    if summary.spans:
        lines.append("")
        lines.append(
            f"{'span':<32} {'count':>7} {'total s':>10} "
            f"{'mean ms':>10} {'max ms':>10}"
        )
        ordered = sorted(
            summary.spans.values(), key=lambda a: (-a.total, a.name)
        )
        for aggregate in ordered:
            lines.append(
                f"{aggregate.name:<32} {aggregate.count:>7} "
                f"{aggregate.total:>10.4f} "
                f"{aggregate.mean * 1000.0:>10.3f} "
                f"{aggregate.maximum * 1000.0:>10.3f}"
            )
    if summary.metrics:
        flat = []
        histograms = []
        for name in sorted(summary.metrics):
            payload = summary.metrics[name]
            kind = payload.get("kind", "untyped")
            if kind == "histogram":
                for key, series in sorted(
                    payload.get("series", {}).items()
                ):
                    label = f"{name}{{{key}}}" if key else name
                    histograms.append(
                        f"{label:<44} count={series.get('count', 0)} "
                        f"sum={series.get('sum', 0.0):.6g}"
                    )
            else:
                for key, value in sorted(
                    payload.get("series", {}).items()
                ):
                    label = f"{name}{{{key}}}" if key else name
                    flat.append(f"{label:<44} {value:.6g} ({kind})")
        if flat:
            lines.append("")
            lines.append("metrics:")
            lines.extend(f"  {entry}" for entry in flat)
        if histograms:
            lines.append("")
            lines.append("histograms:")
            lines.extend(f"  {entry}" for entry in histograms)
    return "\n".join(lines)

"""Exporters: Prometheus text format and a JSON-lines event log.

Two output formats, both dependency-free:

* :func:`render_prometheus` / :func:`write_prometheus` — the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` histogram samples), ready for a node exporter's
  textfile collector or a CI artifact.
* :func:`write_events` / :func:`read_events` — one JSON object per
  line: finished-span events first, then a single ``type="metrics"``
  snapshot line so a trace file is self-contained.

Dotted repo metric names (``dynamic.absorbed``) are sanitized into the
Prometheus grammar and prefixed ``repro_``; counters additionally get
the conventional ``_total`` suffix.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def prometheus_name(name: str, kind: str = "") -> str:
    """Sanitize a dotted metric name into the Prometheus grammar.

    Parameters
    ----------
    name:
        Repo-style dotted name, e.g. ``"dynamic.absorbed"``.
    kind:
        Metric kind; counters get a ``_total`` suffix.

    Returns
    -------
    str
        A valid Prometheus metric name, prefixed ``repro_``.
    """
    sanitized = _INVALID_CHARS.sub("_", name)
    if not sanitized.startswith("repro_"):
        sanitized = f"repro_{sanitized}"
    if kind == "counter" and not sanitized.endswith("_total"):
        sanitized = f"{sanitized}_total"
    return sanitized


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(char, char) for char in value)


def _render_labels(key: tuple, extra: tuple = ()) -> str:
    """Render a labels key (plus extra pairs) as ``{k="v",...}``."""
    pairs = tuple(key) + tuple(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def render_prometheus(registry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Parameters
    ----------
    registry:
        A :class:`repro.telemetry.metrics.MetricsRegistry`.

    Returns
    -------
    str
        The full exposition document, terminated by a newline (empty
        string for an empty registry).
    """
    lines: list = []
    for metric in registry.metrics():
        exposed = prometheus_name(metric.name, metric.kind)
        base = prometheus_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {exposed} {metric.help}")
        lines.append(f"# TYPE {exposed} {metric.kind}")
        if metric.kind == "histogram":
            _render_histogram(lines, metric, base)
            continue
        for key, value in sorted(metric.series().items()):
            lines.append(
                f"{exposed}{_render_labels(key)} {_format_value(value)}"
            )
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def _render_histogram(lines: list, metric, base: str) -> None:
    """Append one histogram's cumulative samples to ``lines``."""
    bounds = tuple(metric.buckets) + (math.inf,)
    for key, series in sorted(metric.series().items()):
        cumulative = 0
        for bound, count in zip(bounds, series.bucket_counts):
            cumulative += count
            le = ("le", _format_value(bound))
            lines.append(
                f"{base}_bucket{_render_labels(key, (le,))} {cumulative}"
            )
        lines.append(
            f"{base}_sum{_render_labels(key)} "
            f"{_format_value(series.sum)}"
        )
        lines.append(f"{base}_count{_render_labels(key)} {series.count}")


def write_prometheus(path, registry) -> None:
    """Write :func:`render_prometheus` output to ``path``.

    Parameters
    ----------
    path:
        Destination file path.
    registry:
        Registry to export.
    """
    Path(path).write_text(render_prometheus(registry), encoding="utf-8")


def write_events(path, events, registry=None) -> None:
    """Write a JSON-lines event log: span events, then a metrics line.

    Parameters
    ----------
    path:
        Destination file path.
    events:
        Iterable of JSON-able event dicts (finished spans).
    registry:
        When given, a final ``{"type": "metrics", ...}`` line holding
        the registry snapshot makes the log self-contained.
    """
    with Path(path).open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
        if registry is not None:
            handle.write(json.dumps(
                {"type": "metrics", "metrics": registry.snapshot()},
                sort_keys=True,
            ))
            handle.write("\n")


def read_events(path) -> list:
    """Parse a JSON-lines event log written by :func:`write_events`.

    Parameters
    ----------
    path:
        Event-log file path.

    Returns
    -------
    list of dict
        One dict per non-empty line.

    Raises
    ------
    ValueError
        If a line is not valid JSON or not a JSON object.
    """
    events: list = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: not valid JSON: {error}"
                ) from None
            if not isinstance(event, dict):
                raise ValueError(
                    f"{path}:{number}: expected a JSON object, got "
                    f"{type(event).__name__}"
                )
            events.append(event)
    return events

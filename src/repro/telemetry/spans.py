"""Lightweight tracing spans.

A span measures one named unit of work on a monotonic clock
(:func:`time.perf_counter` by default — wall-clock adjustments can
never produce a negative duration).  Spans are context managers and
nest: entering a span pushes it on the owning pipeline's stack, so
children record their parent's id and an offline trace can be
reassembled into a tree.

Span *attributes* carry small scalar facts (a record count, a ``k``
value) and are validated through the same scalar guard as metric
values: telemetry never carries raw records.
"""

from __future__ import annotations

from repro.telemetry.metrics import check_scalar


class Span:
    """One timed, nestable unit of work.

    Spans are produced by a pipeline's ``span()`` method and used as
    context managers::

        with pipeline.span("condense.create_groups") as span:
            ...
            span.set_attribute("n_groups", len(groups))

    Entering assigns the span id and parent (the innermost open span on
    the same thread); exiting stamps the duration and hands the
    finished span to the pipeline's event buffer.

    Parameters
    ----------
    name:
        Dotted span name, e.g. ``"dynamic.ingest"``.
    pipeline:
        The owning :class:`repro.telemetry.pipeline.TelemetryPipeline`.
    """

    __slots__ = (
        "name", "pipeline", "span_id", "parent_id", "attributes",
        "start_time", "end_time",
    )

    def __init__(self, name: str, pipeline):
        self.name = name
        self.pipeline = pipeline
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.attributes: dict = {}
        self.start_time: float | None = None
        self.end_time: float | None = None

    def __enter__(self) -> "Span":
        self.pipeline._enter_span(self)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.pipeline._exit_span(self, error=exc_type is not None)
        return False

    def set_attribute(self, name: str, value) -> None:
        """Attach one scalar (or short string) fact to the span."""
        if isinstance(value, str):
            self.attributes[name] = value
        else:
            self.attributes[name] = check_scalar(value)

    @property
    def duration(self) -> float:
        """Elapsed seconds; 0.0 until the span has finished."""
        if self.start_time is None or self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def to_event(self) -> dict:
        """Render the finished span as a JSON-able trace event.

        Returns
        -------
        dict
            Event payload with ``type="span"``, identity, timing and
            attributes.
        """
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start_time,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, span_id={self.span_id}, "
            f"parent_id={self.parent_id})"
        )


class NullSpan:
    """No-op stand-in for :class:`Span` when telemetry is disabled.

    A single shared instance is handed out for every disabled-path
    ``span()`` call, so the disabled fast path allocates nothing per
    event.  It is stateless and therefore safely re-entrant.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        return False

    def set_attribute(self, name: str, value) -> None:
        """Discard the attribute (telemetry is disabled)."""
        return None

    @property
    def duration(self) -> float:
        """Always 0.0 — nothing was measured."""
        return 0.0

    def __repr__(self) -> str:
        return "NullSpan()"


#: The shared disabled-path span instance.
NULL_SPAN = NullSpan()

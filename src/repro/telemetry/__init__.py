"""repro.telemetry — privacy-aware, dependency-free observability.

The condensation hot paths (static condensation, dynamic/streaming
maintenance, generation, neighbour search) are instrumented against
this package's module-level API::

    from repro import telemetry

    telemetry.counter_inc("dynamic.absorbed")
    with telemetry.span("dynamic.ingest") as span:
        ...
        span.set_attribute("records", n)

By default the process pipeline is the shared
:data:`~repro.telemetry.pipeline.NULL_PIPELINE`: every call is a no-op
that returns a shared singleton and allocates nothing, so shipping the
instrumentation costs one function call per event.  Enabling telemetry
(:func:`configure`, or the CLI's ``--metrics-out`` / ``--trace-out``)
swaps in a :class:`~repro.telemetry.pipeline.TelemetryPipeline` that
records metrics into a registry and finished spans into an event
buffer, exportable as Prometheus text and a JSON-lines trace.

Privacy stance: telemetry may carry counts, timings and group-level
aggregates — never raw records.  This is enforced three ways: values
and labels are runtime-checked to be scalars
(:func:`repro.telemetry.metrics.check_scalar`), the PRIV-002 analyzer
rule statically rejects record-like arguments at call sites in
``repro/core`` and ``repro/stream``, and the span API has no hook for
attaching bulk payloads.  See ``docs/telemetry.md``.
"""

from __future__ import annotations

from repro.telemetry.exporters import (
    prometheus_name,
    read_events,
    render_prometheus,
    write_events,
    write_prometheus,
)
from repro.telemetry.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_scalar,
)
from repro.telemetry.pipeline import (
    NULL_PIPELINE,
    NullPipeline,
    TelemetryPipeline,
)
from repro.telemetry.spans import NULL_SPAN, NullSpan, Span
from repro.telemetry.summary import (
    SpanAggregate,
    TraceSummary,
    format_summary,
    summarize_events,
    summarize_trace,
)

_pipeline = NULL_PIPELINE


def get_pipeline():
    """The process-local pipeline instrumented code reports into.

    Returns
    -------
    TelemetryPipeline or NullPipeline
        The active pipeline (the shared null pipeline by default).
    """
    return _pipeline


def set_pipeline(pipeline):
    """Install ``pipeline`` as the process-local default.

    Parameters
    ----------
    pipeline:
        A :class:`TelemetryPipeline` or :class:`NullPipeline`.

    Returns
    -------
    TelemetryPipeline or NullPipeline
        The previously installed pipeline, so callers can restore it.
    """
    global _pipeline
    previous = _pipeline
    _pipeline = pipeline
    return previous


def configure(registry=None, max_events: int = 100_000):
    """Create, install and return a live pipeline.

    Parameters
    ----------
    registry:
        Metrics registry to write into; a fresh one by default.
    max_events:
        Bound on buffered finished-span events (oldest dropped first).

    Returns
    -------
    TelemetryPipeline
        The newly installed pipeline.
    """
    pipeline = TelemetryPipeline(registry=registry, max_events=max_events)
    set_pipeline(pipeline)
    return pipeline


def disable():
    """Restore the disabled fast path (the shared null pipeline).

    Returns
    -------
    TelemetryPipeline or NullPipeline
        The pipeline that was active before, so callers can still
        export its contents.
    """
    return set_pipeline(NULL_PIPELINE)


def enabled() -> bool:
    """Whether a live pipeline is installed.

    Returns
    -------
    bool
    """
    return _pipeline.enabled


def span(name: str):
    """Open a span on the active pipeline (use as a context manager).

    Parameters
    ----------
    name:
        Dotted span name, e.g. ``"condense.create_groups"``.

    Returns
    -------
    Span or NullSpan
        A live span, or the shared no-op span when disabled.
    """
    return _pipeline.span(name)


def current_span():
    """The innermost open span on this thread, if telemetry is live.

    Returns
    -------
    Span or None
    """
    return _pipeline.current_span()


def counter_inc(name: str, amount=1.0, labels=None) -> None:
    """Increment a counter on the active pipeline.

    Parameters
    ----------
    name:
        Dotted counter name.
    amount:
        Non-negative scalar increment.
    labels:
        Optional mapping of label name to scalar/string value.
    """
    _pipeline.counter_inc(name, amount, labels=labels)


def gauge_set(name: str, value, labels=None) -> None:
    """Set a gauge on the active pipeline.

    Parameters
    ----------
    name:
        Dotted gauge name.
    value:
        Scalar value.
    labels:
        Optional mapping of label name to scalar/string value.
    """
    _pipeline.gauge_set(name, value, labels=labels)


def histogram_observe(name: str, value, labels=None,
                      buckets=DEFAULT_SECONDS_BUCKETS) -> None:
    """Observe a value into a histogram on the active pipeline.

    Parameters
    ----------
    name:
        Dotted histogram name.
    value:
        Scalar observation.
    labels:
        Optional mapping of label name to scalar/string value.
    buckets:
        Fixed bucket upper bounds used if the histogram does not exist
        yet (ignored afterwards).
    """
    _pipeline.histogram_observe(name, value, labels=labels, buckets=buckets)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullPipeline",
    "NullSpan",
    "Span",
    "SpanAggregate",
    "TelemetryPipeline",
    "TraceSummary",
    "NULL_PIPELINE",
    "NULL_SPAN",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "check_scalar",
    "configure",
    "counter_inc",
    "current_span",
    "disable",
    "enabled",
    "format_summary",
    "gauge_set",
    "get_pipeline",
    "histogram_observe",
    "prometheus_name",
    "read_events",
    "render_prometheus",
    "set_pipeline",
    "span",
    "summarize_events",
    "summarize_trace",
    "write_events",
    "write_prometheus",
]

"""Metric instruments and the registry that owns them.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (records absorbed,
  groups formed, splits);
* :class:`Gauge` — a value that can go up and down (live group count);
* :class:`Histogram` — observations bucketed against *fixed* upper
  bounds (group sizes, per-stage latencies), so bucket counts from a
  seeded run are bit-for-bit reproducible.

Every instrument supports optional labels (small string-keyed
dimensions such as an algorithm name).  Labels and observed values are
validated to be *scalars*: telemetry in this repository may carry
counts, timings and group-level aggregates, but never raw records
(the paper's statistics-only invariant, enforced statically by the
PRIV-002 analyzer rule and dynamically by :func:`check_scalar`).
"""

from __future__ import annotations

import bisect
import threading

#: Default latency buckets, in seconds (sub-millisecond to ten seconds).
DEFAULT_SECONDS_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default size buckets for group / candidate-set cardinalities.
DEFAULT_SIZE_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
    2000.0, 5000.0, 10000.0,
)

_SCALAR_MESSAGE = (
    "telemetry may carry only scalar counts, timings and group-level "
    "aggregates — got {type_name}; never pass record arrays as metric "
    "values or labels (privacy invariant, see docs/telemetry.md)"
)


def check_scalar(value) -> float:
    """Coerce a telemetry value to ``float``, rejecting non-scalars.

    This is the runtime backstop of the privacy stance: arrays, lists
    and other containers — anything that could smuggle raw records into
    an exported metric — are rejected.  Zero-dimensional numpy scalars
    are accepted.

    Parameters
    ----------
    value:
        Candidate metric value.

    Returns
    -------
    float
        The value as a python float.

    Raises
    ------
    TypeError
        If ``value`` is not a scalar.
    """
    if isinstance(value, (bool, int, float)):
        return float(value)
    shape = getattr(value, "shape", None)
    if shape == ():
        return float(value)
    raise TypeError(_SCALAR_MESSAGE.format(type_name=type(value).__name__))


def labels_key(labels) -> tuple:
    """Normalize a labels mapping into a hashable, sorted key.

    Parameters
    ----------
    labels:
        ``None`` or a mapping of label name to scalar value.

    Returns
    -------
    tuple of (str, str)
        Sorted ``(name, value)`` pairs; empty for ``None``.

    Raises
    ------
    TypeError
        If a label name is not a string or a label value is not a
        string/scalar.
    """
    if not labels:
        return ()
    pairs = []
    for name, value in labels.items():
        if not isinstance(name, str):
            raise TypeError(
                f"label names must be strings, got {type(name).__name__}"
            )
        if isinstance(value, str):
            rendered = value
        else:
            rendered = repr(check_scalar(value))
        pairs.append((name, rendered))
    return tuple(sorted(pairs))


class Metric:
    """Base class for one named instrument with labelled series.

    Parameters
    ----------
    name:
        Dotted metric name, e.g. ``"dynamic.absorbed"``.
    help:
        One-line description, exported as the Prometheus ``# HELP``.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: dict = {}

    def series(self) -> dict:
        """Snapshot of all labelled series.

        Returns
        -------
        dict
            Mapping from a labels key (tuple of ``(name, value)``
            pairs) to the series state.
        """
        with self._lock:
            return dict(self._series)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"n_series={len(self._series)})"
        )


class Counter(Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def inc(self, amount=1.0, labels=None) -> None:
        """Add ``amount`` (non-negative) to the counter."""
        amount = check_scalar(amount)
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} can only increase, got {amount}"
            )
        key = labels_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, labels=None) -> float:
        """Current total for one labelled series (0.0 if never set)."""
        with self._lock:
            return self._series.get(labels_key(labels), 0.0)

    def snapshot(self) -> dict:
        """JSON-able state of the counter."""
        return _flat_snapshot(self)


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value, labels=None) -> None:
        """Set the gauge to ``value``."""
        value = check_scalar(value)
        key = labels_key(labels)
        with self._lock:
            self._series[key] = value

    def inc(self, amount=1.0, labels=None) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        amount = check_scalar(amount)
        key = labels_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, labels=None) -> float:
        """Current value for one labelled series (0.0 if never set)."""
        with self._lock:
            return self._series.get(labels_key(labels), 0.0)

    def snapshot(self) -> dict:
        """JSON-able state of the gauge."""
        return _flat_snapshot(self)


class _HistogramSeries:
    """Bucket counts, sum and count of one labelled histogram series."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * (n_buckets + 1)  # final slot = +Inf
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Observations bucketed against fixed upper bounds.

    Parameters
    ----------
    name:
        Dotted metric name.
    help:
        One-line description.
    buckets:
        Strictly increasing finite upper bounds.  An implicit ``+Inf``
        bucket is always appended.  Fixed at construction so bucket
        counts from a seeded run are deterministic.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets=DEFAULT_SECONDS_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly increasing: "
                f"{bounds}"
            )
        self.buckets = bounds

    def observe(self, value, labels=None) -> None:
        """Record one observation into its bucket."""
        value = check_scalar(value)
        key = labels_key(labels)
        position = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets)
                )
            series.bucket_counts[position] += 1
            series.sum += value
            series.count += 1

    def count(self, labels=None) -> int:
        """Number of observations in one labelled series."""
        with self._lock:
            series = self._series.get(labels_key(labels))
            return 0 if series is None else series.count

    def bucket_counts(self, labels=None) -> list:
        """Per-bucket (non-cumulative) observation counts.

        Parameters
        ----------
        labels:
            Labels of the series to read.

        Returns
        -------
        list of int
            One count per finite bucket plus a final ``+Inf`` count;
            all zeros if the series was never observed.
        """
        with self._lock:
            series = self._series.get(labels_key(labels))
            if series is None:
                return [0] * (len(self.buckets) + 1)
            return list(series.bucket_counts)

    def snapshot(self) -> dict:
        """JSON-able state of the histogram."""
        rendered = {}
        with self._lock:
            for key, series in self._series.items():
                rendered[_render_key(key)] = {
                    "buckets": {
                        _bound_label(bound): count
                        for bound, count in zip(
                            tuple(self.buckets) + (float("inf"),),
                            series.bucket_counts,
                        )
                    },
                    "sum": series.sum,
                    "count": series.count,
                }
        return {
            "kind": self.kind,
            "help": self.help,
            "bucket_bounds": list(self.buckets),
            "series": rendered,
        }


def _render_key(key: tuple) -> str:
    """Render a labels key as a stable string for JSON snapshots."""
    if not key:
        return ""
    return ",".join(f"{name}={value}" for name, value in key)


def _bound_label(bound: float) -> str:
    """Prometheus-style ``le`` label for one bucket bound."""
    return "+Inf" if bound == float("inf") else repr(bound)


def _flat_snapshot(metric: Metric) -> dict:
    """JSON-able state shared by counters and gauges."""
    with metric._lock:
        series = {
            _render_key(key): value
            for key, value in metric._series.items()
        }
    return {"kind": metric.kind, "help": metric.help, "series": series}


class MetricsRegistry:
    """Process-local home of every instrument, keyed by name.

    ``counter()`` / ``gauge()`` / ``histogram()`` are get-or-create:
    instrumented code can call them on every event without coordinating
    initialization.  Requesting an existing name with a different kind
    raises, so two call sites cannot silently disagree about what a
    metric means.
    """

    def __init__(self):
        self._metrics: dict = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets=DEFAULT_SECONDS_BUCKETS) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def _get_or_create(self, kind: type, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = kind(name, help, **kwargs)
            elif type(metric) is not kind:
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a "
                    f"{kind.kind}"
                )
            return metric

    def get(self, name: str):
        """The metric called ``name``, or ``None``.

        Parameters
        ----------
        name:
            Metric name to look up.

        Returns
        -------
        Metric or None
        """
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list:
        """All registered metrics, sorted by name.

        Returns
        -------
        list of Metric
        """
        with self._lock:
            return [
                self._metrics[name] for name in sorted(self._metrics)
            ]

    def snapshot(self) -> dict:
        """JSON-able snapshot of every metric.

        Returns
        -------
        dict
            Mapping from metric name to that metric's snapshot dict.
        """
        return {
            metric.name: metric.snapshot() for metric in self.metrics()
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry(n_metrics={len(self)})"

"""Telemetry pipelines — the live one and the disabled fast path.

A *pipeline* is what instrumented code talks to: it owns a metrics
registry, assigns span ids, tracks the per-thread stack of open spans,
and buffers finished spans as JSON-able events.  Two implementations
share that surface:

* :class:`TelemetryPipeline` — the real thing;
* :class:`NullPipeline` — every call is a no-op returning shared
  singletons, so leaving telemetry off (the default) costs one
  function call per event and allocates nothing.

The process-local default pipeline lives in :mod:`repro.telemetry`'s
package namespace; instrumented modules reach it through the
module-level convenience functions there.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

from repro.telemetry.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
)
from repro.telemetry.spans import NULL_SPAN, Span


class NullPipeline:
    """Disabled telemetry: every operation is a cheap no-op.

    All methods either return ``None`` or a shared singleton; no state
    is kept and nothing is allocated per event.
    """

    enabled = False

    def span(self, name: str):
        """Return the shared no-op span."""
        return NULL_SPAN

    def counter_inc(self, name: str, amount=1.0, labels=None) -> None:
        """Discard a counter increment."""
        return None

    def gauge_set(self, name: str, value=0.0, labels=None) -> None:
        """Discard a gauge update."""
        return None

    def histogram_observe(self, name: str, value=0.0, labels=None,
                          buckets=DEFAULT_SECONDS_BUCKETS) -> None:
        """Discard a histogram observation."""
        return None

    def current_span(self):
        """Always ``None`` — no spans are tracked."""
        return None

    def finished_spans(self) -> list:
        """Always empty — no events are buffered."""
        return []

    def __repr__(self) -> str:
        return "NullPipeline()"


#: The shared disabled pipeline (the process default until configured).
NULL_PIPELINE = NullPipeline()


class TelemetryPipeline:
    """Live telemetry: a registry plus span bookkeeping.

    Parameters
    ----------
    registry:
        Metrics registry to write into; a fresh one by default.
    clock:
        Zero-argument callable returning seconds on a monotonic clock.
        Defaults to :func:`time.perf_counter`; tests inject a fake
        clock for deterministic durations.
    max_events:
        Upper bound on buffered finished-span events; the oldest are
        dropped first, so a long-running process cannot grow without
        bound.
    """

    enabled = True

    def __init__(self, registry=None, clock=time.perf_counter,
                 max_events: int = 100_000):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self._events: deque = deque(maxlen=int(max_events))
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.n_dropped = 0

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def span(self, name: str) -> Span:
        """Create a span owned by this pipeline (enter it to start)."""
        return Span(name, self)

    def current_span(self):
        """The innermost open span on this thread, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _enter_span(self, span: Span) -> None:
        """Assign identity/parent and start the clock (Span.__enter__)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        span.span_id = next(self._ids)
        span.parent_id = stack[-1].span_id if stack else None
        stack.append(span)
        span.start_time = self._clock()

    def _exit_span(self, span: Span, error: bool = False) -> None:
        """Stop the clock and buffer the finished span (Span.__exit__)."""
        span.end_time = self._clock()
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:
            # Out-of-order exit (generator abandoned mid-span): unwind
            # to keep parentage of later spans consistent.
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        if error:
            span.attributes.setdefault("error", 1.0)
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self.n_dropped += 1
            self._events.append(span.to_event())

    def finished_spans(self) -> list:
        """Buffered finished-span events, oldest first.

        Returns
        -------
        list of dict
            JSON-able span events (see :meth:`Span.to_event`).
        """
        with self._lock:
            return list(self._events)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def counter_inc(self, name: str, amount=1.0, labels=None) -> None:
        """Increment the counter called ``name``."""
        self.registry.counter(name).inc(amount, labels=labels)

    def gauge_set(self, name: str, value=0.0, labels=None) -> None:
        """Set the gauge called ``name``."""
        self.registry.gauge(name).set(value, labels=labels)

    def histogram_observe(self, name: str, value=0.0, labels=None,
                          buckets=DEFAULT_SECONDS_BUCKETS) -> None:
        """Observe ``value`` into the histogram called ``name``."""
        self.registry.histogram(name, buckets=buckets).observe(
            value, labels=labels
        )

    def __repr__(self) -> str:
        return (
            f"TelemetryPipeline(n_metrics={len(self.registry)}, "
            f"n_events={len(self._events)})"
        )

"""Utility reporting for anonymized releases.

The paper evaluates utility through two lenses — downstream
classification accuracy and the covariance compatibility coefficient μ.
This module widens that into a release-readiness report a practitioner
would actually run before publishing: first and second moment fidelity,
per-attribute marginal distance (two-sample Kolmogorov-Smirnov,
implemented from scratch), and correlation-matrix error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.symmetric import correlation_from_covariance
from repro.metrics.compatibility import (
    covariance_compatibility,
    covariance_matrix,
    mean_compatibility,
)


def ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic.

    The maximum vertical distance between the two empirical CDFs; 0 for
    identical samples, 1 for disjoint supports.

    Parameters
    ----------
    sample_a, sample_b:
        Non-empty 1-D samples to compare.

    Returns
    -------
    float
        KS statistic in ``[0, 1]``.

    Raises
    ------
    ValueError
        If either sample is empty.
    """
    sample_a = np.sort(np.asarray(sample_a, dtype=float))
    sample_b = np.sort(np.asarray(sample_b, dtype=float))
    if sample_a.size == 0 or sample_b.size == 0:
        raise ValueError("KS statistic needs non-empty samples")
    merged = np.concatenate([sample_a, sample_b])
    cdf_a = np.searchsorted(sample_a, merged, side="right") / sample_a.size
    cdf_b = np.searchsorted(sample_b, merged, side="right") / sample_b.size
    return float(np.abs(cdf_a - cdf_b).max())


@dataclass(frozen=True)
class UtilityReport:
    """Fidelity of an anonymized release against its original.

    Attributes
    ----------
    mu:
        Covariance compatibility coefficient (§4 of the paper).
    mean_error:
        Relative error of the mean vector.
    correlation_error:
        Max absolute difference between the two correlation matrices.
    ks_per_attribute:
        Two-sample KS statistic per attribute (marginal fidelity).
    n_original, n_anonymized:
        Row counts of the two data sets.
    """

    mu: float
    mean_error: float
    correlation_error: float
    ks_per_attribute: np.ndarray
    n_original: int
    n_anonymized: int

    @property
    def max_ks(self) -> float:
        """Worst marginal distance across attributes."""
        return float(self.ks_per_attribute.max())

    @property
    def mean_ks(self) -> float:
        """Average marginal distance across attributes."""
        return float(self.ks_per_attribute.mean())

    def summary_lines(self) -> list[str]:
        """Human-readable summary for logs and examples."""
        return [
            f"covariance compatibility mu: {self.mu:.4f}",
            f"mean vector relative error:  {self.mean_error:.4f}",
            f"correlation matrix error:    {self.correlation_error:.4f}",
            (
                f"marginal KS statistic:       mean {self.mean_ks:.4f}, "
                f"max {self.max_ks:.4f}"
            ),
            (
                f"rows: {self.n_original} original -> "
                f"{self.n_anonymized} anonymized"
            ),
        ]


def utility_report(
    original: np.ndarray, anonymized: np.ndarray
) -> UtilityReport:
    """Compare an anonymized release against the original records.

    Parameters
    ----------
    original:
        The original record array, shape ``(n, d)``.
    anonymized:
        The anonymized record array, shape ``(m, d)``.

    Returns
    -------
    UtilityReport
        Mean/covariance compatibility and per-attribute KS statistics.

    Raises
    ------
    ValueError
        If either array is not 2-D or dimensionalities differ.
    """
    original = np.asarray(original, dtype=float)
    anonymized = np.asarray(anonymized, dtype=float)
    if original.ndim != 2 or anonymized.ndim != 2:
        raise ValueError("both data sets must be 2-D record arrays")
    if original.shape[1] != anonymized.shape[1]:
        raise ValueError(
            "dimensionality mismatch: "
            f"{original.shape[1]} vs {anonymized.shape[1]}"
        )
    correlation_original = correlation_from_covariance(
        covariance_matrix(original)
    )
    correlation_anonymized = correlation_from_covariance(
        covariance_matrix(anonymized)
    )
    ks_values = np.array([
        ks_statistic(original[:, column], anonymized[:, column])
        for column in range(original.shape[1])
    ])
    return UtilityReport(
        mu=covariance_compatibility(original, anonymized),
        mean_error=mean_compatibility(original, anonymized),
        correlation_error=float(
            np.abs(correlation_original - correlation_anonymized).max()
        ),
        ks_per_attribute=ks_values,
        n_original=original.shape[0],
        n_anonymized=anonymized.shape[0],
    )

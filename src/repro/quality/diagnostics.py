"""Per-group diagnostics for locality sensitivity.

The paper's §2.2: the locally-uniform approximation degrades where a
fixed-size group does *not* represent a small spatial locality — sparse
regions and outliers.  These diagnostics surface exactly those groups
so a publisher can see where the release's fidelity is weakest before
shipping it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.statistics import CondensedModel
from repro.neighbors.brute import pairwise_distances


@dataclass(frozen=True)
class GroupDiagnostics:
    """Shape statistics of one condensed group.

    Attributes
    ----------
    index:
        Position of the group in the model.
    count:
        Records condensed into the group.
    extent:
        Approximate spatial diameter: the uniform-model range along the
        leading eigenvector, ``sqrt(12 λ₁)``.
    total_variance:
        Trace of the group covariance.
    elongation:
        ``λ₁ / mean(λ)`` — 1 for a sphere, large for a needle; strongly
        elongated groups are the ones whose locality assumption is most
        stressed.
    isolation:
        Distance from this group's centroid to the nearest other
        centroid, over the group's own extent (clipped to a minimum
        extent).  Large values flag groups sitting alone in sparse
        regions — the paper's hard case.
    """

    index: int
    count: int
    extent: float
    total_variance: float
    elongation: float
    isolation: float


def group_diagnostics(model: CondensedModel) -> list[GroupDiagnostics]:
    """Compute :class:`GroupDiagnostics` for every group of a model.

    Parameters
    ----------
    model:
        Condensed model to diagnose.

    Returns
    -------
    list of GroupDiagnostics
        One entry per group, in model order.
    """
    centroids = model.centroids()
    if model.n_groups > 1:
        centroid_distances = pairwise_distances(centroids, centroids)
        np.fill_diagonal(centroid_distances, np.inf)
        nearest = centroid_distances.min(axis=1)
    else:
        nearest = np.array([np.inf])
    diagnostics = []
    for index, group in enumerate(model.groups):
        eigenvalues, __ = group.eigen_system()
        leading = float(eigenvalues[0])
        extent = float(np.sqrt(12.0 * leading))
        mean_eigenvalue = float(eigenvalues.mean())
        elongation = (
            leading / mean_eigenvalue if mean_eigenvalue > 0 else 1.0
        )
        scale = max(extent, 1e-12)
        isolation = float(nearest[index] / scale)
        diagnostics.append(GroupDiagnostics(
            index=index,
            count=group.count,
            extent=extent,
            total_variance=float(eigenvalues.sum()),
            elongation=elongation,
            isolation=isolation,
        ))
    return diagnostics


def flag_sparse_groups(
    model: CondensedModel,
    extent_factor: float = 3.0,
) -> list[int]:
    """Indices of groups whose extent is an outlier among the groups.

    A group spanning more than ``extent_factor`` times the median group
    extent condenses a sparse region: its uniform approximation is the
    least faithful and its generated records the most diffuse (§2.2).

    Parameters
    ----------
    model:
        Condensed model to inspect.
    extent_factor:
        Multiple of the median extent above which a group is flagged;
        must be positive.

    Returns
    -------
    list of int
        Indices of the flagged groups.

    Raises
    ------
    ValueError
        If ``extent_factor`` is not positive.
    """
    if extent_factor <= 0:
        raise ValueError(
            f"extent_factor must be positive, got {extent_factor}"
        )
    diagnostics = group_diagnostics(model)
    extents = np.array([entry.extent for entry in diagnostics])
    median_extent = float(np.median(extents))
    if median_extent == 0.0:
        return [
            entry.index for entry in diagnostics if entry.extent > 0.0
        ]
    return [
        entry.index
        for entry in diagnostics
        if entry.extent > extent_factor * median_extent
    ]

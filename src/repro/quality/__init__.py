"""Release-quality diagnostics for anonymized data."""

from repro.quality.diagnostics import (
    GroupDiagnostics,
    flag_sparse_groups,
    group_diagnostics,
)
from repro.quality.outliers import knn_outlier_scores, screen_outliers
from repro.quality.report import UtilityReport, ks_statistic, utility_report

__all__ = [
    "GroupDiagnostics",
    "flag_sparse_groups",
    "group_diagnostics",
    "knn_outlier_scores",
    "screen_outliers",
    "UtilityReport",
    "ks_statistic",
    "utility_report",
]

"""Outlier pre-screening for condensation inputs.

The paper's §2.2 observes that outliers are "inherently more difficult
to mask": a fixed-size group containing one gets a huge extent, its
generated records scatter, and the release's local fidelity drops (the
behaviour A4/A10 quantify).  A publisher may prefer to screen extreme
records *before* condensation — either to drop them or to handle them
out of band.  This module provides the detector: a k-NN-distance score
(the standard density-based criterion) with a percentile threshold.
"""

from __future__ import annotations

import numpy as np

from repro.neighbors.brute import BruteForceIndex


def knn_outlier_scores(data: np.ndarray, n_neighbors: int = 5
                       ) -> np.ndarray:
    """Mean distance to each record's ``n_neighbors`` nearest others.

    Larger scores mean sparser neighbourhoods; the classic
    distance-based outlier criterion.

    Parameters
    ----------
    data:
        Record array, shape ``(n, d)``.
    n_neighbors:
        Neighbourhood size; must be in ``[1, n - 1]``.

    Returns
    -------
    numpy.ndarray, shape (n,)
        Mean neighbour distance per record.

    Raises
    ------
    ValueError
        If ``data`` is not 2-D or ``n_neighbors`` is out of range.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if n_neighbors < 1:
        raise ValueError(
            f"n_neighbors must be >= 1, got {n_neighbors}"
        )
    if data.shape[0] <= n_neighbors:
        raise ValueError(
            f"need more than n_neighbors={n_neighbors} records, "
            f"got {data.shape[0]}"
        )
    index = BruteForceIndex(data)
    # k+1 because each record is its own nearest neighbour.
    distances, __ = index.query(data, k=n_neighbors + 1)
    return distances[:, 1:].mean(axis=1)


def screen_outliers(
    data: np.ndarray,
    n_neighbors: int = 5,
    contamination: float = 0.02,
):
    """Split records into inliers and flagged outliers.

    Parameters
    ----------
    data:
        Record array of shape ``(n, d)``.
    n_neighbors:
        Neighbourhood size of the score.
    contamination:
        Fraction of records to flag (the top-scoring ones).

    Returns
    -------
    (inlier_indices, outlier_indices)
        Index arrays partitioning ``range(n)``; outliers are the
        ``ceil(contamination * n)`` records with the largest scores.
    """
    if not 0.0 <= contamination < 1.0:
        raise ValueError(
            f"contamination must be in [0, 1), got {contamination}"
        )
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    if contamination == 0.0:
        return np.arange(n), np.array([], dtype=np.int64)
    scores = knn_outlier_scores(data, n_neighbors=n_neighbors)
    n_outliers = int(np.ceil(contamination * n))
    order = np.argsort(scores)
    inliers = np.sort(order[: n - n_outliers])
    outliers = np.sort(order[n - n_outliers:])
    return inliers, outliers

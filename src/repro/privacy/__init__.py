"""Privacy accounting and empirical attacks."""

from repro.privacy.attacks import (
    AttributeDisclosureResult,
    LinkageAttackResult,
    attribute_disclosure_attack,
    generate_with_provenance,
    linkage_attack,
)
from repro.privacy.membership import (
    MembershipInferenceResult,
    membership_inference_attack,
    roc_auc,
)
from repro.privacy.metrics import (
    PrivacyReport,
    indistinguishability_level,
    privacy_report,
)

__all__ = [
    "AttributeDisclosureResult",
    "attribute_disclosure_attack",
    "LinkageAttackResult",
    "generate_with_provenance",
    "linkage_attack",
    "MembershipInferenceResult",
    "membership_inference_attack",
    "roc_auc",
    "PrivacyReport",
    "indistinguishability_level",
    "privacy_report",
]

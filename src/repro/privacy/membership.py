"""Membership inference against anonymized releases.

Beyond re-identification, a modern privacy question is *membership*:
given the release, can an adversary tell whether a particular record
was part of the condensed data set at all?  The standard black-box
attack scores each candidate by its distance to the nearest released
record (members should sit closer to the release's support) and is
evaluated as a binary classifier over known members vs non-members.

Condensation blunts this attack two ways: generated records are
displaced from the originals inside each group's support, and the
support covers an entire k-record locality rather than single points.
The attack's AUC against k is the empirical measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.neighbors.brute import BruteForceIndex


def roc_auc(scores_positive, scores_negative) -> float:
    """Area under the ROC curve from two score samples.

    The probability that a random positive outscores a random negative
    (ties count half) — computed by the rank-sum identity, no sklearn.

    Parameters
    ----------
    scores_positive:
        Scores of the positive class; non-empty.
    scores_negative:
        Scores of the negative class; non-empty.

    Returns
    -------
    float
        AUC in ``[0, 1]``; 0.5 means no discrimination.

    Raises
    ------
    ValueError
        If either sample is empty.
    """
    scores_positive = np.asarray(scores_positive, dtype=float)
    scores_negative = np.asarray(scores_negative, dtype=float)
    if scores_positive.size == 0 or scores_negative.size == 0:
        raise ValueError("both score samples must be non-empty")
    combined = np.concatenate([scores_positive, scores_negative])
    order = np.argsort(combined, kind="stable")
    ranks = np.empty(combined.shape[0])
    ranks[order] = np.arange(1, combined.shape[0] + 1)
    # Average ranks over ties.
    sorted_scores = combined[order]
    start = 0
    for position in range(1, combined.shape[0] + 1):
        if (
            position == combined.shape[0]
            or sorted_scores[position] != sorted_scores[start]
        ):
            average = (start + 1 + position) / 2.0
            ranks[order[start:position]] = average
            start = position
    n_positive = scores_positive.shape[0]
    n_negative = scores_negative.shape[0]
    rank_sum = float(ranks[:n_positive].sum())
    statistic = rank_sum - n_positive * (n_positive + 1) / 2.0
    return statistic / (n_positive * n_negative)


@dataclass(frozen=True)
class MembershipInferenceResult:
    """Outcome of the membership-inference attack.

    Attributes
    ----------
    auc:
        Area under the member-vs-non-member ROC for the distance score;
        0.5 is chance (no leakage), 1.0 is certain identification.
    member_mean_distance, non_member_mean_distance:
        Mean nearest-release distance of each population.
    advantage:
        ``2·(auc − 0.5)`` clipped at 0 — the standard membership
        advantage in [0, 1].
    """

    auc: float
    member_mean_distance: float
    non_member_mean_distance: float

    @property
    def advantage(self) -> float:
        """Membership advantage, ``max(0, 2·(auc − 0.5))``."""
        return max(0.0, 2.0 * (self.auc - 0.5))


def membership_inference_attack(
    members: np.ndarray,
    non_members: np.ndarray,
    release: np.ndarray,
) -> MembershipInferenceResult:
    """Run the nearest-release-distance membership attack.

    Parameters
    ----------
    members:
        Records that *were* condensed into the release, shape ``(m, d)``.
    non_members:
        Records from the same population that were not, shape ``(u, d)``.
    release:
        The published anonymized records.

    Returns
    -------
    MembershipInferenceResult
        The attacker scores candidates by *negative* distance to the
        nearest released record (closer = more member-like); AUC is
        computed over that score.
    """
    members = np.asarray(members, dtype=float)
    non_members = np.asarray(non_members, dtype=float)
    release = np.asarray(release, dtype=float)
    for name, array in (("members", members),
                        ("non_members", non_members),
                        ("release", release)):
        if array.ndim != 2 or array.shape[0] == 0:
            raise ValueError(f"{name} must be a non-empty 2-D array")
    if not (
        members.shape[1] == non_members.shape[1] == release.shape[1]
    ):
        raise ValueError("all inputs must share dimensionality")
    index = BruteForceIndex(release)
    member_distances = index.query(members, k=1)[0][:, 0]
    non_member_distances = index.query(non_members, k=1)[0][:, 0]
    auc = roc_auc(-member_distances, -non_member_distances)
    return MembershipInferenceResult(
        auc=float(auc),
        member_mean_distance=float(member_distances.mean()),
        non_member_mean_distance=float(non_member_distances.mean()),
    )

"""Empirical privacy attacks against anonymized data.

The paper argues qualitatively that condensation provides
k-indistinguishability; this module makes the claim measurable with the
standard distance-based record-linkage attack from the disclosure-risk
literature: an adversary who knows a victim's original record and holds
the published anonymized data set links the record to its nearest
anonymized neighbour and tries to learn which condensation group — and
ultimately which record — it came from.

Because generated records carry no identity, the attack's best case is
identifying the victim's *group*; the victim is then still hidden among
that group's ``n(G)`` members.  The disclosure risk therefore factors as
``group_linkage_rate × 1/n(G)``, which the bench sweeps against ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.generation import (
    generate_anonymized_data,
    generate_group_records,
)
from repro.core.statistics import CondensedModel
from repro.linalg.rng import check_random_state
from repro.neighbors.brute import BruteForceIndex


@dataclass(frozen=True)
class LinkageAttackResult:
    """Outcome of a record-linkage attack.

    Attributes
    ----------
    group_linkage_rate:
        Fraction of victims whose nearest anonymized record came from
        their own condensation group.
    expected_record_disclosure:
        Mean over victims of ``linked · 1/n(G)`` — the probability of
        picking the victim out of the linked group by uniform guessing.
    baseline_disclosure:
        ``1 / N`` — the guessing probability with no anonymized data at
        all; linkage is only a threat insofar as it exceeds this.
    n_victims:
        Number of attacked records.
    """

    group_linkage_rate: float
    expected_record_disclosure: float
    baseline_disclosure: float
    n_victims: int


def generate_with_provenance(
    model: CondensedModel, sampler="uniform", random_state=None
):
    """Anonymized data plus the group index each record came from.

    The provenance array is attacker-side bookkeeping for evaluating
    linkage — a real release would publish only the records.

    Parameters
    ----------
    model:
        Condensed model to generate from.
    sampler:
        Per-eigenvector sampler name or callable.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    records : numpy.ndarray
        The anonymized release.
    provenance : numpy.ndarray
        Index of the source group of each released record.
    """
    rng = check_random_state(random_state)
    parts = []
    provenance = []
    for position, group in enumerate(model.groups):
        generated = generate_group_records(
            group, sampler=sampler, random_state=rng
        )
        parts.append(generated)
        provenance.append(np.full(generated.shape[0], position))
    return np.vstack(parts), np.concatenate(provenance)


@dataclass(frozen=True)
class AttributeDisclosureResult:
    """Outcome of an attribute-inference attack.

    Attributes
    ----------
    attack_error:
        Mean absolute error of the adversary's estimate of the hidden
        attribute, over all victims.
    baseline_error:
        Error of the no-release strategy (predicting the population
        mean of the published attribute values).
    relative_gain:
        ``1 − attack_error / baseline_error``; how much the release
        helped the adversary (0 = nothing, 1 = perfect inference).
    attribute:
        Index of the attacked attribute.
    """

    attack_error: float
    baseline_error: float
    relative_gain: float
    attribute: int


def attribute_disclosure_attack(
    original: np.ndarray,
    model: CondensedModel,
    attribute: int,
    sampler="uniform",
    random_state=None,
) -> AttributeDisclosureResult:
    """Infer a hidden attribute of each victim from the release.

    The adversary knows every attribute of a victim's record *except*
    one sensitive attribute, and holds the anonymized release.  Its
    estimate is the sensitive attribute of the nearest anonymized
    record in the known-attribute subspace.  The result compares that
    estimate's error against the no-release baseline of guessing the
    release-wide mean.

    Parameters
    ----------
    original:
        The victims' complete records, shape ``(n, d)``.
    model:
        Condensed model whose generated release is attacked.
    attribute:
        Index of the sensitive attribute (hidden from the adversary).
    sampler, random_state:
        Generation settings for the release.

    Returns
    -------
    AttributeDisclosureResult
        Attack error, baseline error and the adversary's relative gain.
    """
    original = np.asarray(original, dtype=float)
    if original.ndim != 2:
        raise ValueError(
            f"original must be 2-D, got shape {original.shape}"
        )
    d = original.shape[1]
    if not 0 <= attribute < d:
        raise ValueError(
            f"attribute must be in [0, {d}), got {attribute}"
        )
    if d < 2:
        raise ValueError(
            "attribute inference needs at least one known attribute"
        )
    anonymized = generate_anonymized_data(
        model, sampler=sampler, random_state=random_state
    )
    known = [column for column in range(d) if column != attribute]
    index = BruteForceIndex(anonymized[:, known])
    __, nearest = index.query(original[:, known], k=1)
    estimates = anonymized[nearest[:, 0], attribute]
    truths = original[:, attribute]
    attack_error = float(np.mean(np.abs(estimates - truths)))
    baseline_error = float(
        np.mean(np.abs(anonymized[:, attribute].mean() - truths))
    )
    if baseline_error > 0:
        relative_gain = 1.0 - attack_error / baseline_error
    else:
        relative_gain = 0.0
    return AttributeDisclosureResult(
        attack_error=attack_error,
        baseline_error=baseline_error,
        relative_gain=float(relative_gain),
        attribute=int(attribute),
    )


def linkage_attack(
    original: np.ndarray,
    model: CondensedModel,
    memberships=None,
    sampler="uniform",
    random_state=None,
) -> LinkageAttackResult:
    """Run the nearest-neighbour record-linkage attack.

    Parameters
    ----------
    original:
        The original records the adversary knows, shape ``(n, d)``.
    model:
        The condensed model whose generated output is attacked.
    memberships:
        Per-group arrays of original-record indices (as produced in
        ``model.metadata['memberships']`` by static condensation).
        Defaults to that metadata; required to score the attack.
    sampler, random_state:
        Generation settings for the published anonymized data.

    Returns
    -------
    LinkageAttackResult
    """
    original = np.asarray(original, dtype=float)
    if memberships is None:
        memberships = model.metadata.get("memberships")
    if memberships is None:
        raise ValueError(
            "linkage scoring needs the record-to-group memberships; pass "
            "memberships= or use a model built by create_condensed_groups"
        )
    group_of_record = np.full(original.shape[0], -1, dtype=np.int64)
    for group_index, members in enumerate(memberships):
        group_of_record[np.asarray(members, dtype=np.int64)] = group_index
    if (group_of_record < 0).any():
        raise ValueError(
            "memberships do not cover every original record"
        )
    anonymized, provenance = generate_with_provenance(
        model, sampler=sampler, random_state=random_state
    )
    index = BruteForceIndex(anonymized)
    __, nearest = index.query(original, k=1)
    linked_groups = provenance[nearest[:, 0]]
    linked = linked_groups == group_of_record
    sizes = model.group_sizes.astype(float)
    per_victim_disclosure = np.where(
        linked, 1.0 / sizes[group_of_record], 0.0
    )
    return LinkageAttackResult(
        group_linkage_rate=float(linked.mean()),
        expected_record_disclosure=float(per_victim_disclosure.mean()),
        baseline_disclosure=1.0 / original.shape[0],
        n_victims=original.shape[0],
    )

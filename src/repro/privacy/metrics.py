"""Privacy accounting for condensed models.

The paper's privacy notion is *k-indistinguishability*: a record cannot
be distinguished from at least ``k − 1`` others because only group-level
aggregates ever leave the condensation step.  These helpers report the
achieved level and derived disclosure quantities for a fitted model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.statistics import CondensedModel


@dataclass(frozen=True)
class PrivacyReport:
    """Summary of a condensed model's privacy posture.

    Attributes
    ----------
    requested_k:
        The indistinguishability level the model was built for.
    achieved_k:
        The smallest group size actually realized (≥ requested for the
        static algorithm; within ``[k, 2k)`` for the dynamic one).
    average_group_size:
        Mean group size — the utility-privacy dial of the paper's sweeps.
    max_group_size:
        Largest group (leftover absorption can exceed ``k``).
    n_groups:
        Number of condensed groups.
    expected_disclosure:
        Expected probability of pinpointing a specific member given its
        group is identified: the record-weighted mean of ``1 / n(G)``.
    """

    requested_k: int
    achieved_k: int
    average_group_size: float
    max_group_size: int
    n_groups: int
    expected_disclosure: float

    @property
    def satisfied(self) -> bool:
        """Whether every group meets the requested level."""
        return self.achieved_k >= self.requested_k


def privacy_report(model: CondensedModel) -> PrivacyReport:
    """Compute a :class:`PrivacyReport` for a condensed model.

    Parameters
    ----------
    model:
        Condensed model to summarize.

    Returns
    -------
    PrivacyReport
        Requested vs achieved k, group-size statistics, and the
        expected disclosure probability.
    """
    sizes = model.group_sizes
    total = float(sizes.sum())
    # A record drawn uniformly from the data lands in group G with
    # probability n(G)/N and is then 1-of-n(G) indistinguishable.
    expected_disclosure = float(np.sum((sizes / total) * (1.0 / sizes)))
    return PrivacyReport(
        requested_k=model.k,
        achieved_k=int(sizes.min()),
        average_group_size=float(sizes.mean()),
        max_group_size=int(sizes.max()),
        n_groups=len(sizes),
        expected_disclosure=expected_disclosure,
    )


def indistinguishability_level(model: CondensedModel) -> int:
    """The achieved k: the smallest condensed-group size.

    Parameters
    ----------
    model:
        Condensed model to inspect.

    Returns
    -------
    int
        The minimum group size.
    """
    return int(model.group_sizes.min())

"""Static condensation — ``CreateCondensedGroups`` (Fig. 1 of the paper).

Given the entire database ``D`` and an indistinguishability level ``k``:

1. While at least ``k`` records remain, pick a seed record, absorb its
   ``k − 1`` nearest remaining neighbours into a group, record the group
   statistics, and delete the group's records from ``D``.
2. Assign each leftover record (fewer than ``k`` remain) to the nearest
   already-formed group and update that group's statistics — so a few
   groups may hold more than ``k`` records.

The seed choice is pluggable (:mod:`repro.core.strategies`); the paper's
algorithm samples seeds uniformly at random.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.core.statistics import CondensedModel, GroupStatistics
from repro.core.strategies import RandomSeedStrategy, resolve_strategy
from repro.linalg.rng import check_random_state
from repro.neighbors.brute import pairwise_distances
from repro.telemetry import DEFAULT_SIZE_BUCKETS


def create_condensed_groups(
    data: np.ndarray,
    k: int,
    strategy="random",
    random_state=None,
    n_shards=None,
    n_workers=None,
    checkpoint_dir=None,
) -> CondensedModel:
    """Condense a database into groups of (at least) ``k`` records.

    Parameters
    ----------
    data:
        Record array of shape ``(n, d)`` with ``n >= k``.
    k:
        Indistinguishability level — the minimum group size.  ``k = 1``
        degenerates to one group per record (anonymized data equal to the
        original up to generation noise), which is the paper's baseline
        anchor point.
    strategy:
        Seed-selection strategy: the string ``"random"`` (paper),
        ``"mdav"`` or ``"kmeans"``, or a strategy instance from
        :mod:`repro.core.strategies`.
    random_state:
        Seed or generator for the strategy's stochastic choices.
    n_shards:
        When given, delegate to the sharded parallel engine
        (:func:`repro.parallel.condense_sharded`) with this many
        locality-preserving shards.  ``None`` (default) runs the serial
        algorithm below; ``n_shards=1`` routes through the engine with
        a single shard, which is bit-identical to the serial path for
        deterministic strategies such as ``"mdav"``.
    n_workers:
        Worker-pool size for the sharded engine; implies
        ``n_shards=n_workers`` when ``n_shards`` is not given.
        Ignored (``None``) on the serial path.
    checkpoint_dir:
        Per-shard checkpoint directory for the sharded engine (see
        :func:`repro.parallel.condense_sharded`); requires an integer
        ``random_state`` and a sharded run.  Raises ``ValueError`` on
        the serial path, where nothing is checkpointed.

    Returns
    -------
    CondensedModel
        The set ``H`` of per-group statistics.  Every group has at least
        ``k`` records; leftover records inflate their nearest group.
    """
    if n_shards is not None or n_workers is not None:
        # Deferred import: repro.parallel builds on this module.
        from repro.parallel.engine import condense_sharded

        if n_shards is None:
            n_shards = int(n_workers)
        return condense_sharded(
            data, k, strategy=strategy, random_state=random_state,
            n_shards=n_shards, n_workers=n_workers,
            checkpoint_dir=checkpoint_dir,
        )
    if checkpoint_dir is not None:
        raise ValueError(
            "checkpoint_dir applies only to sharded runs; pass "
            "n_shards (or n_workers) to enable the parallel engine"
        )
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if not np.isfinite(data).all():
        raise ValueError(
            "data contains NaN or infinite values; impute or drop them "
            "before condensation"
        )
    n, __ = data.shape
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n < k:
        raise ValueError(
            f"need at least k={k} records to condense, got {n}"
        )
    rng = check_random_state(random_state)
    strategy = resolve_strategy(strategy)

    with telemetry.span("condense.create_groups") as condense_span:
        condense_span.set_attribute("n_records", n)
        condense_span.set_attribute("k", k)
        condense_span.set_attribute("strategy", strategy.name)

        groups: list[GroupStatistics] = []
        memberships: list[np.ndarray] = []
        remaining = np.arange(n)

        plan = strategy.plan(data, k, rng)
        if plan is not None:
            # Strategy produced a complete partition up front (e.g.
            # k-means seeded grouping); condense each part directly.
            for part in plan:
                groups.append(GroupStatistics.from_records(data[part]))
                memberships.append(np.asarray(part, dtype=np.int64))
            model = CondensedModel(groups=groups, k=k)
            model.metadata["memberships"] = memberships
            model.metadata["strategy"] = strategy.name
            _record_condensation_metrics(model, condense_span)
            return model

        with telemetry.span("condense.absorb_loop"):
            while remaining.shape[0] >= k:
                seed_position = strategy.pick_seed(data, remaining, rng)
                seed_index = remaining[seed_position]
                distances = pairwise_distances(
                    data[seed_index][None, :], data[remaining],
                    squared=True,
                )[0]
                # The seed itself is at distance zero; take the k
                # closest overall (seed plus its k-1 nearest
                # neighbours).
                if k < remaining.shape[0]:
                    chosen_positions = np.argpartition(
                        distances, k - 1
                    )[:k]
                else:
                    chosen_positions = np.arange(remaining.shape[0])
                chosen = remaining[chosen_positions]
                groups.append(GroupStatistics.from_records(data[chosen]))
                memberships.append(chosen.astype(np.int64))
                keep = np.ones(remaining.shape[0], dtype=bool)
                keep[chosen_positions] = False
                remaining = remaining[keep]

        if remaining.shape[0] > 0:
            with telemetry.span("condense.assign_leftovers") as leftovers:
                leftovers.set_attribute(
                    "n_leftovers", int(remaining.shape[0])
                )
                telemetry.counter_inc(
                    "condense.leftovers", int(remaining.shape[0])
                )
                centroids = np.vstack(
                    [group.centroid for group in groups]
                )
                distances = pairwise_distances(
                    data[remaining], centroids, squared=True
                )
                nearest = np.argmin(distances, axis=1)
                for record_index, group_position in zip(
                    remaining, nearest
                ):
                    groups[group_position].add(data[record_index])
                    memberships[group_position] = np.append(
                        memberships[group_position], record_index
                    )

        model = CondensedModel(groups=groups, k=k)
        model.metadata["memberships"] = memberships
        model.metadata["strategy"] = strategy.name
        _record_condensation_metrics(model, condense_span)
        return model


def _record_condensation_metrics(model: CondensedModel, span) -> None:
    """Emit per-model counters and the group-size distribution."""
    span.set_attribute("n_groups", model.n_groups)
    telemetry.counter_inc("condense.groups", model.n_groups)
    telemetry.counter_inc("condense.records", model.total_count)
    for group in model.groups:
        telemetry.histogram_observe(
            "condense.group_size", group.count,
            buckets=DEFAULT_SIZE_BUCKETS,
        )


def condensation_information_loss(
    data: np.ndarray, model: CondensedModel
) -> float:
    """SSE-style information loss of a condensation.

    Sum of squared distances from each record to its group centroid,
    normalized by the total squared deviation from the global mean — the
    standard microaggregation information-loss measure (0 = lossless,
    1 = all structure condensed away).  Requires the model to carry the
    ``memberships`` metadata produced by :func:`create_condensed_groups`.

    Parameters
    ----------
    data:
        The original record array, shape ``(n, d)``.
    model:
        Condensed model carrying ``memberships`` metadata.

    Returns
    -------
    float
        Normalized SSE information loss, 0 for lossless.

    Raises
    ------
    ValueError
        If the model lacks membership metadata or it does not match
        ``data``.
    """
    data = np.asarray(data, dtype=float)
    memberships = model.metadata.get("memberships")
    if memberships is None:
        raise ValueError(
            "model does not carry membership metadata; information loss "
            "needs the original record-to-group assignment"
        )
    within = 0.0
    for group, members in zip(model.groups, memberships):
        residuals = data[members] - group.centroid
        within += float(np.sum(residuals * residuals))
    global_residuals = data - data.mean(axis=0)
    total = float(np.sum(global_residuals * global_residuals))
    if total == 0.0:
        return 0.0
    return within / total

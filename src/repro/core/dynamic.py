"""Dynamic condensation (§3 of the paper).

``DynamicGroupMaintenance`` (Fig. 2) relaxes the fixed group size to the
band ``[k, 2k)``: each arriving stream point joins the group with the
nearest centroid, and the moment a group reaches ``2k`` points its
*statistics* are split into two size-``k`` children — the member records
were never retained, so the split must work purely on ``(Fs, Sc, n)``.

``SplitGroupStatistics`` (Fig. 3) does this under the locally-uniform
assumption.  Writing ``C = P Λ Pᵀ`` with leading eigenpair ``(λ₁, e₁)``:

* a uniform distribution with variance ``λ₁`` spans a range
  ``a = sqrt(12 λ₁)`` along ``e₁``;
* splitting that range at its midpoint yields two uniforms of half the
  range, centred at ``± a/4`` from the parent centroid, each with
  variance ``(a/2)²/12 = λ₁/4``;
* all other eigenpairs are unchanged — the zero-correlation directions
  survive the split.

Each child's sums are then reassembled from its centroid and covariance
via Equation 3.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.core.condensation import create_condensed_groups
from repro.core.statistics import CondensedModel, GroupStatistics
from repro.linalg.rng import check_random_state, rng_from_state, rng_state
from repro.linalg.updates import EigenUpdateError, absorbed_record_eigh_update
from repro.neighbors.brute import pairwise_distances
from repro.neighbors.centroids import CentroidIndex
from repro.telemetry import DEFAULT_SIZE_BUCKETS

#: Dimensionality floor for the rank-one eigen-update fast path: below
#: it a dense ``sorted_eigh`` is cheaper than the secular solve chain,
#: so the shortcut only engages on wide data.
EIGEN_UPDATE_MIN_DIM = 16

#: Relative tolerance on the trace drift accumulated by a chain of
#: rank-one eigen updates before the split falls back to the exact path.
EIGEN_UPDATE_TRACE_RTOL = 1e-6


def split_group_statistics(
    group: GroupStatistics, k: int | None = None, eigen=None
) -> tuple[GroupStatistics, GroupStatistics]:
    """Split one group's statistics into two children (Fig. 3).

    Parameters
    ----------
    group:
        The group to split.  The paper splits exactly at ``n = 2k``; this
        function accepts any group of at least two records and gives each
        child half the parent's count (the extra record of an odd parent
        goes to the first child).
    k:
        When given, asserts the paper's invariant ``n(M) == 2k`` and
        produces two children of exactly ``k`` records.
    eigen:
        Optional precomputed ``(eigenvalues, eigenvectors)`` of the
        group covariance (decreasing order, eigenvalues non-negative),
        e.g. advanced through
        :func:`repro.linalg.updates.absorbed_record_eigh_update` by the
        batch ingest path.  When omitted the exact
        :meth:`~repro.core.statistics.GroupStatistics.eigen_system` is
        computed.

    Returns
    -------
    (GroupStatistics, GroupStatistics)
        Children with identical covariance matrices (leading eigenvalue
        divided by 4) and centroids displaced by ``± sqrt(12 λ₁)/4``
        along the leading eigenvector.  Both children carry an eigen
        hint (their covariance differs from the parent's only in the
        quartered leading eigenvalue), which the batch ingest path can
        advance across later absorbs instead of redecomposing.
    """
    if group.count < 2:
        raise ValueError(
            f"cannot split a group of {group.count} record(s)"
        )
    if k is not None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if group.count != 2 * k:
            raise ValueError(
                f"the paper splits at n = 2k; got n={group.count}, k={k}"
            )
        first_count, second_count = k, k
    else:
        first_count = (group.count + 1) // 2
        second_count = group.count - first_count

    if eigen is None:
        eigenvalues, eigenvectors = group.eigen_system()
    else:
        eigenvalues, eigenvectors = eigen
    leading_eigenvalue = float(eigenvalues[0])
    leading_vector = eigenvectors[:, 0]

    # Child centroids: the parent's ± a/4 along e1 with a = sqrt(12 λ1).
    offset = np.sqrt(12.0 * leading_eigenvalue) / 4.0
    centroid = group.centroid
    first_centroid = centroid + offset * leading_vector
    second_centroid = centroid - offset * leading_vector

    # Child covariance: same eigensystem, leading eigenvalue quartered.
    child_eigenvalues = eigenvalues.copy()
    child_eigenvalues[0] = leading_eigenvalue / 4.0
    child_covariance = (
        eigenvectors * child_eigenvalues
    ) @ eigenvectors.T

    first = GroupStatistics.from_moments(
        first_centroid, child_covariance, first_count
    )
    second = GroupStatistics.from_moments(
        second_centroid, child_covariance, second_count
    )
    # The children's eigensystem is known in closed form: the parent's
    # vectors with the leading eigenvalue quartered (re-sorted, since
    # λ₁/4 may drop below later eigenvalues).
    order = np.argsort(child_eigenvalues, kind="stable")[::-1]
    hint = (child_eigenvalues[order], eigenvectors[:, order])
    first._eigen_hint = hint
    second._eigen_hint = hint
    return first, second


class DynamicGroupMaintainer:
    """Streaming condensation — ``DynamicGroupMaintenance`` (Fig. 2).

    Parameters
    ----------
    k:
        Indistinguishability level.  Groups hold between ``k`` and
        ``2k − 1`` records; reaching ``2k`` triggers a statistics split.
    initial_data:
        Optional static database to bootstrap from; condensed with
        :func:`repro.core.condensation.create_condensed_groups` exactly
        as the paper prescribes.  When omitted the maintainer starts
        from the first ``k`` stream points (buffered and condensed into
        the founding group once ``k`` have arrived — before that no
        statistics exist, preserving k-indistinguishability even during
        warm-up).
    strategy, random_state:
        Passed through to the static bootstrap.

    Notes
    -----
    The maintainer never stores stream records once they are absorbed
    into a group — only the warm-up buffer (capped at ``k`` records,
    which by definition are not yet published) and group statistics.

    **Journaling.**  When :attr:`journal` is set to a callable, every
    completed mutation emits one sub-operation dict describing its
    *post-state* — the updated group aggregates, never the triggering
    record.  The batch path adds an ``absorb`` sub-operation (one per
    touched group, carrying the absorbed count) and annotates batch
    splits with theirs.  The durable condensers collect these into WAL
    entries;
    :meth:`apply_op` replays them, and because each sub-operation
    carries exact (JSON-round-trippable) float aggregates, replay
    reconstructs the maintainer bit for bit.  Warm-up buffering emits
    nothing: raw records are not durable, which is exactly the
    at-least-once recovery contract (lost warm-up records are re-fed
    by the upstream source).
    """

    def __init__(
        self,
        k: int,
        initial_data: np.ndarray | None = None,
        strategy="random",
        random_state=None,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self._rng = check_random_state(random_state)
        self._groups: list[GroupStatistics] = []
        self._centroids: np.ndarray | None = None
        self._index = CentroidIndex()
        #: Dimensionality floor for the batch split's rank-one eigen
        #: shortcut; raise or lower to tune when the secular chain is
        #: attempted before falling back to ``sorted_eigh``.
        self.eigen_update_min_dim = EIGEN_UPDATE_MIN_DIM
        self._warmup: list[np.ndarray] = []
        self.n_splits = 0
        self.n_merges = 0
        self.n_absorbed = 0
        #: Optional journal callback receiving post-state sub-operation
        #: dicts (see the class docstring); set by durable condensers.
        self.journal = None
        if initial_data is not None:
            initial_data = np.asarray(initial_data, dtype=float)
            model = create_condensed_groups(
                initial_data, self.k, strategy=strategy,
                random_state=self._rng,
            )
            self._groups = [group.copy() for group in model.groups]
            self.n_absorbed = model.total_count
            self._refresh_centroids()
            telemetry.counter_inc("dynamic.absorbed", model.total_count)
            telemetry.gauge_set("dynamic.groups", len(self._groups))

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def add(self, record: np.ndarray) -> None:
        """Route one stream record into the nearest group (Fig. 2).

        Splits the receiving group if it reaches ``2k`` records.
        """
        record = np.asarray(record, dtype=float)
        if record.ndim != 1:
            raise ValueError(
                f"record must be a vector, got shape {record.shape}"
            )
        if not self._groups:
            # Trusted-side warm-up: the first k records are buffered
            # only until the founding group's (Fs, Sc, n) exist, then
            # cleared below.
            # repro-lint: disable-next=PRIV-001 -- transient warm-up
            self._warmup.append(record.copy())
            if len(self._warmup) == self.k:
                founding = GroupStatistics.from_records(
                    np.vstack(self._warmup)
                )
                self._groups.append(founding)
                self._warmup.clear()
                self.n_absorbed += self.k
                self._refresh_centroids()
                telemetry.counter_inc("dynamic.absorbed", self.k)
                telemetry.gauge_set("dynamic.groups", 1)
                self._emit({"op": "founding",
                            "group": founding.to_dict()})
            return
        if record.shape[0] != self._groups[0].n_features:
            raise ValueError(
                f"expected {self._groups[0].n_features} attributes, "
                f"got {record.shape[0]}"
            )
        target = self._index.nearest(record, self._centroids)
        group = self._groups[target]
        group.add(record)
        self.n_absorbed += 1
        telemetry.counter_inc("dynamic.absorbed")
        if group.count >= 2 * self.k:
            with telemetry.span("dynamic.split") as split_span:
                split_span.set_attribute("group_size", group.count)
                first, second = split_group_statistics(group, k=self.k)
                self._groups[target] = first
                self._groups.append(second)
                self.n_splits += 1
                self._refresh_centroids()
                self._index.mark_dirty(target)
                split_span.set_attribute("n_groups", len(self._groups))
            telemetry.counter_inc("dynamic.splits")
            telemetry.gauge_set("dynamic.groups", len(self._groups))
            self._emit({"op": "split", "target": target,
                        "first": first.to_dict(),
                        "second": second.to_dict()})
        else:
            self._centroids[target] = group.centroid
            self._index.mark_dirty(target)
            self._emit({"op": "ingest", "target": target,
                        "group": group.to_dict()})

    def add_stream(self, records) -> None:
        """Ingest an iterable of records in arrival order."""
        with telemetry.span("dynamic.ingest") as ingest_span:
            ingested = 0
            for record in records:
                self.add(record)
                ingested += 1
            ingest_span.set_attribute("n_records", ingested)
            ingest_span.set_attribute("n_groups", len(self._groups))

    def ingest_many(self, records, batch_size: int = 256) -> None:
        """Ingest a record array through the vectorized batch path.

        Records are processed in blocks of ``batch_size`` via
        :meth:`ingest_block`.  ``batch_size=1`` is contractually
        *bit-identical* to the sequential :meth:`add` loop — groups,
        centroids, generator position, and journal output all match
        byte for byte (mirroring the ``n_shards=1`` determinism
        contract of ``repro.parallel``).  Any fixed ``batch_size`` is
        deterministic across runs and conserves the absorbed moment
        mass exactly (per-group sums are single
        :meth:`~repro.core.statistics.GroupStatistics.add_batch`
        reductions).

        Parameters
        ----------
        records:
            Record array of shape ``(m, d)``.
        batch_size:
            Block size for the vectorized assignment; ``1`` delegates
            to the sequential loop.
        """
        records = np.asarray(records, dtype=float)
        if records.ndim != 2:
            raise ValueError(
                f"records must be 2-D, got shape {records.shape}"
            )
        if batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if batch_size == 1:
            self.add_stream(records)
            return
        with telemetry.span("dynamic.ingest_many") as ingest_span:
            for start in range(0, records.shape[0], batch_size):
                self.ingest_block(records[start:start + batch_size])
            ingest_span.set_attribute("n_records", records.shape[0])
            ingest_span.set_attribute("n_groups", len(self._groups))

    def ingest_block(self, block) -> None:
        """Absorb one block of records with a single distance matrix.

        The block is assigned to nearest groups against a *frozen*
        centroid snapshot, each targeted group absorbs its rows with
        one batch-sum update (capped at the ``2k`` band ceiling), and
        groups that reach ``2k`` split.  Rows beyond a group's capacity
        are re-dispatched in a further round against the refreshed
        centroids — every round absorbs at least one record per
        targeted group (the ``[k, 2k)`` invariant guarantees capacity),
        so the loop terminates.  Within a round, rows are grouped by
        target in arrival order; assignment is deterministic (ties
        break toward the lower group id).

        Journaling emits one ``absorb`` sub-operation per touched group
        (carrying the post-state aggregates and the absorbed count) and
        the usual ``split`` sub-operations, so durable condensers can
        log a whole block as one WAL entry.
        """
        block = np.asarray(block, dtype=float)
        if block.ndim != 2:
            raise ValueError(
                f"block must be 2-D, got shape {block.shape}"
            )
        if block.shape[0] == 0:
            return
        if not np.isfinite(block).all():
            raise ValueError("records contain NaN or infinite values")
        consumed = 0
        # Warm-up routes record-at-a-time until a founding group exists.
        while consumed < block.shape[0] and not self._groups:
            self.add(block[consumed])
            consumed += 1
        pending = block[consumed:]
        if not pending.shape[0]:
            return
        if pending.shape[1] != self._groups[0].n_features:
            raise ValueError(
                f"expected {self._groups[0].n_features} attributes, "
                f"got {pending.shape[1]}"
            )
        telemetry.counter_inc("ingest.batches")
        telemetry.counter_inc("ingest.batch_records", pending.shape[0])
        rounds = 0
        while pending.shape[0]:
            rounds += 1
            if rounds > 1:
                telemetry.counter_inc(
                    "ingest.redispatched", pending.shape[0]
                )
            distances = pairwise_distances(
                pending, self._centroids, squared=True
            )
            targets = np.argmin(distances, axis=1)
            order = np.argsort(targets, kind="stable")
            rows = pending[order]
            targets = targets[order]
            cuts = np.flatnonzero(np.diff(targets)) + 1
            starts = np.concatenate(([0], cuts))
            ends = np.concatenate((cuts, [targets.shape[0]]))
            leftover: list[np.ndarray] = []
            appended: list[np.ndarray] = []
            for lo, hi in zip(starts, ends):
                target = int(targets[lo])
                group = self._groups[target]
                capacity = 2 * self.k - group.count
                take = rows[lo:lo + min(hi - lo, capacity)]
                if hi - lo > capacity:
                    leftover.append(rows[lo + capacity:hi])
                hint = group._eigen_hint
                pre_first = (
                    group.first_order.copy() if hint is not None else None
                )
                pre_count = group.count
                group.add_batch(take)
                self.n_absorbed += take.shape[0]
                if group.count >= 2 * self.k:
                    eigen = self._advance_eigen_hint(
                        hint, pre_first, pre_count, take, group
                    )
                    first, second = split_group_statistics(
                        group, k=self.k, eigen=eigen
                    )
                    self._groups[target] = first
                    self._groups.append(second)
                    self.n_splits += 1
                    self._centroids[target] = first.centroid
                    appended.append(second.centroid)
                    self._index.mark_dirty(target)
                    telemetry.counter_inc("dynamic.splits")
                    self._emit({"op": "split", "target": target,
                                "first": first.to_dict(),
                                "second": second.to_dict(),
                                "absorbed": int(take.shape[0])})
                else:
                    # Keep the eigen hint alive across absorbs so the
                    # eventual split can take the rank-one fast path.
                    advanced = self._advance_eigen_hint(
                        hint, pre_first, pre_count, take, group
                    )
                    if advanced is not None:
                        group._eigen_hint = advanced
                    self._centroids[target] = group.centroid
                    self._index.mark_dirty(target)
                    self._emit({"op": "absorb", "target": target,
                                "group": group.to_dict(),
                                "n": int(take.shape[0])})
            if appended:
                self._centroids = np.vstack([self._centroids] + appended)
            remainder = (
                np.vstack(leftover) if leftover else pending[:0]
            )
            telemetry.counter_inc(
                "dynamic.absorbed",
                pending.shape[0] - remainder.shape[0],
            )
            pending = remainder
        telemetry.gauge_set("dynamic.groups", len(self._groups))
        telemetry.histogram_observe(
            "ingest.rounds", rounds, buckets=DEFAULT_SIZE_BUCKETS
        )

    def _advance_eigen_hint(self, hint, pre_first, pre_count, take,
                            group):
        """Advance a pre-absorb eigen hint across absorbed rows.

        Returns the post-absorb covariance eigensystem when the
        rank-one chain is worthwhile (wide data, update rank below the
        dimension) and stays within tolerance — otherwise ``None``, and
        the caller's :func:`split_group_statistics` takes the exact
        ``sorted_eigh`` path.
        """
        if hint is None:
            return None
        d = int(pre_first.shape[0])
        if d < self.eigen_update_min_dim or take.shape[0] >= d:
            return None
        eigenvalues, eigenvectors = hint
        mean = pre_first / pre_count
        count = pre_count
        try:
            for row in take:
                eigenvalues, eigenvectors = absorbed_record_eigh_update(
                    eigenvalues, eigenvectors, mean, count, row
                )
                mean = (mean * count + row) / (count + 1)
                count += 1
        except EigenUpdateError:
            telemetry.counter_inc("ingest.eigen_fallbacks")
            return None
        trace = float(np.trace(group.covariance))
        drift = abs(float(eigenvalues.sum()) - trace)
        if drift > EIGEN_UPDATE_TRACE_RTOL * max(abs(trace), 1.0):
            telemetry.counter_inc("ingest.eigen_fallbacks")
            return None
        telemetry.counter_inc("ingest.eigen_updates")
        return np.clip(eigenvalues, 0.0, None), eigenvectors

    def remove(self, record: np.ndarray) -> None:
        """Process a deletion request (an extension of the paper's §3).

        The maintainer holds no records, so a deletion can only be
        honoured statistically: the record is subtracted from the sums
        of the group whose centroid is nearest.  If that group falls
        below ``k`` records it no longer meets the indistinguishability
        level, so it is *merged* into its nearest surviving neighbour —
        the dual of the splitting operation — and if the merged group
        reaches ``2k`` it is immediately re-split.

        Raises
        ------
        ValueError
            If no groups exist yet, or the only remaining group would
            be emptied.
        """
        record = np.asarray(record, dtype=float)
        if record.ndim != 1:
            raise ValueError(
                f"record must be a vector, got shape {record.shape}"
            )
        if not self._groups:
            raise ValueError("no groups yet; nothing to remove from")
        if record.shape[0] != self._groups[0].n_features:
            raise ValueError(
                f"expected {self._groups[0].n_features} attributes, "
                f"got {record.shape[0]}"
            )
        target = self._index.nearest(record, self._centroids)
        group = self._groups[target]
        if len(self._groups) == 1 and group.count <= 1:
            raise ValueError(
                "cannot remove the last record of the last group"
            )
        group.remove(record)
        # The removed record may not have been a literal member of this
        # group; repair the implied covariance if it left the PSD cone.
        group.ensure_psd()
        self.n_absorbed -= 1
        telemetry.counter_inc("dynamic.removed")
        if group.count >= self.k or len(self._groups) == 1:
            if group.count > 0:
                self._centroids[target] = group.centroid
                self._index.mark_dirty(target)
                self._emit({"op": "remove", "target": target,
                            "group": group.to_dict()})
                return
        self._merge_undersized(target)

    def _merge_undersized(self, target: int) -> None:
        """Merge group ``target`` into its nearest neighbour group."""
        group = self._groups.pop(target)
        self._refresh_centroids()
        # Popping renumbers every later group id; the snapshot cannot
        # be patched, so the centroid index starts over.
        self._index.invalidate()
        if group.count == 0:
            self.n_merges += 1
            telemetry.counter_inc("dynamic.merges")
            telemetry.gauge_set("dynamic.groups", len(self._groups))
            self._emit({"op": "merge", "target": target,
                        "neighbour": None, "merged": None,
                        "resplit": None})
            return
        distances = pairwise_distances(
            group.centroid[None, :], self._centroids, squared=True
        )[0]
        neighbour = int(np.argmin(distances))
        merged = self._groups[neighbour]
        merged.merge(group)
        self.n_merges += 1
        telemetry.counter_inc("dynamic.merges")
        resplit = None
        if merged.count >= 2 * self.k:
            first, second = split_group_statistics(merged)
            self._groups[neighbour] = first
            self._groups.append(second)
            self.n_splits += 1
            telemetry.counter_inc("dynamic.splits")
            resplit = [first.to_dict(), second.to_dict()]
        self._refresh_centroids()
        telemetry.gauge_set("dynamic.groups", len(self._groups))
        self._emit({"op": "merge", "target": target,
                    "neighbour": neighbour,
                    "merged": None if resplit else merged.to_dict(),
                    "resplit": resplit})

    # ------------------------------------------------------------------
    # Journaling and durable state
    # ------------------------------------------------------------------

    def _emit(self, sub: dict) -> None:
        """Hand one post-state sub-operation to the journal, if bound."""
        if self.journal is not None:
            self.journal(sub)

    def apply_op(self, sub: dict) -> None:
        """Replay one journaled sub-operation (WAL recovery path).

        Each sub-operation stores the *post-state* aggregates of the
        group(s) it touched, so applying it sets state rather than
        re-deriving it — replay is therefore bit-identical to the
        original run regardless of floating-point evaluation order.

        Parameters
        ----------
        sub:
            A sub-operation dict as emitted through :attr:`journal`.

        Raises
        ------
        ValueError
            If the operation kind is unknown.
        """
        op = sub.get("op")
        if op == "founding":
            founding = GroupStatistics.from_dict(sub["group"])
            self._groups.append(founding)
            self._warmup.clear()
            self.n_absorbed += founding.count
        elif op == "ingest":
            self._groups[sub["target"]] = GroupStatistics.from_dict(
                sub["group"]
            )
            self.n_absorbed += 1
        elif op == "absorb":
            self._groups[sub["target"]] = GroupStatistics.from_dict(
                sub["group"]
            )
            self.n_absorbed += int(sub["n"])
        elif op == "split":
            self._groups[sub["target"]] = GroupStatistics.from_dict(
                sub["first"]
            )
            self._groups.append(GroupStatistics.from_dict(sub["second"]))
            # Sequential splits fold the triggering record's absorb into
            # the split op; batch splits carry their own absorbed count
            # (possibly zero when the batch absorb was journaled apart).
            self.n_absorbed += int(sub.get("absorbed", 1))
            self.n_splits += 1
        elif op == "remove":
            self._groups[sub["target"]] = GroupStatistics.from_dict(
                sub["group"]
            )
            self.n_absorbed -= 1
        elif op == "merge":
            self._groups.pop(sub["target"])
            self.n_absorbed -= 1
            self.n_merges += 1
            if sub.get("resplit") is not None:
                first_state, second_state = sub["resplit"]
                self._groups[sub["neighbour"]] = (
                    GroupStatistics.from_dict(first_state)
                )
                self._groups.append(
                    GroupStatistics.from_dict(second_state)
                )
                self.n_splits += 1
            elif sub.get("merged") is not None:
                self._groups[sub["neighbour"]] = (
                    GroupStatistics.from_dict(sub["merged"])
                )
        else:
            raise ValueError(f"unknown journal operation {op!r}")
        if self._groups:
            self._refresh_centroids()
        # Replay is not a hot path: rebuild the lookup index lazily on
        # the next query rather than tracking per-op dirtiness.
        self._index.invalidate()

    def state_dict(self) -> dict:
        """Full durable state as a JSON-serializable document.

        The document holds group aggregates, operation counters, and
        the generator position — never the warm-up buffer, whose raw
        records are deliberately not durable (the upstream source
        re-feeds them after recovery).

        Returns
        -------
        dict
        """
        return {
            "k": self.k,
            "groups": [group.to_dict() for group in self._groups],
            "n_splits": self.n_splits,
            "n_merges": self.n_merges,
            "n_absorbed": self.n_absorbed,
            "rng": rng_state(self._rng),
        }

    @classmethod
    def from_state(cls, state: dict) -> "DynamicGroupMaintainer":
        """Rebuild a maintainer from a :meth:`state_dict` document.

        Parameters
        ----------
        state:
            A state document (possibly after a JSON round trip).

        Returns
        -------
        DynamicGroupMaintainer
            Maintainer whose groups, counters, and generator position
            are bit-identical to the captured instance.
        """
        maintainer = cls(
            int(state["k"]), random_state=rng_from_state(state["rng"])
        )
        maintainer._groups = [
            GroupStatistics.from_dict(entry) for entry in state["groups"]
        ]
        maintainer.n_splits = int(state["n_splits"])
        maintainer.n_merges = int(state["n_merges"])
        maintainer.n_absorbed = int(state["n_absorbed"])
        if maintainer._groups:
            maintainer._refresh_centroids()
        return maintainer

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def n_groups(self) -> int:
        """Number of maintained groups."""
        return len(self._groups)

    @property
    def n_pending(self) -> int:
        """Records buffered during warm-up (before the first group)."""
        return len(self._warmup)

    def group_sizes(self) -> np.ndarray:
        """Per-group record counts."""
        return np.array([group.count for group in self._groups])

    def to_model(self) -> CondensedModel:
        """Snapshot the maintained statistics as a condensed model.

        The snapshot deep-copies the group statistics, so continued
        streaming does not mutate it.
        """
        if not self._groups:
            raise ValueError(
                "no groups yet: fewer than k records have arrived"
            )
        model = CondensedModel(
            groups=[group.copy() for group in self._groups], k=self.k
        )
        model.metadata["n_splits"] = self.n_splits
        model.metadata["n_merges"] = self.n_merges
        model.metadata["n_absorbed"] = self.n_absorbed
        for group in self._groups:
            telemetry.histogram_observe(
                "dynamic.group_size", group.count,
                buckets=DEFAULT_SIZE_BUCKETS,
            )
        return model

    def _refresh_centroids(self) -> None:
        self._centroids = np.vstack(
            [group.centroid for group in self._groups]
        )

    def __repr__(self) -> str:
        return (
            f"DynamicGroupMaintainer(k={self.k}, n_groups={self.n_groups}, "
            f"n_absorbed={self.n_absorbed}, n_splits={self.n_splits})"
        )

"""Coarsening: raise a model's privacy level without the raw data.

A condensed model built at level ``k`` contains *only* group statistics
— yet those statistics are additive, so groups can be merged to obtain
a valid model at any higher level ``k' > k``.  This enables a workflow
the paper's framework makes possible but does not spell out: condense
once at a fine level on the trusted side, then publish progressively
coarser (more private) releases later without ever touching the
original records again.

The merge policy is greedy nearest-centroid pairing: repeatedly merge
the undersized group with the group whose centroid is closest,
preserving locality the same way the static algorithm's leftover
absorption does.
"""

from __future__ import annotations

import numpy as np

from repro.core.statistics import CondensedModel
from repro.neighbors.brute import pairwise_distances


def coarsen_model(model: CondensedModel, target_k: int) -> CondensedModel:
    """Merge groups until every group holds at least ``target_k`` records.

    Parameters
    ----------
    model:
        A fitted condensed model (its groups are deep-copied; the input
        is not modified).
    target_k:
        The desired indistinguishability level; must be at least the
        model's current ``k``.

    Returns
    -------
    CondensedModel
        A model whose every group has at least ``target_k`` records
        (a single group holding everything in the extreme).  Metadata
        records the provenance: ``coarsened_from`` and a ``lineage``
        list mapping each new group to the source-group indices it
        absorbed.
    """
    if target_k < model.k:
        raise ValueError(
            f"target_k={target_k} is below the model's level {model.k}; "
            "coarsening can only raise the privacy level"
        )
    if target_k > model.total_count:
        raise ValueError(
            f"target_k={target_k} exceeds the model's total of "
            f"{model.total_count} condensed records"
        )
    groups = [group.copy() for group in model.groups]
    lineage = [[index] for index in range(len(groups))]

    while len(groups) > 1:
        sizes = np.array([group.count for group in groups])
        undersized = np.flatnonzero(sizes < target_k)
        if undersized.size == 0:
            break
        # Merge the smallest undersized group into its nearest
        # neighbour; smallest-first keeps merges balanced.
        position = int(undersized[np.argmin(sizes[undersized])])
        centroids = np.vstack([group.centroid for group in groups])
        distances = pairwise_distances(
            centroids[position][None, :], centroids, squared=True
        )[0]
        distances[position] = np.inf
        neighbour = int(np.argmin(distances))
        groups[neighbour].merge(groups[position])
        lineage[neighbour].extend(lineage[position])
        del groups[position]
        del lineage[position]

    coarsened = CondensedModel(groups=groups, k=target_k)
    coarsened.metadata["coarsened_from"] = model.k
    coarsened.metadata["lineage"] = [sorted(entry) for entry in lineage]
    if "memberships" in model.metadata:
        source = model.metadata["memberships"]
        coarsened.metadata["memberships"] = [
            np.concatenate([np.asarray(source[index]) for index in entry])
            for entry in coarsened.metadata["lineage"]
        ]
    return coarsened


def coarsening_schedule(
    model: CondensedModel, levels
) -> dict[int, CondensedModel]:
    """Produce a ladder of progressively more private models.

    Parameters
    ----------
    model:
        The base condensed model.
    levels:
        Iterable of target levels; each must be >= the model's ``k``.
        Levels are applied cumulatively from fine to coarse, so the
        whole ladder costs one pass.

    Returns
    -------
    dict
        Level -> coarsened model (the base level maps to the input).
    """
    levels = sorted(set(int(level) for level in levels))
    if levels and levels[0] < model.k:
        raise ValueError(
            f"all levels must be >= the model's k={model.k}, "
            f"got {levels[0]}"
        )
    ladder = {}
    current = model
    for level in levels:
        current = coarsen_model(current, level)
        ladder[level] = current
    return ladder

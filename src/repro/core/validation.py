"""Validity checking for condensed models.

A condensed model may arrive from outside the process — a JSON file, a
network payload — and a malformed or tampered one can poison everything
downstream (generation, coarsening, privacy accounting).  This module
checks the structural invariants the rest of the library assumes and
reports every violation found.
"""

from __future__ import annotations

import numpy as np

from repro.core.statistics import CondensedModel


def validate_model(
    model: CondensedModel, strict: bool = False
) -> list[str]:
    """Check a condensed model's structural invariants.

    Parameters
    ----------
    model:
        The model to check.
    strict:
        When true, raise ``ValueError`` listing the problems instead of
        returning them.

    Returns
    -------
    list of str
        Human-readable descriptions of every violation (empty when the
        model is valid):

        * non-finite entries in any group's sums;
        * non-positive group counts;
        * a group below the model's declared ``k``;
        * an implied covariance with significantly negative eigenvalues
          (beyond raw-sum round-off);
        * second-order diagonal entries smaller than allowed by the
          Cauchy-Schwarz bound ``Sc_jj >= Fs_j^2 / n``.
    """
    problems: list[str] = []
    for index, group in enumerate(model.groups):
        prefix = f"group {index}"
        if group.count <= 0:
            problems.append(f"{prefix}: non-positive count {group.count}")
            continue
        if not np.isfinite(group.first_order).all():
            problems.append(f"{prefix}: non-finite first-order sums")
            continue
        if not np.isfinite(group.second_order).all():
            problems.append(f"{prefix}: non-finite second-order sums")
            continue
        if group.count < model.k:
            problems.append(
                f"{prefix}: size {group.count} below the declared "
                f"k={model.k}"
            )
        # Cauchy-Schwarz on each attribute: n * Sc_jj >= Fs_j^2.
        lower_bound = group.first_order**2 / group.count
        diagonal = np.diag(group.second_order)
        scale = np.abs(diagonal).max() + 1.0
        violation = lower_bound - diagonal
        if (violation > 1e-6 * scale).any():
            worst = int(np.argmax(violation))
            problems.append(
                f"{prefix}: second-order diagonal below the "
                f"Cauchy-Schwarz bound at attribute {worst}"
            )
            continue
        eigenvalues = np.linalg.eigvalsh(group.covariance)
        eigen_scale = max(abs(float(eigenvalues[-1])), 1.0)
        if eigenvalues[0] < -1e-6 * eigen_scale:
            problems.append(
                f"{prefix}: covariance has significantly negative "
                f"eigenvalue {eigenvalues[0]:.3e}"
            )
    if strict and problems:
        raise ValueError(
            "invalid condensed model: " + "; ".join(problems)
        )
    return problems

"""High-level condensation API.

Three estimator-style front doors over the algorithms in this package:

* :class:`StaticCondenser` — condense a complete database (Fig. 1) and
  generate anonymized records from it (§2.1).
* :class:`DynamicCondenser` — bootstrap from a database and keep
  condensing an incremental stream (Figs. 2–3).
* :class:`ClasswiseCondenser` — the paper's classification recipe
  (§2.3): condense each class separately so anonymized data carries
  class labels and any off-the-shelf classifier can train on it.

All three share the ``fit`` / ``generate`` vocabulary: *fit* builds group
statistics (the only state a privacy-conscious server retains), and
*generate* draws an anonymized data set from them.
"""

from __future__ import annotations

import numpy as np

from repro.core.condensation import create_condensed_groups
from repro.core.dynamic import DynamicGroupMaintainer
from repro.core.generation import generate_anonymized_data
from repro.core.statistics import CondensedModel, GroupStatistics
from repro.linalg.rng import check_random_state, rng_state


class StaticCondenser:
    """Condense a complete database and regenerate anonymized records.

    Parameters
    ----------
    k:
        Indistinguishability level (minimum group size).
    strategy:
        Seed-selection strategy for group formation — ``"random"``
        (paper), ``"mdav"``, ``"kmeans"``, or a strategy object.
    sampler:
        Per-eigenvector generation distribution — ``"uniform"`` (paper),
        ``"gaussian"``, or a callable.
    random_state:
        Seed or generator driving both condensation and generation.
    n_shards, n_workers:
        When either is set, condensation runs on the sharded parallel
        engine (:func:`repro.parallel.condense_sharded`) with this
        shard count and worker-pool size.  ``None`` (default) keeps
        the serial path.
    checkpoint_dir:
        Per-shard checkpoint directory for sharded runs (see
        :func:`repro.parallel.condense_sharded`): completed shards are
        persisted as statistics-only checkpoints and reloaded when the
        identical configuration is re-fit after a crash.  Requires an
        integer ``random_state`` and a sharded run.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import StaticCondenser
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(200, 4))
    >>> condenser = StaticCondenser(k=10, random_state=0).fit(data)
    >>> anonymized = condenser.generate()
    >>> anonymized.shape
    (200, 4)
    """

    def __init__(self, k: int, strategy="random", sampler="uniform",
                 random_state=None, n_shards=None, n_workers=None,
                 checkpoint_dir=None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.strategy = strategy
        self.sampler = sampler
        self.n_shards = n_shards
        self.n_workers = n_workers
        self.checkpoint_dir = checkpoint_dir
        # Shard checkpoints are keyed by the raw integer seed; the
        # generator below serves the serial path and generation.
        self._seed = random_state
        self._rng = check_random_state(random_state)
        self.model_: CondensedModel | None = None

    def fit(self, data: np.ndarray) -> "StaticCondenser":
        """Condense ``data`` into group statistics."""
        random_state = (
            self._seed if self.checkpoint_dir is not None else self._rng
        )
        self.model_ = create_condensed_groups(
            data, self.k, strategy=self.strategy,
            random_state=random_state,
            n_shards=self.n_shards, n_workers=self.n_workers,
            checkpoint_dir=self.checkpoint_dir,
        )
        return self

    def generate(self, sizes=None) -> np.ndarray:
        """Draw an anonymized data set from the fitted statistics."""
        model = self._require_fitted()
        return generate_anonymized_data(
            model, sampler=self.sampler, random_state=self._rng, sizes=sizes
        )

    def fit_generate(self, data: np.ndarray) -> np.ndarray:
        """Condense ``data`` and return an anonymized replacement for it."""
        return self.fit(data).generate()

    @property
    def average_group_size(self) -> float:
        """Mean condensed-group size (the paper's sweep variable)."""
        return self._require_fitted().average_group_size

    def _require_fitted(self) -> CondensedModel:
        if self.model_ is None:
            raise RuntimeError("condenser is not fitted; call fit() first")
        return self.model_


class DynamicCondenser:
    """Condense an incrementally updated data set.

    Parameters
    ----------
    k:
        Indistinguishability level; maintained group sizes stay within
        ``[k, 2k)``.
    strategy, sampler, random_state:
        As for :class:`StaticCondenser`; the strategy applies only to the
        static bootstrap.
    wal_dir:
        When given, the condenser is *durable*: every completed stream
        operation is journaled to a write-ahead log in this directory
        as a statistics delta, and :meth:`checkpoint` (or the
        ``checkpoint_every`` cadence) snapshots the full state.  After
        a crash, :meth:`recover` rebuilds bit-identical state and
        reports the stream :attr:`position` to resume the feed from.
        See ``docs/durability.md``.
    checkpoint_every:
        Automatic checkpoint cadence in WAL entries; ``0`` (default)
        checkpoints only on explicit :meth:`checkpoint` calls.
    fsync_every:
        Group-commit batch size for the write-ahead log: ``fsync`` the
        active segment every this many appends.  The default ``1``
        makes every operation durable before it returns; larger values
        trade the durability of at most the newest ``fsync_every - 1``
        operations for ingest throughput (the at-least-once re-feed
        replays anything lost).  See ``docs/durability.md``.
    batch_size:
        Ingest block size for :meth:`partial_fit`.  The default ``1``
        streams record-at-a-time — bit-identical to every prior
        release.  Larger values route each block through
        :meth:`~repro.core.dynamic.DynamicGroupMaintainer.ingest_block`
        (one vectorized distance matrix per block, batched absorbs)
        and, on a durable condenser, journal one ``batch`` WAL entry
        per block.  Exact moment conservation holds for any block
        size; the produced grouping may differ from the sequential one
        (assignment happens against a per-block centroid snapshot).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import DynamicCondenser
    >>> rng = np.random.default_rng(0)
    >>> base, stream = rng.normal(size=(100, 3)), rng.normal(size=(400, 3))
    >>> condenser = DynamicCondenser(k=10, random_state=0).fit(base)
    >>> condenser.partial_fit(stream)  # doctest: +ELLIPSIS
    <repro.core.condenser.DynamicCondenser object at ...>
    >>> condenser.generate().shape
    (500, 3)
    """

    def __init__(self, k: int, strategy="random", sampler="uniform",
                 random_state=None, wal_dir=None,
                 checkpoint_every: int = 0, fsync_every: int = 1,
                 batch_size: int = 1):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.k = int(k)
        self.batch_size = int(batch_size)
        self.strategy = strategy
        self.sampler = sampler
        self.wal_dir = wal_dir
        self.checkpoint_every = int(checkpoint_every)
        self.fsync_every = int(fsync_every)
        self._rng = check_random_state(random_state)
        self._maintainer: DynamicGroupMaintainer | None = None
        self._position = 0
        self._ops: list = []
        self._manager = None
        self._closed = False
        if wal_dir is not None:
            # Deferred import: repro.durability pulls in telemetry while
            # this module may still be mid-import via repro/__init__.
            from repro.durability import DurabilityManager

            self._manager = DurabilityManager(
                wal_dir, checkpoint_every=self.checkpoint_every,
                fsync_every=self.fsync_every,
            )

    def fit(self, data: np.ndarray | None = None) -> "DynamicCondenser":
        """Bootstrap the maintainer, optionally from a static database.

        With ``data=None`` the condenser starts cold and buffers the
        first ``k`` streamed records before forming its founding group.
        On a durable condenser, fitting journals a ``bootstrap`` entry
        carrying the full post-bootstrap state (statistics and RNG
        position only) and resets :attr:`position` to zero.
        """
        self._maintainer = DynamicGroupMaintainer(
            self.k,
            initial_data=data,
            strategy=self.strategy,
            random_state=self._rng,
        )
        self._position = 0
        if self._manager is not None:
            self._attach_durability()
            self._manager.append({
                "kind": "bootstrap", "pos": 0,
                "state": self._maintainer.state_dict(),
            })
        return self

    def partial_fit(self, records: np.ndarray) -> "DynamicCondenser":
        """Stream one record (shape ``(d,)``) or many (shape ``(m, d)``)."""
        maintainer = self._require_fitted()
        records = np.asarray(records, dtype=float)
        if records.ndim == 1:
            records = records[None, :]
        elif records.ndim != 2:
            raise ValueError(
                f"records must be 1-D or 2-D, got shape {records.shape}"
            )
        if self.batch_size > 1:
            for start in range(0, records.shape[0], self.batch_size):
                block = records[start:start + self.batch_size]
                maintainer.ingest_block(block)
                self._position += block.shape[0]
                self._flush_ops(kind="batch")
        elif self._manager is None:
            maintainer.add_stream(records)
            self._position += records.shape[0]
        else:
            for record in records:
                maintainer.add(record)
                self._position += 1
                self._flush_ops()
        return self

    def partial_remove(self, records: np.ndarray) -> "DynamicCondenser":
        """Process deletion requests: one record (``(d,)``) or many.

        Each record is subtracted from its nearest group's statistics;
        groups that fall below ``k`` are merged into their nearest
        neighbour (and re-split if the merge reaches ``2k``), so every
        surviving group keeps the indistinguishability level.
        """
        maintainer = self._require_fitted()
        records = np.asarray(records, dtype=float)
        if records.ndim == 1:
            records = records[None, :]
        elif records.ndim != 2:
            raise ValueError(
                f"records must be 1-D or 2-D, got shape {records.shape}"
            )
        for record in records:
            maintainer.remove(record)
            self._position += 1
            self._flush_ops()
        return self

    def generate(self, sizes=None) -> np.ndarray:
        """Draw an anonymized data set from the current statistics.

        On a durable condenser, the post-generation RNG position is
        journaled so recovered state reproduces later draws exactly.
        """
        model = self.model_
        generated = generate_anonymized_data(
            model, sampler=self.sampler, random_state=self._rng, sizes=sizes
        )
        if self._manager is not None:
            self._manager.append({
                "kind": "rng", "pos": self._position,
                "state": rng_state(self._rng),
            })
        return generated

    def journal_rng(self) -> None:
        """Journal the current RNG position (no-op when not durable).

        :meth:`generate` does this automatically; callers that advance
        this condenser's generator outside of it — e.g. the serving
        layer drawing from a model combined across shards — use this
        hook so recovered draw positions stay exact.
        """
        if self._manager is not None:
            self._manager.append({
                "kind": "rng", "pos": self._position,
                "state": rng_state(self._rng),
            })

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    @property
    def position(self) -> int:
        """Number of completed stream operations (adds and removals).

        After :meth:`recover`, this is the position the upstream feed
        must resume from (the at-least-once recovery contract).
        """
        return self._position

    def checkpoint(self):
        """Snapshot the full durable state now.

        Returns
        -------
        pathlib.Path
            Path of the written snapshot.

        Raises
        ------
        RuntimeError
            If the condenser was built without ``wal_dir`` or is not
            fitted.
        """
        self._require_fitted()
        if self._manager is None:
            raise RuntimeError(
                "durability is disabled; construct with wal_dir= to "
                "enable checkpointing"
            )
        return self._manager.checkpoint()

    def close(self) -> None:
        """Flush and close the write-ahead log, if durable.

        Idempotent; :attr:`closed` reports the state so multi-shard
        owners (the serve plane) can coordinate shutdown per shard.
        """
        if self._manager is not None:
            self._manager.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run.

        Returns
        -------
        bool
        """
        return self._closed

    @classmethod
    def recover(cls, wal_dir, strategy="random", sampler="uniform",
                checkpoint_every: int = 0, fsync_every: int = 1,
                batch_size: int = 1) -> "DynamicCondenser":
        """Rebuild a durable condenser from its durability directory.

        Loads the newest valid snapshot, replays the WAL tail, and
        returns a condenser whose group statistics, counters, and RNG
        position are bit-identical to the in-memory state at the
        durable frontier.  The caller must re-feed the upstream stream
        from :attr:`position` onward.

        Parameters
        ----------
        wal_dir:
            The durability directory of the crashed condenser.
        strategy, sampler:
            Estimator settings for the recovered instance (they are
            not persisted; the strategy only matters for a future
            re-``fit``).
        checkpoint_every, fsync_every:
            Durability knobs for the recovered instance (cadence and
            WAL group-commit batch, as in the constructor).
        batch_size:
            Ingest block size for the recovered instance, as in the
            constructor (not persisted; replay is kind-agnostic).

        Returns
        -------
        DynamicCondenser

        Raises
        ------
        repro.durability.RecoveryError
            If the directory holds nothing reconstructible.
        """
        from repro.durability import DurabilityManager, rebuild_maintainer

        manager = DurabilityManager(
            wal_dir, checkpoint_every=int(checkpoint_every),
            fsync_every=int(fsync_every),
        )
        maintainer, position = rebuild_maintainer(manager.recover())
        condenser = cls(
            maintainer.k, strategy=strategy, sampler=sampler,
            random_state=maintainer._rng, batch_size=batch_size,
        )
        condenser.wal_dir = wal_dir
        condenser.checkpoint_every = int(checkpoint_every)
        condenser.fsync_every = int(fsync_every)
        condenser._manager = manager
        condenser._maintainer = maintainer
        condenser._position = position
        condenser._attach_durability()
        return condenser

    def _attach_durability(self) -> None:
        """Bind the journal and checkpoint provider to the maintainer."""
        self._ops = []
        self._maintainer.journal = self._ops.append
        self._manager.bind(self._durable_state)

    def _durable_state(self) -> dict:
        """Checkpoint document: maintainer state plus stream position."""
        return {
            "maintainer": self._maintainer.state_dict(),
            "position": self._position,
        }

    def _flush_ops(self, kind: str = "op") -> None:
        """Write the journal of one completed source op as a WAL entry.

        Memory is mutated first, then logged: a crash in between loses
        only the latest operation, which the at-least-once re-feed
        replays.  Operations that emitted nothing (warm-up buffering)
        leave no entry — raw records are never durable.  Batched
        ingestion passes ``kind="batch"`` so a whole block travels as
        one entry and the resume position stays on a block edge.
        """
        if self._manager is None or not self._ops:
            return
        entry = {"kind": kind, "pos": self._position,
                 "ops": list(self._ops)}
        self._ops.clear()
        self._manager.append(entry)

    @property
    def model_(self) -> CondensedModel:
        """Snapshot of the maintained group statistics."""
        return self._require_fitted().to_model()

    @property
    def n_groups(self) -> int:
        """Number of currently maintained groups."""
        return self._require_fitted().n_groups

    @property
    def n_splits(self) -> int:
        """Number of statistics splits performed so far."""
        return self._require_fitted().n_splits

    def _require_fitted(self) -> DynamicGroupMaintainer:
        if self._maintainer is None:
            raise RuntimeError("condenser is not fitted; call fit() first")
        return self._maintainer


class ClasswiseCondenser:
    """Per-class condensation for privacy-preserving classification.

    The paper's §2.3: "separate sets of data were generated from each of
    the different classes" — condensation runs independently per class,
    and generation emits labelled anonymized records, so any existing
    classifier trains on the output unchanged.

    Parameters
    ----------
    k:
        Indistinguishability level applied within every class.
    mode:
        ``"static"`` (default) or ``"dynamic"`` — which condensation
        regime to run within each class.
    small_class_policy:
        What to do with a class holding fewer than ``k`` records, where
        the indistinguishability level is unattainable.  ``"error"``
        (default) raises; ``"single_group"`` condenses the whole class
        into one group — its members are indistinguishable from each
        other but at a weaker level than ``k``, the only option the
        paper's framework leaves for such classes (the UCI Ecoli set the
        paper uses has classes of 2 records).
    strategy, sampler, random_state:
        As for :class:`StaticCondenser`.
    n_shards, n_workers:
        As for :class:`StaticCondenser`; applied to every per-class
        static condensation (ignored in dynamic mode, whose streaming
        maintenance is inherently serial).
    batch_size:
        Ingest block size for dynamic mode: each class's stream phase
        runs through
        :meth:`~repro.core.dynamic.DynamicGroupMaintainer.ingest_many`
        with this block size.  The default ``1`` keeps the sequential
        path; ignored in static mode.
    """

    def __init__(self, k: int, mode: str = "static", strategy="random",
                 sampler="uniform", small_class_policy: str = "error",
                 random_state=None, n_shards=None, n_workers=None,
                 batch_size: int = 1):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if mode not in ("static", "dynamic"):
            raise ValueError(
                f"mode must be 'static' or 'dynamic', got {mode!r}"
            )
        if small_class_policy not in ("error", "single_group"):
            raise ValueError(
                "small_class_policy must be 'error' or 'single_group', "
                f"got {small_class_policy!r}"
            )
        self.k = int(k)
        self.mode = mode
        self.strategy = strategy
        self.sampler = sampler
        self.small_class_policy = small_class_policy
        self.n_shards = n_shards
        self.n_workers = n_workers
        self.batch_size = int(batch_size)
        self._rng = check_random_state(random_state)
        self.classes_ = None
        self.models_: dict = {}

    def fit(self, data: np.ndarray, labels: np.ndarray):
        """Condense each class's records independently.

        For dynamic mode, each class's records are split so that the
        first ``max(k, 25%)`` bootstrap the maintainer statically and the
        rest arrive as a stream, mirroring the paper's experimental
        setup of a static database plus an incremental stream.

        Classes with fewer than ``k`` records cannot meet the
        indistinguishability level and raise ``ValueError``.
        """
        data = np.asarray(data, dtype=float)
        labels = np.asarray(labels)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if labels.shape != (data.shape[0],):
            raise ValueError(
                f"labels must have shape ({data.shape[0]},), "
                f"got {labels.shape}"
            )
        self.classes_ = np.unique(labels)
        self.models_ = {}
        for label in self.classes_:
            members = data[labels == label]
            if members.shape[0] < self.k:
                if self.small_class_policy == "error":
                    raise ValueError(
                        f"class {label!r} has {members.shape[0]} records, "
                        f"fewer than k={self.k}; pass "
                        "small_class_policy='single_group' to condense it "
                        "into one (weaker) group"
                    )
                self.models_[label] = CondensedModel(
                    groups=[GroupStatistics.from_records(members)],
                    k=members.shape[0],
                    metadata={"small_class": True},
                )
                continue
            self.models_[label] = self._condense_class(members)
        return self

    def _condense_class(self, members: np.ndarray) -> CondensedModel:
        if self.mode == "static":
            return create_condensed_groups(
                members, self.k, strategy=self.strategy,
                random_state=self._rng,
                n_shards=self.n_shards, n_workers=self.n_workers,
            )
        bootstrap_size = max(self.k, members.shape[0] // 4)
        bootstrap_size = min(bootstrap_size, members.shape[0])
        maintainer = DynamicGroupMaintainer(
            self.k,
            initial_data=members[:bootstrap_size],
            strategy=self.strategy,
            random_state=self._rng,
        )
        maintainer.ingest_many(
            members[bootstrap_size:], batch_size=self.batch_size
        )
        return maintainer.to_model()

    def generate(self):
        """Draw labelled anonymized records, one batch per class.

        Returns
        -------
        (data, labels)
            ``data`` has the same per-class cardinalities as the fitted
            input; ``labels`` aligns with it.
        """
        if self.classes_ is None:
            raise RuntimeError("condenser is not fitted; call fit() first")
        parts = []
        label_parts = []
        for label in self.classes_:
            model = self.models_[label]
            generated = generate_anonymized_data(
                model, sampler=self.sampler, random_state=self._rng
            )
            parts.append(generated)
            label_parts.append(np.full(generated.shape[0], label))
        return np.vstack(parts), np.concatenate(label_parts)

    def fit_generate(self, data: np.ndarray, labels: np.ndarray):
        """Condense labelled data and return its anonymized replacement."""
        return self.fit(data, labels).generate()

    @property
    def average_group_size(self) -> float:
        """Mean group size across all per-class models."""
        if not self.models_:
            raise RuntimeError("condenser is not fitted; call fit() first")
        sizes = np.concatenate(
            [model.group_sizes for model in self.models_.values()]
        )
        return float(sizes.mean())

"""Anonymized-data generation from condensed groups (§2.1 of the paper).

For a group with statistics ``(Fs, Sc, n)``:

1. Form the covariance matrix ``C`` (Observation 2) and decompose it as
   ``C = P Λ Pᵀ`` (Equation 1) — ``P``'s columns are an orthonormal axis
   system along which second-order correlations vanish.
2. Draw ``n`` points whose coordinates along each eigenvector are
   *independently and uniformly* distributed with variance equal to the
   corresponding eigenvalue: a uniform over a range ``a`` has variance
   ``a² / 12``, so the range is ``a = sqrt(12 λ)``.
3. Shift by the group centroid.

The uniform choice is the paper's locally-flat approximation.  The module
also provides a Gaussian sampler (same first two moments, different shape
assumption) as an ablation, and accepts arbitrary callables for custom
per-axis distributions.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.core.statistics import CondensedModel, GroupStatistics
from repro.linalg.rng import check_random_state
from repro.telemetry import DEFAULT_SIZE_BUCKETS


def _uniform_axis_sampler(rng, eigenvalues: np.ndarray, size: int):
    """Unit-variance-λ uniform coordinates, shape ``(size, d)``."""
    half_range = np.sqrt(12.0 * eigenvalues) / 2.0
    return rng.uniform(-1.0, 1.0, size=(size, eigenvalues.shape[0])) * (
        half_range[None, :]
    )


def _gaussian_axis_sampler(rng, eigenvalues: np.ndarray, size: int):
    """Gaussian coordinates with per-axis variance λ."""
    stddev = np.sqrt(eigenvalues)
    return rng.standard_normal((size, eigenvalues.shape[0])) * stddev[None, :]


_SAMPLERS = {
    "uniform": _uniform_axis_sampler,
    "gaussian": _gaussian_axis_sampler,
}


def resolve_sampler(sampler):
    """Normalize a sampler name or callable into a callable.

    A sampler callable has signature ``(rng, eigenvalues, size)`` and
    returns coordinates in the eigen-basis, shape ``(size, d)``, with
    per-axis variance equal to the given eigenvalues.

    Parameters
    ----------
    sampler:
        ``"uniform"``, ``"gaussian"``, or a callable with the signature
        above (returned unchanged).

    Returns
    -------
    callable
        The resolved sampler.

    Raises
    ------
    ValueError
        If ``sampler`` is an unknown name.
    TypeError
        If ``sampler`` is neither a string nor callable.
    """
    if isinstance(sampler, str):
        try:
            return _SAMPLERS[sampler]
        except KeyError:
            raise ValueError(
                f"unknown sampler {sampler!r}; "
                f"expected one of {sorted(_SAMPLERS)}"
            ) from None
    if callable(sampler):
        return sampler
    raise TypeError(
        f"sampler must be a known name or callable, "
        f"got {type(sampler).__name__}"
    )


def generate_group_records(
    group: GroupStatistics,
    size: int | None = None,
    sampler="uniform",
    random_state=None,
) -> np.ndarray:
    """Draw anonymized records from one group's statistics.

    Parameters
    ----------
    group:
        The condensed group.
    size:
        Number of records to draw; defaults to ``n(G)`` so the anonymized
        data set has the same size as the original.
    sampler:
        ``"uniform"`` (paper), ``"gaussian"``, or a custom callable — see
        :func:`resolve_sampler`.
    random_state:
        Seed or generator.

    Returns
    -------
    numpy.ndarray, shape (size, d)
    """
    if group.count == 0:
        raise ValueError("cannot generate from an empty group")
    if size is None:
        size = group.count
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    rng = check_random_state(random_state)
    sampler = resolve_sampler(sampler)
    tick = time.perf_counter()
    eigenvalues, eigenvectors = group.eigen_system()
    telemetry.histogram_observe(
        "generation.eigen_seconds", time.perf_counter() - tick
    )
    tick = time.perf_counter()
    coordinates = sampler(rng, eigenvalues, size)
    telemetry.histogram_observe(
        "generation.draw_seconds", time.perf_counter() - tick
    )
    telemetry.counter_inc("generation.records", size)
    coordinates = np.asarray(coordinates, dtype=float)
    if coordinates.shape != (size, group.n_features):
        raise ValueError(
            "sampler returned wrong shape: expected "
            f"{(size, group.n_features)}, got {coordinates.shape}"
        )
    return group.centroid[None, :] + coordinates @ eigenvectors.T


def generate_anonymized_data(
    model: CondensedModel,
    sampler="uniform",
    random_state=None,
    sizes=None,
) -> np.ndarray:
    """Draw a full anonymized data set from a condensed model.

    Each group contributes records independently; by default every group
    contributes exactly ``n(G)`` records so the output matches the input
    cardinality.

    Parameters
    ----------
    model:
        Condensed model to generate from.
    sampler:
        Per-axis distribution, as in :func:`generate_group_records`.
    random_state:
        Seed or generator.
    sizes:
        Optional per-group record counts (sequence aligned with
        ``model.groups``) to over- or under-sample specific groups.

    Returns
    -------
    numpy.ndarray, shape (sum(sizes), d)
    """
    rng = check_random_state(random_state)
    if sizes is None:
        sizes = [group.count for group in model.groups]
    elif len(sizes) != model.n_groups:
        raise ValueError(
            f"sizes must have one entry per group ({model.n_groups}), "
            f"got {len(sizes)}"
        )
    with telemetry.span("generation.generate") as generate_span:
        generate_span.set_attribute("n_groups", model.n_groups)
        generate_span.set_attribute("n_records", int(sum(sizes)))
        for size in sizes:
            telemetry.histogram_observe(
                "generation.group_size", size,
                buckets=DEFAULT_SIZE_BUCKETS,
            )
        parts = [
            generate_group_records(group, size=size, sampler=sampler,
                                   random_state=rng)
            for group, size in zip(model.groups, sizes)
            if size > 0
        ]
        if not parts:
            return np.empty((0, model.n_features))
        return np.vstack(parts)

"""The paper's contribution: condensation-based privacy preservation.

Layered as:

* :mod:`repro.core.statistics` — the ``(Fs, Sc, n)`` group representation
  (§2, Observations 1–2) and the :class:`CondensedModel` container.
* :mod:`repro.core.condensation` — static group creation (Fig. 1).
* :mod:`repro.core.dynamic` — streaming maintenance with statistics
  splitting (Figs. 2–4).
* :mod:`repro.core.generation` — anonymized-data regeneration (§2.1).
* :mod:`repro.core.strategies` — pluggable grouping strategies
  (the paper's random seeding plus MDAV and k-means ablations).
* :mod:`repro.core.condenser` — estimator-style public API.
"""

from repro.core.coarsen import coarsen_model, coarsening_schedule
from repro.core.condensation import (
    condensation_information_loss,
    create_condensed_groups,
)
from repro.core.condenser import (
    ClasswiseCondenser,
    DynamicCondenser,
    StaticCondenser,
)
from repro.core.dynamic import DynamicGroupMaintainer, split_group_statistics
from repro.core.generation import (
    generate_anonymized_data,
    generate_group_records,
)
from repro.core.statistics import CondensedModel, GroupStatistics
from repro.core.strategies import (
    KMeansSeedStrategy,
    MDAVStrategy,
    RandomSeedStrategy,
)
from repro.core.validation import validate_model

__all__ = [
    "CondensedModel",
    "GroupStatistics",
    "coarsen_model",
    "coarsening_schedule",
    "create_condensed_groups",
    "condensation_information_loss",
    "split_group_statistics",
    "DynamicGroupMaintainer",
    "generate_anonymized_data",
    "generate_group_records",
    "StaticCondenser",
    "DynamicCondenser",
    "ClasswiseCondenser",
    "RandomSeedStrategy",
    "MDAVStrategy",
    "KMeansSeedStrategy",
    "validate_model",
]

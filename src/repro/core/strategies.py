"""Grouping strategies for static condensation.

The paper's ``CreateCondensedGroups`` samples each group seed uniformly
at random from the remaining records.  That choice is one point in a
design space this module makes explicit so the ablation benches can
measure what it costs or buys:

* :class:`RandomSeedStrategy` — the paper's algorithm.
* :class:`MDAVStrategy` — the classic microaggregation heuristic
  (Maximum Distance to Average Vector): seed each group at the record
  farthest from the current centroid of the remaining data, which tends
  to condense the periphery first and produce tighter groups.
* :class:`KMeansSeedStrategy` — partition the data with k-means into
  ``⌊n/k⌋`` clusters, then rebalance so every group has at least ``k``
  members.  This trades the paper's strict greedy locality for globally
  coordinated groups.

Strategies implement one of two hooks: ``pick_seed`` (iterative seeding,
used by the paper's greedy loop) or ``plan`` (produce a full partition up
front).  ``plan`` returning ``None`` means "use the greedy loop with my
``pick_seed``".
"""

from __future__ import annotations

import numpy as np

from repro.neighbors.brute import pairwise_distances


class RandomSeedStrategy:
    """The paper's strategy: sample seeds uniformly at random."""

    name = "random"

    def plan(self, data, k, rng):
        """No up-front partition; use the greedy loop."""
        return None

    def pick_seed(
        self, data: np.ndarray, remaining: np.ndarray, rng
    ) -> int:
        """Position (into ``remaining``) of the next seed record."""
        return int(rng.integers(0, remaining.shape[0]))


class MDAVStrategy:
    """Maximum-Distance-to-Average-Vector seeding (microaggregation)."""

    name = "mdav"

    def plan(self, data, k, rng):
        """No up-front partition; use the greedy loop."""
        return None

    def pick_seed(
        self, data: np.ndarray, remaining: np.ndarray, rng
    ) -> int:
        """Seed at the remaining record farthest from the remaining mean."""
        records = data[remaining]
        centroid = records.mean(axis=0)
        distances = pairwise_distances(
            centroid[None, :], records, squared=True
        )[0]
        return int(np.argmax(distances))


class KMeansSeedStrategy:
    """Plan groups with k-means, then rebalance to honour the minimum size.

    Parameters
    ----------
    max_iter:
        Lloyd iteration cap for the internal k-means run.
    """

    name = "kmeans"

    def __init__(self, max_iter: int = 50):
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.max_iter = int(max_iter)

    def pick_seed(self, data, remaining, rng):
        """Unused; k-means planning partitions all records at once."""
        raise RuntimeError(
            "KMeansSeedStrategy plans a full partition; pick_seed is unused"
        )

    def plan(self, data: np.ndarray, k: int, rng) -> list[np.ndarray]:
        """Partition all records into groups of at least ``k``."""
        # Import here to avoid a package-level cycle: mining.kmeans is a
        # consumer of core in the public API, but only this optional
        # strategy needs it inside core.
        from repro.mining.kmeans import KMeans

        n = data.shape[0]
        n_groups = max(1, n // k)
        model = KMeans(
            n_clusters=n_groups, max_iter=self.max_iter, random_state=rng
        ).fit(data)
        assignments = model.labels_
        parts = [
            np.flatnonzero(assignments == cluster)
            for cluster in range(n_groups)
        ]
        return _rebalance_partition(data, parts, k)


def _rebalance_partition(
    data: np.ndarray, parts: list[np.ndarray], k: int
) -> list[np.ndarray]:
    """Ensure every part has at least ``k`` members.

    Undersized parts are dissolved, their records reassigned to the
    nearest surviving part (by centroid).  If every part is undersized,
    everything collapses into a single group.
    """
    survivors = [part for part in parts if part.shape[0] >= k]
    orphans = [part for part in parts if 0 < part.shape[0] < k]
    if not survivors:
        merged = np.concatenate([part for part in parts if part.shape[0]])
        return [np.sort(merged)]
    if orphans:
        centroids = np.vstack(
            [data[part].mean(axis=0) for part in survivors]
        )
        merged = [list(part) for part in survivors]
        for part in orphans:
            distances = pairwise_distances(
                data[part], centroids, squared=True
            )
            nearest = np.argmin(distances, axis=1)
            for record_index, target in zip(part, nearest):
                merged[target].append(int(record_index))
        survivors = [np.array(sorted(part), dtype=np.int64)
                     for part in merged]
    return survivors


_STRATEGIES = {
    "random": RandomSeedStrategy,
    "mdav": MDAVStrategy,
    "kmeans": KMeansSeedStrategy,
}


def resolve_strategy(strategy):
    """Normalize a strategy name or instance into a strategy object.

    Parameters
    ----------
    strategy:
        ``"random"``, ``"mdav"``, ``"kmeans"``, or an object exposing
        ``plan``/``pick_seed`` (returned unchanged).

    Returns
    -------
    object
        The resolved strategy instance.

    Raises
    ------
    ValueError
        If ``strategy`` is an unknown name.
    TypeError
        If ``strategy`` is neither a name nor a strategy object.
    """
    if isinstance(strategy, str):
        try:
            return _STRATEGIES[strategy]()
        except KeyError:
            raise ValueError(
                f"unknown strategy {strategy!r}; "
                f"expected one of {sorted(_STRATEGIES)}"
            ) from None
    if hasattr(strategy, "plan") and hasattr(strategy, "pick_seed"):
        return strategy
    raise TypeError(
        "strategy must be a known name or an object with plan/pick_seed, "
        f"got {type(strategy).__name__}"
    )

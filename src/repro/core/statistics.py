"""Condensed-group statistics (§2 of the paper).

A condensed group ``G`` never stores its member records.  It stores only:

* ``Fs(G)`` — the vector of first-order sums, one per attribute;
* ``Sc(G)`` — the matrix of second-order product sums, one per attribute
  pair;
* ``n(G)`` — the number of records condensed into the group.

From these the group mean (Observation 1) and covariance (Observation 2)
are derivable, and from the covariance's eigendecomposition the group's
orthonormal axis system used for anonymized-data generation and for the
dynamic split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.linalg.symmetric import (
    covariance_from_sums,
    sorted_eigh,
    sums_from_covariance,
)


@dataclass
class GroupStatistics:
    """Aggregate statistics of one condensed group.

    Attributes
    ----------
    first_order:
        ``Fs(G)``, shape ``(d,)``.
    second_order:
        ``Sc(G)``, shape ``(d, d)``.
    count:
        ``n(G)``, the number of condensed records.
    """

    first_order: np.ndarray
    second_order: np.ndarray
    count: int

    def __post_init__(self):
        self.first_order = np.asarray(self.first_order, dtype=float)
        self.second_order = np.asarray(self.second_order, dtype=float)
        if self.first_order.ndim != 1:
            raise ValueError("first_order must be a vector")
        d = self.first_order.shape[0]
        if self.second_order.shape != (d, d):
            raise ValueError(
                f"second_order must have shape {(d, d)}, "
                f"got {self.second_order.shape}"
            )
        if self.count < 0:
            raise ValueError(f"count must be non-negative, got {self.count}")
        self.count = int(self.count)
        # Advisory covariance eigensystem hint ``(eigenvalues,
        # eigenvectors)`` for the batch split fast path.  It is never
        # serialized and never consulted by :meth:`eigen_system`; any
        # mutation of the sums drops it, so a present hint always
        # matches the current sums.
        self._eigen_hint = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, n_features: int) -> "GroupStatistics":
        """A zero-record group of the given dimensionality."""
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        return cls(
            first_order=np.zeros(n_features),
            second_order=np.zeros((n_features, n_features)),
            count=0,
        )

    @classmethod
    def from_records(cls, records: np.ndarray) -> "GroupStatistics":
        """Condense a record array of shape ``(m, d)`` into statistics."""
        records = np.asarray(records, dtype=float)
        if records.ndim != 2 or records.shape[0] == 0:
            raise ValueError(
                f"records must be a non-empty 2-D array, got {records.shape}"
            )
        return cls(
            first_order=records.sum(axis=0),
            second_order=records.T @ records,
            count=records.shape[0],
        )

    @classmethod
    def from_moments(
        cls, mean: np.ndarray, covariance: np.ndarray, count: int
    ) -> "GroupStatistics":
        """Build statistics from a mean / covariance / count triple.

        This is Equation 3 of the paper, used by the dynamic split to
        reassemble child sums from derived moments.
        """
        first_order, second_order = sums_from_covariance(
            mean, covariance, count
        )
        return cls(
            first_order=first_order, second_order=second_order, count=count
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, record: np.ndarray) -> None:
        """Fold one record into the group sums (dynamic ingestion)."""
        record = self._validate_record(record)
        self.first_order += record
        self.second_order += np.outer(record, record)
        self.count += 1
        self._eigen_hint = None

    def add_batch(self, records: np.ndarray) -> None:
        """Fold a batch of records into the group sums."""
        records = np.asarray(records, dtype=float)
        if records.ndim != 2 or records.shape[1] != self.n_features:
            raise ValueError(
                f"expected shape (m, {self.n_features}), got {records.shape}"
            )
        if records.shape[0] == 0:
            return
        self.first_order += records.sum(axis=0)
        self.second_order += records.T @ records
        self.count += records.shape[0]
        self._eigen_hint = None

    def merge(self, other: "GroupStatistics") -> None:
        """Fold another group's sums into this group (used for leftovers)."""
        if other.n_features != self.n_features:
            raise ValueError(
                "cannot merge groups of different dimensionality: "
                f"{self.n_features} vs {other.n_features}"
            )
        self.first_order += other.first_order
        self.second_order += other.second_order
        self.count += other.count
        self._eigen_hint = None

    def remove(self, record: np.ndarray) -> None:
        """Subtract one record from the group sums (deletion downdate).

        The record need not be one that was literally added — in the
        statistics-only world of condensation a deletion request can
        only be honoured against the group whose locality the record
        belongs to.  Removing the last record leaves a valid empty
        group.
        """
        record = self._validate_record(record)
        if self.count <= 0:
            raise ValueError("cannot remove from an empty group")
        self.first_order -= record
        self.second_order -= np.outer(record, record)
        self.count -= 1
        self._eigen_hint = None

    def ensure_psd(self) -> None:
        """Repair the second-order sums if the covariance went indefinite.

        Statistical deletion subtracts a record that may never have been
        a literal member of this group, which can push the implied
        covariance matrix outside the PSD cone.  This projects the
        covariance back onto it and rebuilds ``Sc`` accordingly; a no-op
        for already-valid groups.
        """
        if self.count == 0:
            return
        from repro.linalg.symmetric import nearest_psd

        covariance = covariance_from_sums(
            self.first_order, self.second_order, self.count
        )
        eigenvalues = np.linalg.eigvalsh(covariance)
        scale = max(abs(float(eigenvalues[-1])), 1.0)
        if eigenvalues[0] >= -1e-10 * scale:
            return
        repaired = nearest_psd(covariance)
        __, self.second_order = sums_from_covariance(
            self.centroid, repaired, self.count
        )
        self._eigen_hint = None

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def n_features(self) -> int:
        """Dimensionality ``d`` of the condensed records."""
        return self.first_order.shape[0]

    @property
    def centroid(self) -> np.ndarray:
        """Group mean ``Fs(G) / n(G)`` (Observation 1)."""
        if self.count == 0:
            raise ValueError("centroid of an empty group is undefined")
        return self.first_order / self.count

    @property
    def covariance(self) -> np.ndarray:
        """Group population covariance (Observation 2)."""
        return covariance_from_sums(
            self.first_order, self.second_order, self.count
        )

    def eigen_system(self):
        """Orthonormal axis system of the group (Equation 1).

        Returns
        -------
        eigenvalues : numpy.ndarray, shape (d,)
            Variances along the eigenvectors, decreasing and clipped to be
            non-negative.
        eigenvectors : numpy.ndarray, shape (d, d)
            Columns are the eigenvectors; column 0 is the most elongated
            direction (the dynamic split axis).

        Notes
        -----
        The mathematical group covariance is PSD by construction, so any
        negative eigenvalue here is floating-point cancellation in the
        raw-sum representation (severe when ``|mean| >> stddev``).  All
        negatives are therefore clipped to zero unconditionally rather
        than raising — the decomposition stays usable, at the cost of
        treating the cancellation noise as zero variance.
        """
        eigenvalues, eigenvectors = sorted_eigh(
            self.covariance, clip=False
        )
        return np.clip(eigenvalues, 0.0, None), eigenvectors

    def copy(self) -> "GroupStatistics":
        """Deep copy of the group statistics."""
        return GroupStatistics(
            first_order=self.first_order.copy(),
            second_order=self.second_order.copy(),
            count=self.count,
        )

    # ------------------------------------------------------------------
    # Serialization — group statistics are exactly what a server may
    # persist (the paper's relaxed trust model), so round-tripping them
    # is a first-class operation.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-python representation for JSON-style persistence."""
        return {
            "first_order": self.first_order.tolist(),
            "second_order": self.second_order.tolist(),
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GroupStatistics":
        """Inverse of :meth:`to_dict`."""
        return cls(
            first_order=np.asarray(payload["first_order"], dtype=float),
            second_order=np.asarray(payload["second_order"], dtype=float),
            count=int(payload["count"]),
        )

    def _validate_record(self, record: np.ndarray) -> np.ndarray:
        record = np.asarray(record, dtype=float)
        if record.shape != (self.n_features,):
            raise ValueError(
                f"expected shape ({self.n_features},), got {record.shape}"
            )
        if not np.isfinite(record).all():
            raise ValueError(
                "record contains NaN or infinite values"
            )
        return record

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"GroupStatistics(n_features={self.n_features}, "
            f"count={self.count})"
        )


@dataclass
class CondensedModel:
    """The full output of condensation: the set ``H`` of group statistics.

    This is what the paper's server retains — aggregate statistics only,
    never records.  The model knows how to report privacy levels and to
    expose centroids for routing and generation.

    Attributes
    ----------
    groups:
        The condensed groups.
    k:
        The indistinguishability level the model was built with.
    """

    groups: list[GroupStatistics]
    k: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not self.groups:
            raise ValueError("a condensed model needs at least one group")
        dims = {group.n_features for group in self.groups}
        if len(dims) != 1:
            raise ValueError(
                f"groups disagree on dimensionality: {sorted(dims)}"
            )

    @property
    def n_features(self) -> int:
        """Dimensionality of the condensed records."""
        return self.groups[0].n_features

    @property
    def n_groups(self) -> int:
        """Number of condensed groups."""
        return len(self.groups)

    @property
    def total_count(self) -> int:
        """Total number of condensed records across groups."""
        return sum(group.count for group in self.groups)

    @property
    def group_sizes(self) -> np.ndarray:
        """Per-group record counts."""
        return np.array([group.count for group in self.groups])

    @property
    def average_group_size(self) -> float:
        """Mean group size — the paper's sweep variable (X axis)."""
        return float(self.group_sizes.mean())

    @property
    def minimum_group_size(self) -> int:
        """The achieved indistinguishability level."""
        return int(self.group_sizes.min())

    def centroids(self) -> np.ndarray:
        """Stacked group centroids, shape ``(n_groups, d)``."""
        return np.vstack([group.centroid for group in self.groups])

    def to_dict(self) -> dict:
        """Plain-python representation for persistence."""
        return {
            "k": self.k,
            "metadata": dict(self.metadata),
            "groups": [group.to_dict() for group in self.groups],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CondensedModel":
        """Inverse of :meth:`to_dict`."""
        return cls(
            groups=[
                GroupStatistics.from_dict(entry)
                for entry in payload["groups"]
            ],
            k=int(payload["k"]),
            metadata=dict(payload.get("metadata", {})),
        )

    def __repr__(self) -> str:
        return (
            f"CondensedModel(n_groups={self.n_groups}, k={self.k}, "
            f"total_count={self.total_count})"
        )

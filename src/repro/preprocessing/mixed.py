"""Mixed continuous/categorical attribute handling.

The condensation algorithm is defined over continuous multi-dimensional
records; real tables (like Abalone, with its sex attribute) mix in
categoricals.  :class:`MixedTypeEncoder` maps such tables into a purely
continuous space — one-hot blocks for categoricals, pass-through for
numerics — and back, snapping generated one-hot blocks to their nearest
valid category.  The round trip makes condensation applicable to mixed
tables without touching the core algorithm, the approach follow-up
work on heterogeneous condensation takes.
"""

from __future__ import annotations

import numpy as np


class MixedTypeEncoder:
    """Encode mixed records into a continuous space and back.

    Parameters
    ----------
    categorical_columns:
        Indices of categorical attributes in the input layout.  All
        other columns are treated as continuous and passed through.

    Notes
    -----
    Categorical values are matched exactly (as floats); unseen values
    at transform time raise.  The inverse transform snaps each one-hot
    block to the category with the largest coordinate, so anonymized
    (noisy) blocks decode to valid categories.
    """

    def __init__(self, categorical_columns):
        self.categorical_columns = sorted(
            int(column) for column in categorical_columns
        )
        if len(set(self.categorical_columns)) != len(
            self.categorical_columns
        ):
            raise ValueError("categorical_columns contains duplicates")
        self.categories_ = None
        self._n_input_columns = None

    def fit(self, data: np.ndarray):
        """Learn the category vocabulary of each categorical column."""
        data = self._validate(data)
        if self.categorical_columns and (
            self.categorical_columns[0] < 0
            or self.categorical_columns[-1] >= data.shape[1]
        ):
            raise ValueError(
                "categorical column index out of range for "
                f"{data.shape[1]} columns"
            )
        self._n_input_columns = data.shape[1]
        self.categories_ = {
            column: np.unique(data[:, column])
            for column in self.categorical_columns
        }
        return self

    @property
    def n_output_columns(self) -> int:
        """Width of the encoded representation."""
        self._require_fitted()
        n_categorical = sum(
            categories.shape[0]
            for categories in self.categories_.values()
        )
        n_continuous = self._n_input_columns - len(
            self.categorical_columns
        )
        return n_continuous + n_categorical

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Encode mixed records into the continuous space.

        Output layout: continuous columns first (original order), then
        one one-hot block per categorical column (in column order).
        """
        self._require_fitted()
        data = self._validate(data)
        if data.shape[1] != self._n_input_columns:
            raise ValueError(
                f"expected {self._n_input_columns} columns, "
                f"got {data.shape[1]}"
            )
        blocks = [data[:, self._continuous_columns()]]
        for column in self.categorical_columns:
            categories = self.categories_[column]
            matches = data[:, column][:, None] == categories[None, :]
            if not matches.any(axis=1).all():
                bad = data[~matches.any(axis=1), column][0]
                raise ValueError(
                    f"unseen category {bad!r} in column {column}"
                )
            blocks.append(matches.astype(float))
        return np.hstack(blocks)

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its encoding."""
        return self.fit(data).transform(data)

    def inverse_transform(self, encoded: np.ndarray) -> np.ndarray:
        """Decode back to the original layout, snapping categoricals."""
        self._require_fitted()
        encoded = np.asarray(encoded, dtype=float)
        if encoded.ndim != 2 or encoded.shape[1] != self.n_output_columns:
            raise ValueError(
                f"expected shape (m, {self.n_output_columns}), "
                f"got {encoded.shape}"
            )
        decoded = np.empty((encoded.shape[0], self._n_input_columns))
        continuous = self._continuous_columns()
        decoded[:, continuous] = encoded[:, : len(continuous)]
        cursor = len(continuous)
        for column in self.categorical_columns:
            categories = self.categories_[column]
            block = encoded[:, cursor:cursor + categories.shape[0]]
            decoded[:, column] = categories[np.argmax(block, axis=1)]
            cursor += categories.shape[0]
        return decoded

    def _continuous_columns(self) -> list[int]:
        categorical = set(self.categorical_columns)
        return [
            column for column in range(self._n_input_columns)
            if column not in categorical
        ]

    def _require_fitted(self):
        if self.categories_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")

    @staticmethod
    def _validate(data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[0] == 0:
            raise ValueError("cannot fit/transform an empty data set")
        return data

"""Feature scaling.

Nearest-neighbour methods — both the condensation grouping and the k-NN
classifier — are distance-based, so attribute scales matter.  The
experiment harness standardizes every data set before condensation, the
same preparation any practitioner would apply.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Standardize attributes to zero mean and unit variance.

    Zero-variance attributes are left centred but unscaled (divisor 1) so
    constant columns pass through without producing NaNs.
    """

    def __init__(self):
        self.mean_ = None
        self.scale_ = None

    def fit(self, data: np.ndarray):
        """Learn per-attribute means and standard deviations."""
        data = self._validate(data)
        self.mean_ = data.mean(axis=0)
        scale = data.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Apply the learned standardization."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        data = self._validate(data)
        if data.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} attributes, "
                f"got {data.shape[1]}"
            )
        return (data - self.mean_) / self.scale_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its transform."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Undo the standardization."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        data = self._validate(data)
        return data * self.scale_ + self.mean_

    @staticmethod
    def _validate(data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[0] == 0:
            raise ValueError("cannot scale an empty data set")
        return data


class MinMaxScaler:
    """Rescale attributes into ``[feature_min, feature_max]``.

    Constant columns map to the midpoint of the target range.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        low, high = feature_range
        if not low < high:
            raise ValueError(
                f"feature_range must satisfy low < high, got {feature_range}"
            )
        self.feature_range = (float(low), float(high))
        self.data_min_ = None
        self.data_max_ = None

    def fit(self, data: np.ndarray):
        """Learn per-attribute minima and maxima."""
        data = StandardScaler._validate(data)
        self.data_min_ = data.min(axis=0)
        self.data_max_ = data.max(axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Apply the learned rescaling."""
        if self.data_min_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        data = StandardScaler._validate(data)
        if data.shape[1] != self.data_min_.shape[0]:
            raise ValueError(
                f"expected {self.data_min_.shape[0]} attributes, "
                f"got {data.shape[1]}"
            )
        low, high = self.feature_range
        span = self.data_max_ - self.data_min_
        scaled = np.empty_like(data)
        constant = span == 0.0
        varying = ~constant
        scaled[:, varying] = (
            data[:, varying] - self.data_min_[varying]
        ) / span[varying]
        scaled[:, constant] = 0.5
        return scaled * (high - low) + low

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its transform."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Undo the rescaling (constant columns return their minimum)."""
        if self.data_min_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        data = StandardScaler._validate(data)
        low, high = self.feature_range
        span = self.data_max_ - self.data_min_
        unit = (data - low) / (high - low)
        return unit * span + self.data_min_

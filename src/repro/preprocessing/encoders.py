"""Label and categorical-attribute encoding.

The Abalone data set carries one categorical attribute (sex); the twin
generator emits it as a category that must be numerically encoded before
distance computations, exactly as a practitioner would prepare the UCI
original.
"""

from __future__ import annotations

import numpy as np


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integers ``0..K-1``."""

    def __init__(self):
        self.classes_ = None
        self._index = None

    def fit(self, labels: np.ndarray):
        """Learn the label vocabulary (sorted order)."""
        labels = np.asarray(labels)
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        if labels.shape[0] == 0:
            raise ValueError("cannot fit an encoder on no labels")
        self.classes_ = np.unique(labels)
        self._index = {
            label: position for position, label in enumerate(self.classes_)
        }
        return self

    def transform(self, labels: np.ndarray) -> np.ndarray:
        """Encode labels; unseen labels raise ``ValueError``."""
        if self._index is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        labels = np.asarray(labels)
        try:
            return np.array(
                [self._index[label] for label in labels], dtype=np.int64
            )
        except KeyError as error:
            raise ValueError(f"unseen label: {error.args[0]!r}") from None

    def fit_transform(self, labels: np.ndarray) -> np.ndarray:
        """Fit on ``labels`` and return their encoding."""
        return self.fit(labels).transform(labels)

    def inverse_transform(self, encoded: np.ndarray) -> np.ndarray:
        """Decode integer codes back to the original labels."""
        if self.classes_ is None:
            raise RuntimeError("encoder is not fitted; call fit() first")
        encoded = np.asarray(encoded, dtype=np.int64)
        if encoded.size and (
            encoded.min() < 0 or encoded.max() >= self.classes_.shape[0]
        ):
            raise ValueError("encoded values out of range")
        return self.classes_[encoded]


def one_hot_encode(labels: np.ndarray, n_classes: int | None = None):
    """One-hot matrix for integer labels.

    Parameters
    ----------
    labels:
        Integer array of shape ``(n,)`` with values in ``[0, n_classes)``.
    n_classes:
        Number of columns; inferred as ``labels.max() + 1`` when omitted.

    Returns
    -------
    numpy.ndarray, shape (n, n_classes)
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size == 0:
        raise ValueError("cannot one-hot encode no labels")
    if labels.min() < 0:
        raise ValueError("labels must be non-negative integers")
    if n_classes is None:
        n_classes = int(labels.max()) + 1
    elif labels.max() >= n_classes:
        raise ValueError(
            f"label {int(labels.max())} out of range for "
            f"n_classes={n_classes}"
        )
    encoded = np.zeros((labels.shape[0], n_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded

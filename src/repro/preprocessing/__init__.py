"""Data preparation utilities: scaling, encoding, splitting."""

from repro.preprocessing.encoders import LabelEncoder, one_hot_encode
from repro.preprocessing.mixed import MixedTypeEncoder
from repro.preprocessing.scalers import MinMaxScaler, StandardScaler
from repro.preprocessing.splits import (
    KFold,
    StratifiedKFold,
    train_test_split,
)

__all__ = [
    "LabelEncoder",
    "MixedTypeEncoder",
    "one_hot_encode",
    "MinMaxScaler",
    "StandardScaler",
    "KFold",
    "StratifiedKFold",
    "train_test_split",
]

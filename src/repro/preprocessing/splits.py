"""Train/test splitting and cross-validation iterators."""

from __future__ import annotations

import numpy as np

from repro.linalg.rng import check_random_state


def train_test_split(
    data: np.ndarray,
    *arrays: np.ndarray,
    test_size: float = 0.25,
    stratify: np.ndarray | None = None,
    random_state=None,
):
    """Split arrays into random train and test subsets.

    Parameters
    ----------
    data:
        Primary record array of shape ``(n, ...)``.
    *arrays:
        Additional aligned arrays (e.g. labels) split with the same
        permutation.
    test_size:
        Fraction of records in the test subset, in ``(0, 1)``.
    stratify:
        Optional label array; when given, each class contributes
        proportionally to the test subset.
    random_state:
        Seed or generator.

    Returns
    -------
    list
        ``[data_train, data_test, a1_train, a1_test, ...]``.
    """
    data = np.asarray(data)
    n = data.shape[0]
    if n < 2:
        raise ValueError(f"need at least 2 records to split, got {n}")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    for array in arrays:
        if np.asarray(array).shape[0] != n:
            raise ValueError("all arrays must align with data on axis 0")
    rng = check_random_state(random_state)
    if stratify is None:
        permuted = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        n_test = min(n_test, n - 1)
        test_indices = permuted[:n_test]
        train_indices = permuted[n_test:]
    else:
        stratify = np.asarray(stratify)
        if stratify.shape[0] != n:
            raise ValueError("stratify must align with data on axis 0")
        test_parts = []
        train_parts = []
        for label in np.unique(stratify):
            members = np.flatnonzero(stratify == label)
            members = rng.permutation(members)
            n_test = int(round(test_size * members.shape[0]))
            if members.shape[0] >= 2:
                n_test = min(max(n_test, 1), members.shape[0] - 1)
            else:
                n_test = 0
            test_parts.append(members[:n_test])
            train_parts.append(members[n_test:])
        test_indices = np.concatenate(test_parts)
        train_indices = np.concatenate(train_parts)
        # Shuffle so downstream consumers never rely on class blocks.
        test_indices = rng.permutation(test_indices)
        train_indices = rng.permutation(train_indices)
    result = [data[train_indices], data[test_indices]]
    for array in arrays:
        array = np.asarray(array)
        result.extend([array[train_indices], array[test_indices]])
    return result


class KFold:
    """Standard k-fold cross-validation index iterator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True,
                 random_state=None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, data: np.ndarray):
        """Yield ``(train_indices, test_indices)`` per fold."""
        n = np.asarray(data).shape[0]
        if n < self.n_splits:
            raise ValueError(
                f"cannot make {self.n_splits} folds from {n} records"
            )
        indices = np.arange(n)
        if self.shuffle:
            rng = check_random_state(self.random_state)
            indices = rng.permutation(indices)
        folds = np.array_split(indices, self.n_splits)
        for position in range(self.n_splits):
            test_indices = folds[position]
            train_indices = np.concatenate(
                [fold for offset, fold in enumerate(folds)
                 if offset != position]
            )
            yield train_indices, test_indices


class StratifiedKFold:
    """k-fold cross-validation preserving per-class proportions."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True,
                 random_state=None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, data: np.ndarray, labels: np.ndarray):
        """Yield ``(train_indices, test_indices)`` per stratified fold."""
        labels = np.asarray(labels)
        n = labels.shape[0]
        if np.asarray(data).shape[0] != n:
            raise ValueError("data and labels must align on axis 0")
        rng = check_random_state(self.random_state)
        per_fold: list[list[np.ndarray]] = [
            [] for __ in range(self.n_splits)
        ]
        for label in np.unique(labels):
            members = np.flatnonzero(labels == label)
            if self.shuffle:
                members = rng.permutation(members)
            for offset, chunk in enumerate(
                np.array_split(members, self.n_splits)
            ):
                per_fold[offset].append(chunk)
        folds = [
            np.concatenate(parts) if parts else np.array([], dtype=np.int64)
            for parts in per_fold
        ]
        for position in range(self.n_splits):
            test_indices = folds[position]
            if test_indices.shape[0] == 0:
                raise ValueError(
                    "a fold came out empty; reduce n_splits or provide "
                    "more records per class"
                )
            train_indices = np.concatenate(
                [fold for offset, fold in enumerate(folds)
                 if offset != position]
            )
            yield train_indices, test_indices

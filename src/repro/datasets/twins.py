"""Statistical twins of the paper's four UCI data sets.

The paper evaluates on Ionosphere, Ecoli, Pima Indian Diabetes and
Abalone from the UCI repository.  This environment has no network
access, so each loader below synthesizes a *statistical twin*: a seeded
generative model matched to the original's published row count,
dimensionality, class inventory and class proportions, with correlated
attributes, bounded ranges and (for Pima) injected anomalies mirroring
the qualitative traits the paper leans on in its discussion.

What the twins preserve, and why it suffices: condensation interacts
with a data set only through (a) local neighbourhood structure, (b) the
per-group second-order statistics, and (c) class geometry for the
classification protocol.  The twins reproduce all three at the
original's scale, so the accuracy and covariance-compatibility curves
retain the paper's qualitative shape even though absolute numbers
differ from the UCI originals.

All loaders are deterministic for a given ``random_state`` and default
to fixed per-data-set seeds.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.generators import random_covariance
from repro.linalg.rng import check_random_state

#: Default seeds, fixed so the benches reproduce bit-identical data.
DEFAULT_SEEDS = {
    "ionosphere": 1851,
    "ecoli": 2204,
    "pima": 3097,
    "abalone": 4410,
}


def _mixture_class(
    rng,
    size: int,
    n_features: int,
    centres: np.ndarray,
    covariances,
) -> np.ndarray:
    """Draw ``size`` records from an even mixture over given clusters."""
    n_clusters = centres.shape[0]
    assignments = rng.integers(0, n_clusters, size=size)
    records = np.empty((size, n_features))
    for cluster in range(n_clusters):
        members = np.flatnonzero(assignments == cluster)
        if members.shape[0] == 0:
            continue
        records[members] = rng.multivariate_normal(
            centres[cluster], covariances[cluster],
            size=members.shape[0], method="cholesky",
        )
    return records


def load_ionosphere(random_state=None) -> Dataset:
    """Twin of UCI Ionosphere: 351 radar returns, 34 attributes, 2 classes.

    The original holds 225 "good" and 126 "bad" returns with pulse
    attributes in ``[-1, 1]``.  The twin draws both classes from the
    *same* two-cluster correlated covariance structure — classes differ
    by a modest mean shift, with the "bad" class markedly more diffuse,
    as in the original where bad returns scatter — and squashes through
    ``tanh`` to reproduce the bounded range.  The shift magnitude is
    calibrated so a 1-NN classifier on the original twin scores in the
    high-0.8s, matching the UCI original.

    Parameters
    ----------
    random_state:
        Seed or generator; ``None`` selects the twin's default seed so
        the canonical data set is stable across runs.

    Returns
    -------
    Dataset
        Ionosphere twin (351 records, 34 attributes, 2 classes).
    """
    rng = check_random_state(
        DEFAULT_SEEDS["ionosphere"] if random_state is None else random_state
    )
    n_features = 34
    base_centres = rng.normal(scale=0.6, size=(2, n_features))
    shift_direction = rng.standard_normal(n_features)
    shift_direction /= np.linalg.norm(shift_direction)
    covariance = random_covariance(n_features, rng, effective_rank=6)
    specs = [
        # (label, size, mean shift along the direction, covariance scale)
        (1, 225, 0.0, 0.35),   # good returns: tight, structured
        (0, 126, 2.1, 1.10),   # bad returns: shifted, diffuse
    ]
    parts, labels = [], []
    for label, size, shift, scale in specs:
        centres = base_centres + shift * shift_direction
        covariances = [scale * covariance] * 2
        raw = _mixture_class(rng, size, n_features, centres, covariances)
        parts.append(np.tanh(raw))
        labels.append(np.full(size, label, dtype=np.int64))
    data = np.vstack(parts)
    target = np.concatenate(labels)
    permuted = rng.permutation(data.shape[0])
    return Dataset(
        name="ionosphere-twin",
        data=data[permuted],
        target=target[permuted],
        task="classification",
        feature_names=[f"pulse_{position}" for position in range(n_features)],
        description=(
            "Seeded statistical twin of UCI Ionosphere (351x34, classes "
            "225 good / 126 bad, attributes in [-1, 1]); substitutes for "
            "the original, which is unavailable offline."
        ),
    )


def load_ecoli(random_state=None) -> Dataset:
    """Twin of UCI Ecoli: 336 proteins, 7 attributes, 8 localization sites.

    Class counts follow the original's strong imbalance
    (143/77/52/35/20/5/2/2).  Attributes are scores in ``[0, 1]``;
    classes are single correlated Gaussian clusters squashed by a
    logistic map.

    Parameters
    ----------
    random_state:
        Seed or generator; ``None`` selects the twin's default seed so
        the canonical data set is stable across runs.

    Returns
    -------
    Dataset
        Ecoli twin (336 records, 7 attributes, 8 classes).
    """
    rng = check_random_state(
        DEFAULT_SEEDS["ecoli"] if random_state is None else random_state
    )
    n_features = 7
    class_sizes = [143, 77, 52, 35, 20, 5, 2, 2]
    class_names = ["cp", "im", "pp", "imU", "om", "omL", "imL", "imS"]
    covariance = random_covariance(
        n_features, rng, effective_rank=3, scale=0.55
    )
    parts, labels = [], []
    for label, size in enumerate(class_sizes):
        centre = rng.normal(scale=0.55, size=n_features)
        raw = rng.multivariate_normal(
            centre, covariance, size=size, method="cholesky"
        )
        parts.append(1.0 / (1.0 + np.exp(-raw)))
        labels.append(np.full(size, label, dtype=np.int64))
    data = np.vstack(parts)
    target = np.concatenate(labels)
    permuted = rng.permutation(data.shape[0])
    feature_names = ["mcg", "gvh", "lip", "chg", "aac", "alm1", "alm2"]
    dataset = Dataset(
        name="ecoli-twin",
        data=data[permuted],
        target=target[permuted],
        task="classification",
        feature_names=feature_names,
        description=(
            "Seeded statistical twin of UCI Ecoli (336x7, 8 localization "
            "classes with counts 143/77/52/35/20/5/2/2, scores in "
            "[0, 1]); substitutes for the original, which is unavailable "
            "offline."
        ),
    )
    dataset.class_names = class_names
    return dataset


def load_pima(random_state=None) -> Dataset:
    """Twin of UCI Pima Indian Diabetes: 768 patients, 8 attributes, 2 classes.

    500 non-diabetic / 268 diabetic.  Attributes are positive clinical
    measurements on very different scales (pregnancies ~0-17, glucose
    ~120, insulin heavy-tailed, ...).  The twin draws per-class
    correlated Gaussians on a latent scale, maps them affinely onto the
    original attribute scales, clips at zero, and *injects anomalies* —
    about 4% of records get implausible extreme values, mirroring the
    anomaly-laden character the paper highlights when explaining why
    condensation can beat the original data on Pima.

    Parameters
    ----------
    random_state:
        Seed or generator; ``None`` selects the twin's default seed so
        the canonical data set is stable across runs.

    Returns
    -------
    Dataset
        Pima twin (768 records, 8 attributes, 2 classes).
    """
    rng = check_random_state(
        DEFAULT_SEEDS["pima"] if random_state is None else random_state
    )
    feature_names = [
        "pregnancies", "glucose", "blood_pressure", "skin_thickness",
        "insulin", "bmi", "pedigree", "age",
    ]
    n_features = len(feature_names)
    attribute_scale = np.array([3.4, 32.0, 19.4, 16.0, 115.0, 7.9, 0.33,
                                11.8])
    # Class means follow the UCI originals, with the between-class gap
    # shrunk toward the midpoint so the 1-NN baseline lands near the
    # original data set's ~0.7 (the shared covariance model otherwise
    # over-separates along its low-variance directions).
    negative_mean = np.array([3.3, 110.0, 68.2, 19.7, 68.8, 30.3, 0.43,
                              31.2])
    positive_mean = np.array([4.9, 141.3, 70.8, 22.2, 100.3, 35.1, 0.55,
                              37.1])
    midpoint = (negative_mean + positive_mean) / 2.0
    gap_shrink = 0.58
    class_offsets = {
        0: midpoint + gap_shrink * (negative_mean - midpoint),
        1: midpoint + gap_shrink * (positive_mean - midpoint),
    }
    class_sizes = {0: 500, 1: 268}
    covariance = random_covariance(
        n_features, rng, effective_rank=4, scale=1.0
    )
    parts, labels = [], []
    for label in (0, 1):
        size = class_sizes[label]
        latent = rng.multivariate_normal(
            np.zeros(n_features), covariance, size=size, method="cholesky"
        )
        records = class_offsets[label] + latent * attribute_scale
        parts.append(records)
        labels.append(np.full(size, label, dtype=np.int64))
    data = np.vstack(parts)
    target = np.concatenate(labels)
    np.clip(data, 0.0, None, out=data)
    # Anomaly injection: ~4% of records get one attribute blown up to an
    # implausible magnitude, the kind of noise condensation's local
    # averaging removes.
    n_anomalies = max(1, int(0.04 * data.shape[0]))
    anomaly_rows = rng.choice(data.shape[0], size=n_anomalies, replace=False)
    anomaly_columns = rng.integers(0, n_features, size=n_anomalies)
    data[anomaly_rows, anomaly_columns] *= rng.uniform(
        4.0, 8.0, size=n_anomalies
    )
    permuted = rng.permutation(data.shape[0])
    return Dataset(
        name="pima-twin",
        data=data[permuted],
        target=target[permuted],
        task="classification",
        feature_names=feature_names,
        description=(
            "Seeded statistical twin of UCI Pima Indian Diabetes (768x8, "
            "500 negative / 268 positive, positive-valued clinical "
            "attributes, ~4% injected anomalies); substitutes for the "
            "original, which is unavailable offline."
        ),
    )


def load_abalone(random_state=None) -> Dataset:
    """Twin of UCI Abalone: 4177 specimens, 8 attributes, age regression.

    The original's seven physical measurements are driven almost
    entirely by overall animal size (pairwise correlations > 0.9) plus a
    categorical sex attribute; the target is the ring count (age).  The
    twin generates a latent size factor per specimen, derives the
    measurements through positive loadings with small independent noise,
    encodes sex as 0/1/2 (infants systematically smaller), and sets
    ``rings = 3 + 12·size_quantile + noise`` rounded to integers — the
    age structure the within-one-year protocol needs.

    Parameters
    ----------
    random_state:
        Seed or generator; ``None`` selects the twin's default seed so
        the canonical data set is stable across runs.

    Returns
    -------
    Dataset
        Abalone twin (4177 records, 8 attributes, regression).
    """
    rng = check_random_state(
        DEFAULT_SEEDS["abalone"] if random_state is None else random_state
    )
    n_records = 4177
    feature_names = [
        "sex", "length", "diameter", "height", "whole_weight",
        "shucked_weight", "viscera_weight", "shell_weight",
    ]
    # Sex: 0=male, 1=female, 2=infant at the original's proportions.
    sex = rng.choice(
        [0, 1, 2], size=n_records, p=[0.366, 0.313, 0.321]
    ).astype(float)
    # Latent size in (0, 1): beta-shaped, infants skewed small.
    size_factor = rng.beta(3.0, 2.2, size=n_records)
    size_factor = np.where(
        sex == 2, size_factor * rng.uniform(0.45, 0.8, size=n_records),
        size_factor,
    )
    loadings = np.array([0.75, 0.60, 0.20, 2.2, 1.0, 0.5, 0.65])
    exponents = np.array([1.0, 1.0, 1.0, 2.8, 2.8, 2.8, 2.6])
    measurements = np.empty((n_records, loadings.shape[0]))
    for column in range(loadings.shape[0]):
        clean = loadings[column] * size_factor ** exponents[column]
        noise = 1.0 + 0.06 * rng.standard_normal(n_records)
        measurements[:, column] = np.clip(clean * noise, 1e-4, None)
    data = np.column_stack([sex, measurements])
    rings = 3.0 + 12.0 * size_factor + 2.3 * rng.standard_normal(n_records)
    rings = np.clip(np.round(rings), 1, 29)
    return Dataset(
        name="abalone-twin",
        data=data,
        target=rings,
        task="regression",
        feature_names=feature_names,
        description=(
            "Seeded statistical twin of UCI Abalone (4177x8, sex encoded "
            "0/1/2 plus 7 strongly correlated size-driven measurements, "
            "integer ring counts 1-29 as the regression target); "
            "substitutes for the original, which is unavailable offline."
        ),
    )


#: Loader registry used by the evaluation harness and the benches.
TWIN_LOADERS = {
    "ionosphere": load_ionosphere,
    "ecoli": load_ecoli,
    "pima": load_pima,
    "abalone": load_abalone,
}


def load_twin(name: str, random_state=None) -> Dataset:
    """Load a twin by name.

    Parameters
    ----------
    name:
        One of ``"ionosphere"``, ``"ecoli"``, ``"pima"``, ``"abalone"``.
    random_state:
        Seed or generator; ``None`` selects the twin's default seed.

    Returns
    -------
    Dataset
        The named statistical twin.

    Raises
    ------
    ValueError
        If ``name`` is not a known twin.
    """
    try:
        loader = TWIN_LOADERS[name]
    except KeyError:
        raise ValueError(
            f"unknown twin {name!r}; expected one of {sorted(TWIN_LOADERS)}"
        ) from None
    return loader(random_state=random_state)

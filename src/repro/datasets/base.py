"""Dataset container shared by all loaders and generators."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Dataset:
    """A labelled record array with metadata.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"ionosphere-twin"``).
    data:
        Record array of shape ``(n, d)``.
    target:
        Labels (classification) or continuous targets (regression),
        shape ``(n,)``.
    task:
        ``"classification"`` or ``"regression"``.
    feature_names:
        One name per attribute.
    description:
        Provenance notes — for twins, what they substitute for and how.
    """

    name: str
    data: np.ndarray
    target: np.ndarray
    task: str
    feature_names: list[str] = field(default_factory=list)
    description: str = ""

    def __post_init__(self):
        self.data = np.asarray(self.data, dtype=float)
        self.target = np.asarray(self.target)
        if self.data.ndim != 2:
            raise ValueError(
                f"data must be 2-D, got shape {self.data.shape}"
            )
        if self.target.shape != (self.data.shape[0],):
            raise ValueError(
                f"target must have shape ({self.data.shape[0]},), "
                f"got {self.target.shape}"
            )
        if self.task not in ("classification", "regression"):
            raise ValueError(
                "task must be 'classification' or 'regression', "
                f"got {self.task!r}"
            )
        if not self.feature_names:
            self.feature_names = [
                f"attr_{position}" for position in range(self.data.shape[1])
            ]
        elif len(self.feature_names) != self.data.shape[1]:
            raise ValueError(
                f"need {self.data.shape[1]} feature names, "
                f"got {len(self.feature_names)}"
            )

    @property
    def n_records(self) -> int:
        """Number of records."""
        return self.data.shape[0]

    @property
    def n_features(self) -> int:
        """Number of attributes."""
        return self.data.shape[1]

    @property
    def classes(self) -> np.ndarray:
        """Distinct labels (classification only)."""
        if self.task != "classification":
            raise ValueError(f"{self.name} is not a classification data set")
        return np.unique(self.target)

    def class_counts(self) -> dict:
        """Label → record count (classification only)."""
        labels, counts = np.unique(self.target, return_counts=True)
        return dict(zip(labels.tolist(), counts.tolist()))

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, n_records={self.n_records}, "
            f"n_features={self.n_features}, task={self.task!r})"
        )

"""Generic synthetic data generators.

Building blocks for the UCI statistical twins and for controlled
experiments: correlated Gaussian blobs, class-structured mixtures, and
factor-driven regression data whose covariance structure is tunable —
the property condensation is supposed to preserve.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.linalg.rng import check_random_state


def random_covariance(
    n_features: int,
    rng,
    effective_rank: int | None = None,
    noise_floor: float = 0.05,
    scale: float = 1.0,
) -> np.ndarray:
    """Draw a random, well-conditioned covariance matrix.

    Built as ``A Aᵀ / r + noise_floor·I`` with a Gaussian factor matrix
    ``A`` of rank ``effective_rank``, giving genuine inter-attribute
    correlations (the structure the paper's perturbation critique is
    about) without degenerate conditioning.

    Parameters
    ----------
    n_features:
        Dimensionality of the matrix.
    rng:
        :class:`numpy.random.Generator` to draw from.
    effective_rank:
        Rank of the factor matrix; defaults to ``n_features // 2``
        (floored at 1).
    noise_floor:
        Diagonal regularization added to keep the matrix
        well-conditioned; must be non-negative.
    scale:
        Overall multiplier of the result.

    Returns
    -------
    numpy.ndarray, shape (n_features, n_features)
        A symmetric positive-definite covariance matrix.

    Raises
    ------
    ValueError
        If ``n_features`` or ``effective_rank`` is out of range, or
        ``noise_floor`` is negative.
    """
    if n_features < 1:
        raise ValueError(f"n_features must be >= 1, got {n_features}")
    if effective_rank is None:
        effective_rank = max(1, n_features // 2)
    if not 1 <= effective_rank <= n_features:
        raise ValueError(
            f"effective_rank must be in [1, {n_features}], "
            f"got {effective_rank}"
        )
    if noise_floor < 0:
        raise ValueError(
            f"noise_floor must be non-negative, got {noise_floor}"
        )
    factors = rng.standard_normal((n_features, effective_rank))
    covariance = factors @ factors.T / effective_rank
    covariance += noise_floor * np.eye(n_features)
    return scale * covariance


def make_correlated_blobs(
    n_records: int,
    n_features: int,
    n_blobs: int = 3,
    centre_spread: float = 4.0,
    random_state=None,
):
    """Mixture of Gaussians with random correlated covariances.

    Parameters
    ----------
    n_records:
        Total record count; at least one per blob.
    n_features:
        Dimensionality.
    n_blobs:
        Number of mixture components.
    centre_spread:
        Scale of the blob-centre spread.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    data : numpy.ndarray, shape (n_records, n_features)
        The sampled records.
    blob_labels : numpy.ndarray, shape (n_records,)
        Index of the blob each record came from.

    Raises
    ------
    ValueError
        If ``n_records`` is smaller than ``n_blobs``.
    """
    if n_records < n_blobs:
        raise ValueError(
            f"need at least one record per blob, got {n_records} records "
            f"for {n_blobs} blobs"
        )
    rng = check_random_state(random_state)
    centres = rng.normal(scale=centre_spread, size=(n_blobs, n_features))
    covariances = [
        random_covariance(n_features, rng) for __ in range(n_blobs)
    ]
    assignments = rng.integers(0, n_blobs, size=n_records)
    # Guarantee no blob is empty.
    assignments[:n_blobs] = np.arange(n_blobs)
    data = np.empty((n_records, n_features))
    for blob in range(n_blobs):
        members = np.flatnonzero(assignments == blob)
        data[members] = rng.multivariate_normal(
            centres[blob], covariances[blob], size=members.shape[0],
            method="cholesky",
        )
    return data, assignments


def make_classification_mixture(
    class_sizes,
    n_features: int,
    class_separation: float = 2.5,
    clusters_per_class: int = 1,
    noise_floor: float = 0.05,
    random_state=None,
) -> Dataset:
    """Class-structured Gaussian mixture for classification experiments.

    Parameters
    ----------
    class_sizes:
        Record count per class (its length is the number of classes) —
        class imbalance is expressed directly here.
    n_features:
        Dimensionality.
    class_separation:
        Scale of the class-mean spread relative to unit within-class
        variance; larger separates the classes more cleanly.
    clusters_per_class:
        Sub-clusters per class, for multi-modal classes.
    noise_floor:
        Diagonal regularization of the random covariances.
    random_state:
        Seed or generator.

    Returns
    -------
    Dataset
        With integer labels ``0..len(class_sizes)-1``.
    """
    class_sizes = [int(size) for size in class_sizes]
    if any(size < 1 for size in class_sizes):
        raise ValueError(f"class sizes must be positive, got {class_sizes}")
    if clusters_per_class < 1:
        raise ValueError(
            f"clusters_per_class must be >= 1, got {clusters_per_class}"
        )
    rng = check_random_state(random_state)
    parts = []
    labels = []
    for label, size in enumerate(class_sizes):
        cluster_centres = rng.normal(
            scale=class_separation,
            size=(clusters_per_class, n_features),
        )
        covariances = [
            random_covariance(n_features, rng, noise_floor=noise_floor)
            for __ in range(clusters_per_class)
        ]
        assignments = rng.integers(0, clusters_per_class, size=size)
        records = np.empty((size, n_features))
        for cluster in range(clusters_per_class):
            members = np.flatnonzero(assignments == cluster)
            if members.shape[0] == 0:
                continue
            records[members] = rng.multivariate_normal(
                cluster_centres[cluster],
                covariances[cluster],
                size=members.shape[0],
                method="cholesky",
            )
        parts.append(records)
        labels.append(np.full(size, label, dtype=np.int64))
    data = np.vstack(parts)
    target = np.concatenate(labels)
    permuted = rng.permutation(data.shape[0])
    return Dataset(
        name="classification-mixture",
        data=data[permuted],
        target=target[permuted],
        task="classification",
    )


def make_factor_regression(
    n_records: int,
    n_features: int,
    n_factors: int = 2,
    noise: float = 0.1,
    target_noise: float = 0.5,
    random_state=None,
) -> Dataset:
    """Factor-model regression data with strong attribute correlations.

    Latent factors drive both the attributes (through random loadings)
    and the target (through random weights), producing the heavily
    collinear measurement structure typical of physical data sets like
    Abalone.

    Parameters
    ----------
    n_records:
        Record count.
    n_features:
        Dimensionality of the attribute block.
    n_factors:
        Number of latent factors; must be positive.
    noise:
        Attribute measurement-noise level; non-negative.
    target_noise:
        Target noise level; non-negative.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    Dataset
        Regression data set named ``"factor-regression"``.

    Raises
    ------
    ValueError
        If ``n_factors`` is not positive or a noise level is negative.
    """
    if n_factors < 1:
        raise ValueError(f"n_factors must be >= 1, got {n_factors}")
    if noise < 0 or target_noise < 0:
        raise ValueError("noise levels must be non-negative")
    rng = check_random_state(random_state)
    factors = rng.standard_normal((n_records, n_factors))
    loadings = rng.standard_normal((n_factors, n_features))
    data = factors @ loadings + noise * rng.standard_normal(
        (n_records, n_features)
    )
    weights = rng.standard_normal(n_factors)
    target = factors @ weights + target_noise * rng.standard_normal(
        n_records
    )
    return Dataset(
        name="factor-regression",
        data=data,
        target=target,
        task="regression",
    )


def make_two_moons(
    n_records: int,
    noise: float = 0.08,
    random_state=None,
) -> Dataset:
    """Two interleaving half-circles — the classic non-convex shape.

    Useful for exercising density-based methods (DBSCAN finds the two
    moons where k-means cannot) and for showing that condensation's
    locality-sensitive groups trace non-convex structure.

    Parameters
    ----------
    n_records:
        Total records; split as evenly as possible between the moons.
    noise:
        Standard deviation of isotropic Gaussian jitter.
    random_state:
        Seed or generator.

    Returns
    -------
    Dataset
        Two-class classification data set named ``"two-moons"``.

    Raises
    ------
    ValueError
        If ``n_records < 2`` or ``noise`` is negative.
    """
    if n_records < 2:
        raise ValueError(f"need at least 2 records, got {n_records}")
    if noise < 0:
        raise ValueError(f"noise must be non-negative, got {noise}")
    rng = check_random_state(random_state)
    n_upper = n_records // 2
    n_lower = n_records - n_upper
    upper_angles = rng.uniform(0.0, np.pi, size=n_upper)
    lower_angles = rng.uniform(0.0, np.pi, size=n_lower)
    upper = np.column_stack(
        [np.cos(upper_angles), np.sin(upper_angles)]
    )
    lower = np.column_stack(
        [1.0 - np.cos(lower_angles), 0.5 - np.sin(lower_angles)]
    )
    data = np.vstack([upper, lower])
    data += noise * rng.standard_normal(data.shape)
    target = np.concatenate([
        np.zeros(n_upper, dtype=np.int64),
        np.ones(n_lower, dtype=np.int64),
    ])
    permuted = rng.permutation(n_records)
    return Dataset(
        name="two-moons",
        data=data[permuted],
        target=target[permuted],
        task="classification",
        feature_names=["x", "y"],
    )


def make_stream_batches(
    dataset: Dataset,
    initial_fraction: float = 0.25,
    random_state=None,
):
    """Split a data set into a static base and an arrival-ordered stream.

    The paper's dynamic experiments assume a static database ``D`` plus
    an incremental stream ``S``; this helper produces both from one
    data set with a random arrival order.

    Parameters
    ----------
    dataset:
        Source data set to split.
    initial_fraction:
        Fraction of records forming the static base, in ``(0, 1)``.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    base_data : numpy.ndarray
        Records of the static base.
    base_target : numpy.ndarray
        Targets of the static base.
    stream_data : numpy.ndarray
        Records of the stream, in arrival order.
    stream_target : numpy.ndarray
        Targets of the stream, in arrival order.

    Raises
    ------
    ValueError
        If ``initial_fraction`` is outside ``(0, 1)``.
    """
    if not 0.0 < initial_fraction < 1.0:
        raise ValueError(
            f"initial_fraction must be in (0, 1), got {initial_fraction}"
        )
    rng = check_random_state(random_state)
    order = rng.permutation(dataset.n_records)
    cut = max(1, int(round(initial_fraction * dataset.n_records)))
    cut = min(cut, dataset.n_records - 1)
    base, stream = order[:cut], order[cut:]
    return (
        dataset.data[base],
        dataset.target[base],
        dataset.data[stream],
        dataset.target[stream],
    )
